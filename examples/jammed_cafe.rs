//! The "malcontent with a signal jammer in a café" scenario from the
//! paper's introduction: a Wi-Fi-sized band, an *adaptive* jammer that
//! targets whatever frequencies were busiest, and laptops that join over
//! time. Compares the Trapdoor Protocol against the wake-up-style and
//! single-frequency baselines under the worst jamming level the model
//! allows — all three protocols addressed by registry name over one shared
//! scenario spec.
//!
//! ```text
//! cargo run --release --example jammed_cafe
//! ```

use wireless_sync::prelude::*;

fn main() -> std::result::Result<(), SpecError> {
    // Roughly the 2.4 GHz band as 802.11 divides it.
    let num_frequencies = 12;
    // A determined jammer that can blanket almost half the band.
    let disruption_bound = 5;
    let num_devices = 10;

    let base = ScenarioSpec::new("trapdoor", num_devices, num_frequencies, disruption_bound)
        .with_adversary("adaptive-greedy")
        .with_activation(ActivationSchedule::UniformWindow { window: 60 })
        .with_max_rounds(100_000);

    println!("== Jammed café: adaptive jammer on a Wi-Fi-sized band ==");
    println!(
        "{} laptops, {} channels, adaptive jammer hitting {} channels per round\n",
        num_devices, num_frequencies, disruption_bound
    );

    let trapdoor = Sim::from_spec(&base)?.run_one(99);
    println!("Trapdoor Protocol:");
    describe(&trapdoor);

    // The same scenario, different protocol: swap the registry name.
    let wakeup_spec = ScenarioSpec {
        protocol: "wakeup".into(),
        ..base.clone()
    };
    let wakeup = Sim::from_spec(&wakeup_spec)?.run_one(99);
    println!("\nWake-up-style baseline (fixed deadline, whole band):");
    describe(&wakeup);

    let single_spec = ScenarioSpec {
        protocol: "single-frequency".into(),
        ..base.clone()
    };
    let single = Sim::from_spec(&single_spec)?.run_one(99);
    println!("\nSingle-frequency baseline (everything on channel 1):");
    describe(&single);

    println!(
        "\nThe single-frequency baseline either starves or splits into several\n\
         self-declared leaders as soon as the jammer notices channel 1; the paper's\n\
         protocol keeps a single consistent round numbering because contenders hop\n\
         over min(F, 2t) = {} channels and the jammer can only cover {} of them.",
        trapdoor_f_prime(&base),
        disruption_bound
    );
    Ok(())
}

fn trapdoor_f_prime(spec: &ScenarioSpec) -> u32 {
    wireless_sync::sync::trapdoor::TrapdoorConfig::new(
        spec.scenario().upper_bound(),
        spec.num_frequencies,
        spec.disruption_bound,
    )
    .f_prime()
}

fn describe(outcome: &SyncOutcome) {
    println!(
        "  synchronized everyone: {:5} | leaders: {} | safety violations: {} | completion round: {:?}",
        outcome.result.all_synchronized,
        outcome.leaders,
        outcome.properties.total_violations,
        outcome.completion_round()
    );
}
