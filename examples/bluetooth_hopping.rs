//! Bluetooth-style scenario from the paper's introduction: ~75 narrowband
//! frequencies, devices that arrive one after another in an ad-hoc fashion,
//! and background interference from co-located gadgets. A shared round
//! numbering is exactly what a frequency-hopping protocol needs before it
//! can coordinate its hop sequence (and elect a master without user
//! intervention).
//!
//! ```text
//! cargo run --release --example bluetooth_hopping
//! ```

use wireless_sync::prelude::*;

fn main() -> std::result::Result<(), SpecError> {
    // The 2.4 GHz band as Bluetooth slices it: 75 usable 1 MHz channels.
    let num_frequencies = 75;
    // Up to 12 channels suffering interference from Wi-Fi + microwave ovens.
    let disruption_bound = 12;
    // Eight gadgets (headset, phone, keyboard, …) switching on one by one.
    let num_devices = 8;

    let spec = ScenarioSpec::new("trapdoor", num_devices, num_frequencies, disruption_bound)
        .with_adversary(
            ComponentSpec::named("bursty")
                .with("period", 50u64)
                .with("burst_len", 20u64),
        )
        .with_activation(ActivationSchedule::Staggered { gap: 25 });

    println!("== Bluetooth-style piconet formation ==");
    println!(
        "{} devices, {} channels, up to {} disrupted per round (bursty interference)",
        num_devices, num_frequencies, disruption_bound
    );

    let outcome = Sim::from_spec(&spec)?.run_one(7);
    println!("\nTrapdoor Protocol:");
    report(&outcome);

    // The same scenario with the round-robin hopping baseline that a naive
    // implementation might use: deterministic hop sequences make devices
    // whose sequences never align miss each other.
    let baseline_spec = ScenarioSpec {
        protocol: "round-robin".into(),
        ..spec
    };
    let baseline = Sim::from_spec(&baseline_spec)?.run_one(7);
    println!("\nRound-robin hopping baseline:");
    report(&baseline);

    println!(
        "\nWith a shared round numbering the piconet can now derive a common hop\n\
         sequence (frequency = hash(round) mod {num_frequencies}) and run master election,\n\
         TDMA assignment, or key agreement in designated rounds."
    );
    Ok(())
}

fn report(outcome: &SyncOutcome) {
    println!(
        "  synchronized: {} | completion round: {:?} | leaders: {} | clean: {}",
        outcome.result.all_synchronized,
        outcome.completion_round(),
        outcome.leaders,
        outcome.is_clean()
    );
    println!(
        "  worst device-to-sync time: {:?} rounds | deliveries: {} | collisions: {}",
        outcome.max_rounds_to_sync(),
        outcome.result.metrics.deliveries,
        outcome.result.metrics.collisions
    );
}
