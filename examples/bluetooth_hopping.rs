//! Bluetooth-style scenario from the paper's introduction: ~75 narrowband
//! frequencies, devices that arrive one after another in an ad-hoc fashion,
//! and background interference from co-located gadgets. A shared round
//! numbering is exactly what a frequency-hopping protocol needs before it
//! can coordinate its hop sequence (and elect a master without user
//! intervention).
//!
//! ```text
//! cargo run --release --example bluetooth_hopping
//! ```

use wireless_sync::prelude::*;

fn main() {
    // The 2.4 GHz band as Bluetooth slices it: 75 usable 1 MHz channels.
    let num_frequencies = 75;
    // Up to 12 channels suffering interference from Wi-Fi + microwave ovens.
    let disruption_bound = 12;
    // Eight gadgets (headset, phone, keyboard, …) switching on one by one.
    let num_devices = 8;

    let scenario = Scenario::new(num_devices, num_frequencies, disruption_bound)
        .with_adversary(AdversaryKind::Bursty {
            period: 50,
            burst_len: 20,
        })
        .with_activation(ActivationSchedule::Staggered { gap: 25 });

    println!("== Bluetooth-style piconet formation ==");
    println!(
        "{} devices, {} channels, up to {} disrupted per round (bursty interference)",
        num_devices, num_frequencies, disruption_bound
    );

    let outcome = run_trapdoor(&scenario, 7);
    println!("\nTrapdoor Protocol:");
    report(&outcome);

    // The same scenario with the round-robin hopping baseline that a naive
    // implementation might use: deterministic hop sequences make devices
    // whose sequences never align miss each other.
    let baseline = wireless_sync::sync::runner::run_round_robin(&scenario, 7);
    println!("\nRound-robin hopping baseline:");
    report(&baseline);

    println!(
        "\nWith a shared round numbering the piconet can now derive a common hop\n\
         sequence (frequency = hash(round) mod {num_frequencies}) and run master election,\n\
         TDMA assignment, or key agreement in designated rounds."
    );
}

fn report(outcome: &SyncOutcome) {
    println!(
        "  synchronized: {} | completion round: {:?} | leaders: {} | clean: {}",
        outcome.result.all_synchronized,
        outcome.completion_round(),
        outcome.leaders,
        outcome.is_clean()
    );
    println!(
        "  worst device-to-sync time: {:?} rounds | deliveries: {} | collisions: {}",
        outcome.max_rounds_to_sync(),
        outcome.result.metrics.deliveries,
        outcome.result.metrics.collisions
    );
}
