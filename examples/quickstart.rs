//! Quickstart: synchronize a handful of devices with the Trapdoor Protocol
//! under a random jammer and print what happened. The scenario is loaded
//! from the checked-in spec file `examples/specs/quickstart.json` — the
//! exact same file `run_experiments --spec` accepts — demonstrating that a
//! scenario is data, not code.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wireless_sync::prelude::*;

fn main() -> std::result::Result<(), SpecError> {
    // 12 devices share a band of 8 frequencies; an unpredictable interferer
    // may disrupt up to 3 of them per round; devices arrive within a short
    // window rather than all at once. Fall back to building the same spec
    // in code when the example runs from an unexpected working directory —
    // and say which source was used, so an edited JSON file can never
    // appear to silently have no effect.
    const SPEC_PATH: &str = "examples/specs/quickstart.json";
    let (spec, source) = match std::fs::read_to_string(SPEC_PATH) {
        Ok(text) => (ScenarioSpec::from_json(&text)?, SPEC_PATH),
        Err(_) => (
            ScenarioSpec::new("trapdoor", 12, 8, 3)
                .with_adversary("random")
                .with_activation(ActivationSchedule::UniformWindow { window: 40 }),
            "built-in fallback (spec file not found from this directory)",
        ),
    };

    let outcome = Sim::from_spec(&spec)?.run_one(2024);

    println!("== wireless-sync quickstart ==");
    println!("scenario source: {source}");
    println!(
        "instance: n={} devices, F={} frequencies, t={} jammable per round",
        spec.num_nodes, spec.num_frequencies, spec.disruption_bound
    );
    println!("{}", outcome.summary_line());
    println!(
        "all devices synchronized: {} (by global round {:?})",
        outcome.result.all_synchronized,
        outcome.completion_round()
    );
    println!("leaders elected: {}", outcome.leaders);
    println!(
        "properties: safety={} liveness={} (violations: {})",
        outcome.properties.safety_holds(),
        outcome.properties.liveness,
        outcome.properties.total_violations
    );
    println!();
    println!("per-device view:");
    for node in &outcome.result.nodes {
        println!(
            "  {:>7}: activated at round {:>3}, synchronized {}",
            node.id.to_string(),
            node.activation_round,
            match node.rounds_to_sync() {
                Some(r) => format!("after {r} rounds"),
                None => "never".to_string(),
            }
        );
    }
    println!();
    println!(
        "radio statistics: {} broadcasts, {} deliveries, {} collisions, {} solo broadcasts jammed",
        outcome.result.metrics.broadcasts,
        outcome.result.metrics.deliveries,
        outcome.result.metrics.collisions,
        outcome.result.metrics.jammed_solo_broadcasts
    );

    assert!(
        outcome.is_clean(),
        "the quickstart scenario should always end cleanly"
    );
    Ok(())
}
