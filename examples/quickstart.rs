//! Quickstart: synchronize a handful of devices with the Trapdoor Protocol
//! under a random jammer and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wireless_sync::prelude::*;

fn main() {
    // 12 devices share a band of 8 frequencies; an unpredictable interferer
    // may disrupt up to 3 of them per round; devices arrive within a short
    // window rather than all at once.
    let scenario = Scenario::new(12, 8, 3)
        .with_adversary(AdversaryKind::Random)
        .with_activation(ActivationSchedule::UniformWindow { window: 40 });

    let outcome = run_trapdoor(&scenario, 2024);

    println!("== wireless-sync quickstart ==");
    println!(
        "instance: n={} devices, F={} frequencies, t={} jammable per round",
        scenario.num_nodes, scenario.num_frequencies, scenario.disruption_bound
    );
    println!("{}", outcome.summary_line());
    println!(
        "all devices synchronized: {} (by global round {:?})",
        outcome.result.all_synchronized,
        outcome.completion_round()
    );
    println!("leaders elected: {}", outcome.leaders);
    println!(
        "properties: safety={} liveness={} (violations: {})",
        outcome.properties.safety_holds(),
        outcome.properties.liveness,
        outcome.properties.total_violations
    );
    println!();
    println!("per-device view:");
    for node in &outcome.result.nodes {
        println!(
            "  {:>7}: activated at round {:>3}, synchronized {}",
            node.id.to_string(),
            node.activation_round,
            match node.rounds_to_sync() {
                Some(r) => format!("after {r} rounds"),
                None => "never".to_string(),
            }
        );
    }
    println!();
    println!(
        "radio statistics: {} broadcasts, {} deliveries, {} collisions, {} solo broadcasts jammed",
        outcome.result.metrics.broadcasts,
        outcome.result.metrics.deliveries,
        outcome.result.metrics.collisions,
        outcome.result.metrics.jammed_solo_broadcasts
    );

    assert!(
        outcome.is_clean(),
        "the quickstart scenario should always end cleanly"
    );
}
