//! The Good Samaritan Protocol's adaptive advantage (Theorem 18): when the
//! network is provisioned for heavy interference (`t` large) but the actual
//! interference `t′` is small, the optimistic protocol finishes far sooner
//! than the worst-case Trapdoor Protocol. This example sweeps `t′` and
//! prints both protocols' completion times side by side.
//!
//! ```text
//! cargo run --release --example adaptive_advantage
//! ```

use wireless_sync::prelude::*;
use wireless_sync::sync::good_samaritan::GoodSamaritanConfig;
use wireless_sync::sync::runner::run_good_samaritan_with;

fn main() {
    let num_devices = 8;
    let num_frequencies = 16;
    let worst_case_t = 8;
    let seeds_per_point = 5u64;

    println!("== Adaptive advantage of the Good Samaritan Protocol ==");
    println!(
        "{} devices, F = {}, provisioned for t = {} disrupted channels; sweeping the\n\
         actual disruption t' with an oblivious jammer and simultaneous wake-up.\n",
        num_devices, num_frequencies, worst_case_t
    );
    println!(
        "{:>4}  {:>22}  {:>18}  {:>10}",
        "t'", "good samaritan (mean)", "trapdoor (mean)", "GS wins?"
    );

    for t_actual in [1u32, 2, 4, 8] {
        let scenario = Scenario::new(num_devices, num_frequencies, worst_case_t)
            .with_adversary(AdversaryKind::ObliviousRandom { t_actual })
            .with_activation(ActivationSchedule::Simultaneous);
        let config =
            GoodSamaritanConfig::new(scenario.upper_bound(), num_frequencies, worst_case_t);

        let mut gs_total = 0u64;
        let mut td_total = 0u64;
        for seed in 0..seeds_per_point {
            gs_total += run_good_samaritan_with(&scenario, config, seed)
                .completion_round()
                .expect("good samaritan run must complete");
            td_total += run_trapdoor(&scenario, seed)
                .completion_round()
                .expect("trapdoor run must complete");
        }
        let gs_mean = gs_total as f64 / seeds_per_point as f64;
        let td_mean = td_total as f64 / seeds_per_point as f64;
        println!(
            "{:>4}  {:>22.1}  {:>18.1}  {:>10}",
            t_actual,
            gs_mean,
            td_mean,
            if gs_mean < td_mean { "yes" } else { "no" }
        );
    }

    println!(
        "\nThe Good Samaritan Protocol's completion time tracks the *actual* interference\n\
         level (O(t'·log³N)), while the Trapdoor Protocol always pays for the worst case\n\
         it was configured for (O(F/(F−t)·log²N + Ft/(F−t)·logN))."
    );
}
