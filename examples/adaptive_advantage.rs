//! The Good Samaritan Protocol's adaptive advantage (Theorem 18): when the
//! network is provisioned for heavy interference (`t` large) but the actual
//! interference `t′` is small, the optimistic protocol finishes far sooner
//! than the worst-case Trapdoor Protocol. This example sweeps `t′` with a
//! declarative `SweepSpec` — the same machinery behind
//! `run_experiments --spec` — and prints both protocols' completion times
//! side by side.
//!
//! ```text
//! cargo run --release --example adaptive_advantage
//! ```

use wireless_sync::prelude::*;

fn main() -> std::result::Result<(), SpecError> {
    let num_devices = 8;
    let num_frequencies = 16;
    let worst_case_t = 8;
    let seeds_per_point = 5u64;

    println!("== Adaptive advantage of the Good Samaritan Protocol ==");
    println!(
        "{} devices, F = {}, provisioned for t = {} disrupted channels; sweeping the\n\
         actual disruption t' with an oblivious jammer and simultaneous wake-up.\n",
        num_devices, num_frequencies, worst_case_t
    );
    println!(
        "{:>4}  {:>22}  {:>18}  {:>10}",
        "t'", "good samaritan (mean)", "trapdoor (mean)", "GS wins?"
    );

    let base = ScenarioSpec::new("good-samaritan", num_devices, num_frequencies, worst_case_t)
        .with_adversary(ComponentSpec::named("oblivious-random").with("t_actual", 1u64))
        .with_activation(ActivationSchedule::Simultaneous);
    let sweep = SweepSpec::new(base, 0..seeds_per_point).with_axis(
        "adversary.t_actual",
        vec![1u64.into(), 2u64.into(), 4u64.into(), 8u64.into()],
    );

    let runner = BatchRunner::new();
    for (label, gs_sim) in Sim::from_sweep(&sweep)? {
        // The identical sweep point, run with the worst-case protocol.
        let td_sim = Sim::from_scenario(gs_sim.scenario(), "trapdoor")?.seeds(0..seeds_per_point);

        let gs_mean = gs_sim.run_stats(&runner).completion_rounds.mean;
        let td_mean = td_sim.run_stats(&runner).completion_rounds.mean;
        let t_actual = label.strip_prefix("adversary.t_actual=").unwrap_or(&label);
        println!(
            "{:>4}  {:>22.1}  {:>18.1}  {:>10}",
            t_actual,
            gs_mean,
            td_mean,
            if gs_mean < td_mean { "yes" } else { "no" }
        );
    }

    println!(
        "\nThe Good Samaritan Protocol's completion time tracks the *actual* interference\n\
         level (O(t'·log³N)), while the Trapdoor Protocol always pays for the worst case\n\
         it was configured for (O(F/(F−t)·log²N + Ft/(F−t)·logN))."
    );
    Ok(())
}
