//! Convenience wiring between the protocols and the radio engine.
//!
//! A [`Scenario`] describes one synchronization setting — how many devices,
//! how many frequencies, the disruption bound, which adversary, and the
//! activation schedule. [`run_protocol`] (or the per-protocol shorthands
//! [`run_trapdoor`], [`run_good_samaritan`], …) executes it with the
//! property checker attached and returns a [`SyncOutcome`].

use wsync_radio::activation::ActivationSchedule;
use wsync_radio::adversary::{
    AdaptiveGreedyAdversary, Adversary, BurstyAdversary, DisruptionSet, FixedBandAdversary,
    NoAdversary, ObliviousScheduleAdversary, RandomAdversary, SweepAdversary,
};
use wsync_radio::engine::{Engine, SimConfig};
use wsync_radio::frequency::FrequencyBand;
use wsync_radio::history::History;
use wsync_radio::node::NodeId;
use wsync_radio::protocol::Protocol;
use wsync_radio::rng::SimRng;

use serde::{Deserialize, Serialize};

use crate::baselines::{
    single_frequency_trapdoor, RoundRobinConfig, RoundRobinProtocol, WakeupConfig, WakeupProtocol,
};
use crate::checker::PropertyChecker;
use crate::good_samaritan::{GoodSamaritanConfig, GoodSamaritanProtocol};
use crate::params::next_power_of_two;
use crate::report::SyncOutcome;
use crate::trapdoor::{TrapdoorConfig, TrapdoorProtocol};

/// Protocols that elect a leader while solving wireless synchronization.
///
/// Implemented by every protocol in this crate; used by the runner to count
/// leaders at the end of an execution (the paper's agreement argument rests
/// on there being at most one).
pub trait SyncProtocol: Protocol {
    /// Whether this node currently considers itself the leader.
    fn is_leader(&self) -> bool;
    /// A short name for the protocol (used in experiment tables).
    fn protocol_name(&self) -> &'static str;
}

impl SyncProtocol for TrapdoorProtocol {
    fn is_leader(&self) -> bool {
        TrapdoorProtocol::is_leader(self)
    }
    fn protocol_name(&self) -> &'static str {
        "trapdoor"
    }
}

impl SyncProtocol for GoodSamaritanProtocol {
    fn is_leader(&self) -> bool {
        GoodSamaritanProtocol::is_leader(self)
    }
    fn protocol_name(&self) -> &'static str {
        "good-samaritan"
    }
}

impl SyncProtocol for WakeupProtocol {
    fn is_leader(&self) -> bool {
        WakeupProtocol::is_leader(self)
    }
    fn protocol_name(&self) -> &'static str {
        "wakeup"
    }
}

impl SyncProtocol for RoundRobinProtocol {
    fn is_leader(&self) -> bool {
        RoundRobinProtocol::is_leader(self)
    }
    fn protocol_name(&self) -> &'static str {
        "round-robin"
    }
}

/// Which adversary a scenario runs against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdversaryKind {
    /// No disruption at all.
    None,
    /// Always disrupt frequencies `1..=t` (the Theorem 1 weak adversary).
    FixedBand,
    /// Disrupt `t` fresh uniformly random frequencies each round.
    Random,
    /// A sweeping window of `t` frequencies.
    Sweep,
    /// Bursty interference: jam `t` random frequencies during the first
    /// `burst_len` rounds of every `period`-round cycle.
    Bursty {
        /// Cycle length in rounds.
        period: u64,
        /// Jamming rounds at the start of each cycle.
        burst_len: u64,
    },
    /// Adaptive: jam the `t` frequencies with the most recent listeners.
    AdaptiveGreedy,
    /// Oblivious adversary jamming exactly `t_actual ≤ t` random frequencies
    /// per round, pre-sampled before the execution (the Good Samaritan
    /// good-execution adversary).
    ObliviousRandom {
        /// Actual number of frequencies disrupted per round (`t′`).
        t_actual: u32,
    },
}

impl AdversaryKind {
    /// A short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryKind::None => "none",
            AdversaryKind::FixedBand => "fixed-band",
            AdversaryKind::Random => "random",
            AdversaryKind::Sweep => "sweep",
            AdversaryKind::Bursty { .. } => "bursty",
            AdversaryKind::AdaptiveGreedy => "adaptive-greedy",
            AdversaryKind::ObliviousRandom { .. } => "oblivious-random",
        }
    }

    /// Instantiates the adversary for a given scenario and seed.
    pub fn build(&self, scenario: &Scenario, seed: u64) -> BoxedAdversary {
        let t = scenario.disruption_bound;
        let inner: Box<dyn Adversary> = match self {
            AdversaryKind::None => Box::new(NoAdversary::new()),
            AdversaryKind::FixedBand => Box::new(FixedBandAdversary::new(t)),
            AdversaryKind::Random => Box::new(RandomAdversary::new(t)),
            AdversaryKind::Sweep => Box::new(SweepAdversary::new(t)),
            AdversaryKind::Bursty { period, burst_len } => {
                Box::new(BurstyAdversary::new(t, *period, *burst_len))
            }
            AdversaryKind::AdaptiveGreedy => Box::new(AdaptiveGreedyAdversary::new(t)),
            AdversaryKind::ObliviousRandom { t_actual } => {
                // Pre-sample a schedule long enough to cover the run without
                // repeating too quickly.
                let len = 8192usize;
                Box::new(ObliviousScheduleAdversary::random(
                    seed ^ 0x0b11_0005,
                    len,
                    scenario.num_frequencies,
                    (*t_actual).min(t),
                ))
            }
        };
        BoxedAdversary { inner }
    }
}

/// A boxed adversary so the runner can pick one at run time while the engine
/// stays statically typed.
pub struct BoxedAdversary {
    inner: Box<dyn Adversary>,
}

impl Adversary for BoxedAdversary {
    fn budget(&self) -> u32 {
        self.inner.budget()
    }

    fn disrupt(
        &mut self,
        round: u64,
        band: FrequencyBand,
        history: &History,
        rng: &mut SimRng,
    ) -> DisruptionSet {
        self.inner.disrupt(round, band, history, rng)
    }

    fn disrupt_with_current(
        &mut self,
        round: u64,
        band: FrequencyBand,
        history: &History,
        current_broadcasters: &[u32],
        current_listeners: &[u32],
        rng: &mut SimRng,
    ) -> DisruptionSet {
        self.inner.disrupt_with_current(
            round,
            band,
            history,
            current_broadcasters,
            current_listeners,
            rng,
        )
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// A complete description of one synchronization experiment setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Actual number of participating devices `n`.
    pub num_nodes: usize,
    /// Number of frequencies `F`.
    pub num_frequencies: u32,
    /// Disruption bound `t < F` (announced to the protocols and enforced on
    /// the adversary).
    pub disruption_bound: u32,
    /// Bound `N ≥ n` announced to the protocols; defaults to
    /// `n.next_power_of_two()`.
    pub upper_bound_n: Option<u64>,
    /// The adversary to run against.
    pub adversary: AdversaryKind,
    /// When devices are activated.
    pub activation: ActivationSchedule,
    /// Round cap.
    pub max_rounds: u64,
    /// Extra rounds to simulate after everyone synchronized (lets the
    /// checker observe that outputs keep incrementing).
    pub extra_rounds_after_sync: u64,
}

impl Scenario {
    /// Creates a scenario with no adversary, simultaneous activation, and a
    /// generous round cap.
    pub fn new(num_nodes: usize, num_frequencies: u32, disruption_bound: u32) -> Self {
        Scenario {
            num_nodes,
            num_frequencies,
            disruption_bound,
            upper_bound_n: None,
            adversary: AdversaryKind::None,
            activation: ActivationSchedule::Simultaneous,
            max_rounds: 2_000_000,
            extra_rounds_after_sync: 8,
        }
    }

    /// Sets the adversary.
    pub fn with_adversary(mut self, adversary: AdversaryKind) -> Self {
        self.adversary = adversary;
        self
    }

    /// Sets the activation schedule.
    pub fn with_activation(mut self, activation: ActivationSchedule) -> Self {
        self.activation = activation;
        self
    }

    /// Sets the bound `N` announced to the protocols.
    pub fn with_upper_bound(mut self, upper_bound_n: u64) -> Self {
        self.upper_bound_n = Some(upper_bound_n);
        self
    }

    /// Sets the round cap.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// The effective bound `N` announced to protocols.
    pub fn upper_bound(&self) -> u64 {
        self.upper_bound_n
            .unwrap_or_else(|| next_power_of_two(self.num_nodes as u64))
    }

    /// The engine configuration for this scenario.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::new(self.num_nodes, self.num_frequencies, self.disruption_bound)
            .with_upper_bound(self.upper_bound())
            .with_max_rounds(self.max_rounds)
            .with_extra_rounds_after_sync(self.extra_rounds_after_sync)
    }

    /// The problem instance `(N, F, t)` of this scenario.
    pub fn instance(&self) -> crate::problem::ProblemInstance {
        crate::problem::ProblemInstance::new(
            self.upper_bound(),
            self.num_frequencies,
            self.disruption_bound,
        )
    }
}

/// Runs `scenario` with protocol instances produced by `factory`, checking
/// the synchronization properties online.
pub fn run_protocol<P, F>(scenario: &Scenario, factory: F, seed: u64) -> SyncOutcome
where
    P: SyncProtocol,
    F: FnMut(NodeId) -> P,
{
    let adversary = scenario.adversary.build(scenario, seed);
    let mut engine = Engine::new(
        scenario.sim_config(),
        factory,
        adversary,
        scenario.activation.clone(),
        seed,
    )
    .expect("scenario produced an invalid simulation configuration");
    let mut checker = PropertyChecker::new();
    let result = engine.run_with_observer(&mut checker);
    let leaders = engine.protocols().iter().filter(|p| p.is_leader()).count();
    SyncOutcome {
        properties: checker.finish(&result),
        result,
        leaders,
        adversary: scenario.adversary.name().to_string(),
        seed,
    }
}

/// Runs the Trapdoor Protocol (default constants) on `scenario`.
pub fn run_trapdoor(scenario: &Scenario, seed: u64) -> SyncOutcome {
    let config = TrapdoorConfig::new(
        scenario.upper_bound(),
        scenario.num_frequencies,
        scenario.disruption_bound,
    );
    run_protocol(scenario, |_| TrapdoorProtocol::new(config), seed)
}

/// Runs the Trapdoor Protocol with an explicit configuration on `scenario`.
pub fn run_trapdoor_with(scenario: &Scenario, config: TrapdoorConfig, seed: u64) -> SyncOutcome {
    run_protocol(scenario, |_| TrapdoorProtocol::new(config), seed)
}

/// Runs the Good Samaritan Protocol (default constants) on `scenario`.
pub fn run_good_samaritan(scenario: &Scenario, seed: u64) -> SyncOutcome {
    let config = GoodSamaritanConfig::new(
        scenario.upper_bound(),
        scenario.num_frequencies,
        scenario.disruption_bound,
    );
    run_protocol(scenario, |_| GoodSamaritanProtocol::new(config), seed)
}

/// Runs the Good Samaritan Protocol with an explicit configuration.
pub fn run_good_samaritan_with(
    scenario: &Scenario,
    config: GoodSamaritanConfig,
    seed: u64,
) -> SyncOutcome {
    run_protocol(scenario, |_| GoodSamaritanProtocol::new(config), seed)
}

/// Runs the wake-up-style baseline on `scenario`.
pub fn run_wakeup(scenario: &Scenario, seed: u64) -> SyncOutcome {
    let config = WakeupConfig::new(
        scenario.upper_bound(),
        scenario.num_frequencies,
        scenario.disruption_bound,
    );
    run_protocol(scenario, |_| WakeupProtocol::new(config), seed)
}

/// Runs the deterministic round-robin hopping baseline on `scenario`.
pub fn run_round_robin(scenario: &Scenario, seed: u64) -> SyncOutcome {
    let config = RoundRobinConfig::new(
        scenario.upper_bound(),
        scenario.num_frequencies,
        scenario.disruption_bound,
    );
    run_protocol(scenario, |_| RoundRobinProtocol::new(config), seed)
}

/// Runs the single-frequency Trapdoor baseline on `scenario`.
pub fn run_single_frequency(scenario: &Scenario, seed: u64) -> SyncOutcome {
    let n = scenario.upper_bound();
    let f = scenario.num_frequencies;
    let t = scenario.disruption_bound;
    run_protocol(scenario, |_| single_frequency_trapdoor(n, f, t), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_defaults() {
        let s = Scenario::new(10, 8, 2);
        assert_eq!(s.upper_bound(), 16);
        assert_eq!(s.adversary, AdversaryKind::None);
        let cfg = s.sim_config();
        assert_eq!(cfg.num_nodes, 10);
        assert_eq!(cfg.upper_bound_n, 16);
        assert!(s.instance().is_valid());
    }

    #[test]
    fn adversary_kind_builds_all_variants() {
        let s = Scenario::new(4, 8, 3);
        for kind in [
            AdversaryKind::None,
            AdversaryKind::FixedBand,
            AdversaryKind::Random,
            AdversaryKind::Sweep,
            AdversaryKind::Bursty {
                period: 10,
                burst_len: 2,
            },
            AdversaryKind::AdaptiveGreedy,
            AdversaryKind::ObliviousRandom { t_actual: 2 },
        ] {
            let mut adv = kind.build(&s, 1);
            let band = FrequencyBand::new(8);
            let set = adv.disrupt(0, band, &History::new(), &mut SimRng::from_seed(0));
            assert!(set.len() <= 8);
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn trapdoor_small_scenario_synchronizes_cleanly() {
        let scenario = Scenario::new(8, 8, 2).with_adversary(AdversaryKind::Random);
        let outcome = run_trapdoor(&scenario, 11);
        assert!(outcome.result.all_synchronized);
        assert_eq!(outcome.leaders, 1);
        assert!(outcome.properties.all_hold());
        assert!(outcome.is_clean());
    }

    #[test]
    fn wakeup_and_round_robin_baselines_run() {
        let scenario = Scenario::new(6, 8, 1);
        let w = run_wakeup(&scenario, 3);
        assert!(w.result.all_synchronized);
        assert!(w.leaders >= 1);
        let r = run_round_robin(&scenario, 3);
        assert!(r.result.all_synchronized);
        assert!(r.leaders >= 1);
    }

    #[test]
    fn single_frequency_degenerates_under_fixed_band_jamming() {
        // With frequency 1 permanently jammed, single-frequency contenders
        // never hear each other: every node wins its own competition and
        // declares itself leader, and late joiners adopt numbering schemes
        // that disagree with the early ones.
        let scenario = Scenario::new(4, 4, 1)
            .with_adversary(AdversaryKind::FixedBand)
            .with_activation(ActivationSchedule::LateJoiner { late: 3 })
            .with_max_rounds(2_000);
        let outcome = run_single_frequency(&scenario, 5);
        assert_eq!(outcome.leaders, 4, "every isolated node elects itself");
        assert!(!outcome.is_clean());
        assert!(
            outcome.properties.total_violations > 0,
            "disagreeing round numbers must be flagged"
        );
    }

    #[test]
    fn identical_seed_identical_outcome() {
        let scenario = Scenario::new(6, 8, 2).with_adversary(AdversaryKind::Random);
        let a = run_trapdoor(&scenario, 21);
        let b = run_trapdoor(&scenario, 21);
        assert_eq!(a, b);
    }
}
