//! Convenience wiring between the protocols and the radio engine.
//!
//! A [`Scenario`] describes one synchronization setting — how many devices,
//! how many frequencies, the disruption bound, which adversary (by registry
//! name, see [`crate::registry`]), and the activation schedule. The primary
//! way to execute one is the [`Sim`] builder:
//!
//! ```
//! use wsync_core::sim::Sim;
//! use wsync_core::spec::ScenarioSpec;
//!
//! let spec = ScenarioSpec::new("trapdoor", 8, 8, 2).with_adversary("random");
//! let outcome = Sim::from_spec(&spec)?.run_one(7);
//! assert!(outcome.result.all_synchronized);
//! # Ok::<(), wsync_core::spec::SpecError>(())
//! ```
//!
//! [`run_protocol`] remains the statically-typed escape hatch for custom
//! protocol types that are not registered (e.g. the fault-tolerance
//! crash wrapper); the per-protocol `run_*` shorthands are deprecated thin
//! wrappers over the registry path.

use wsync_radio::activation::ActivationSchedule;
use wsync_radio::adversary::{Adversary, DisruptionSet};
use wsync_radio::engine::{Engine, SimConfig};
use wsync_radio::fault::FaultLayer;
use wsync_radio::frequency::FrequencyBand;
use wsync_radio::history::History;
use wsync_radio::node::NodeId;
use wsync_radio::protocol::Protocol;
use wsync_radio::rng::SimRng;

use serde::{Deserialize, Serialize};

use crate::baselines::{RoundRobinProtocol, WakeupProtocol};
use crate::checker::PropertyChecker;
use crate::good_samaritan::{GoodSamaritanConfig, GoodSamaritanProtocol};
use crate::params::next_power_of_two;
use crate::registry;
use crate::report::SyncOutcome;
use crate::sim::Sim;
use crate::spec::ComponentSpec;
use crate::trapdoor::{TrapdoorConfig, TrapdoorProtocol};

/// Protocols that elect a leader while solving wireless synchronization.
///
/// Implemented by every protocol in this crate; used by the runner to count
/// leaders at the end of an execution (the paper's agreement argument rests
/// on there being at most one).
pub trait SyncProtocol: Protocol {
    /// Whether this node currently considers itself the leader.
    fn is_leader(&self) -> bool;
    /// A short name for the protocol (used in experiment tables).
    fn protocol_name(&self) -> &'static str;
}

impl SyncProtocol for TrapdoorProtocol {
    fn is_leader(&self) -> bool {
        TrapdoorProtocol::is_leader(self)
    }
    fn protocol_name(&self) -> &'static str {
        "trapdoor"
    }
}

impl SyncProtocol for GoodSamaritanProtocol {
    fn is_leader(&self) -> bool {
        GoodSamaritanProtocol::is_leader(self)
    }
    fn protocol_name(&self) -> &'static str {
        "good-samaritan"
    }
}

impl SyncProtocol for WakeupProtocol {
    fn is_leader(&self) -> bool {
        WakeupProtocol::is_leader(self)
    }
    fn protocol_name(&self) -> &'static str {
        "wakeup"
    }
}

impl SyncProtocol for RoundRobinProtocol {
    fn is_leader(&self) -> bool {
        RoundRobinProtocol::is_leader(self)
    }
    fn protocol_name(&self) -> &'static str {
        "round-robin"
    }
}

/// Typed shorthand for the built-in adversaries.
///
/// This enum predates the open [`registry`]; it remains as
/// a convenient, typo-proof way to name a built-in adversary
/// (`scenario.with_adversary(AdversaryKind::Random)`) and converts into the
/// registry's [`ComponentSpec`] form via [`Into`]. Adversaries added by
/// downstream crates have no variant here — they are addressed by name —
/// which is exactly why the `build` method here is deprecated in favour of
/// the registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdversaryKind {
    /// No disruption at all.
    None,
    /// Always disrupt frequencies `1..=t` (the Theorem 1 weak adversary).
    FixedBand,
    /// Disrupt `t` fresh uniformly random frequencies each round.
    Random,
    /// A sweeping window of `t` frequencies.
    Sweep,
    /// Bursty interference: jam `t` random frequencies during the first
    /// `burst_len` rounds of every `period`-round cycle.
    Bursty {
        /// Cycle length in rounds.
        period: u64,
        /// Jamming rounds at the start of each cycle.
        burst_len: u64,
    },
    /// Adaptive: jam the `t` frequencies with the most recent listeners.
    AdaptiveGreedy,
    /// Oblivious adversary jamming exactly `t_actual ≤ t` random frequencies
    /// per round, pre-sampled before the execution (the Good Samaritan
    /// good-execution adversary).
    ObliviousRandom {
        /// Actual number of frequencies disrupted per round (`t′`).
        t_actual: u32,
    },
}

impl AdversaryKind {
    /// A short name for experiment tables — the same string the registry
    /// uses as this adversary's key.
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryKind::None => "none",
            AdversaryKind::FixedBand => "fixed-band",
            AdversaryKind::Random => "random",
            AdversaryKind::Sweep => "sweep",
            AdversaryKind::Bursty { .. } => "bursty",
            AdversaryKind::AdaptiveGreedy => "adaptive-greedy",
            AdversaryKind::ObliviousRandom { .. } => "oblivious-random",
        }
    }

    /// The registry component this variant denotes.
    pub fn to_component(&self) -> ComponentSpec {
        match self {
            AdversaryKind::Bursty { period, burst_len } => ComponentSpec::named("bursty")
                .with("period", *period)
                .with("burst_len", *burst_len),
            AdversaryKind::ObliviousRandom { t_actual } => {
                ComponentSpec::named("oblivious-random").with("t_actual", u64::from(*t_actual))
            }
            other => ComponentSpec::named(other.name()),
        }
    }

    /// Instantiates the adversary for a given scenario and seed.
    #[deprecated(
        since = "0.2.0",
        note = "resolve through the registry instead: `registry::build_adversary(&kind.to_component(), scenario, seed)`"
    )]
    pub fn build(&self, scenario: &Scenario, seed: u64) -> BoxedAdversary {
        registry::build_adversary(&self.to_component(), scenario, seed)
            .expect("built-in adversaries always resolve against the default registry")
    }
}

impl From<AdversaryKind> for ComponentSpec {
    fn from(kind: AdversaryKind) -> Self {
        kind.to_component()
    }
}

impl From<&AdversaryKind> for ComponentSpec {
    fn from(kind: &AdversaryKind) -> Self {
        kind.to_component()
    }
}

/// A boxed adversary so the runner can pick one at run time while the engine
/// stays statically typed.
pub struct BoxedAdversary {
    inner: Box<dyn Adversary>,
}

impl std::fmt::Debug for BoxedAdversary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("BoxedAdversary")
            .field(&self.inner.name())
            .finish()
    }
}

impl BoxedAdversary {
    /// Boxes a concrete adversary (what [`registry`] adversary factories
    /// return).
    pub fn new(inner: Box<dyn Adversary>) -> Self {
        BoxedAdversary { inner }
    }
}

impl Adversary for BoxedAdversary {
    fn budget(&self) -> u32 {
        self.inner.budget()
    }

    fn max_lookback(&self) -> Option<usize> {
        self.inner.max_lookback()
    }

    fn disrupt(
        &mut self,
        round: u64,
        band: FrequencyBand,
        history: &History,
        rng: &mut SimRng,
    ) -> DisruptionSet {
        self.inner.disrupt(round, band, history, rng)
    }

    fn disrupt_with_current(
        &mut self,
        round: u64,
        band: FrequencyBand,
        history: &History,
        current_broadcasters: &[u32],
        current_listeners: &[u32],
        rng: &mut SimRng,
    ) -> DisruptionSet {
        self.inner.disrupt_with_current(
            round,
            band,
            history,
            current_broadcasters,
            current_listeners,
            rng,
        )
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// A complete description of one synchronization experiment setting.
///
/// This is the *runtime* shape — everything except the protocol choice.
/// The declarative, serializable form that additionally names the protocol
/// is [`ScenarioSpec`](crate::spec::ScenarioSpec); the two convert into
/// each other losslessly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Actual number of participating devices `n`.
    pub num_nodes: usize,
    /// Number of frequencies `F`.
    pub num_frequencies: u32,
    /// Disruption bound `t < F` (announced to the protocols and enforced on
    /// the adversary).
    pub disruption_bound: u32,
    /// Bound `N ≥ n` announced to the protocols; defaults to
    /// `n.next_power_of_two()`.
    pub upper_bound_n: Option<u64>,
    /// The adversary to run against (registry name plus parameters).
    pub adversary: ComponentSpec,
    /// When devices are activated.
    pub activation: ActivationSchedule,
    /// Round cap.
    pub max_rounds: u64,
    /// Extra rounds to simulate after everyone synchronized (lets the
    /// checker observe that outputs keep incrementing).
    pub extra_rounds_after_sync: u64,
    /// Network-fault layers applied between resolution and delivery
    /// (registry names plus parameters), stacked in declaration order.
    /// Empty means the classic fault-free execution.
    pub faults: Vec<ComponentSpec>,
}

impl Scenario {
    /// Creates a scenario with no adversary, simultaneous activation, and a
    /// generous round cap.
    pub fn new(num_nodes: usize, num_frequencies: u32, disruption_bound: u32) -> Self {
        Scenario {
            num_nodes,
            num_frequencies,
            disruption_bound,
            upper_bound_n: None,
            adversary: ComponentSpec::named("none"),
            activation: ActivationSchedule::Simultaneous,
            max_rounds: 2_000_000,
            extra_rounds_after_sync: 8,
            faults: Vec::new(),
        }
    }

    /// Sets the adversary — a registry name (`"random"`), a
    /// [`ComponentSpec`] with parameters, or a typed [`AdversaryKind`].
    pub fn with_adversary(mut self, adversary: impl Into<ComponentSpec>) -> Self {
        self.adversary = adversary.into();
        self
    }

    /// Sets the activation schedule.
    pub fn with_activation(mut self, activation: ActivationSchedule) -> Self {
        self.activation = activation;
        self
    }

    /// Sets the bound `N` announced to the protocols.
    pub fn with_upper_bound(mut self, upper_bound_n: u64) -> Self {
        self.upper_bound_n = Some(upper_bound_n);
        self
    }

    /// Sets the round cap.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Appends a network-fault layer — a registry name (`"drop"`) or a
    /// [`ComponentSpec`] with parameters. Layers stack in the order added.
    pub fn with_fault(mut self, fault: impl Into<ComponentSpec>) -> Self {
        self.faults.push(fault.into());
        self
    }

    /// The effective bound `N` announced to protocols.
    pub fn upper_bound(&self) -> u64 {
        self.upper_bound_n
            .unwrap_or_else(|| next_power_of_two(self.num_nodes as u64))
    }

    /// The engine configuration for this scenario.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::new(self.num_nodes, self.num_frequencies, self.disruption_bound)
            .with_upper_bound(self.upper_bound())
            .with_max_rounds(self.max_rounds)
            .with_extra_rounds_after_sync(self.extra_rounds_after_sync)
    }

    /// The problem instance `(N, F, t)` of this scenario.
    pub fn instance(&self) -> crate::problem::ProblemInstance {
        crate::problem::ProblemInstance::new(
            self.upper_bound(),
            self.num_frequencies,
            self.disruption_bound,
        )
    }
}

/// The one engine-invocation path shared by every run in the workspace:
/// builds the engine, composes the probe stack (the property checker plus
/// any declarative probes), executes, and counts leaders. Both
/// [`run_protocol`] (statically typed) and
/// [`Sim::run_one`](crate::sim::Sim::run_one) (registry path) end here.
pub(crate) fn execute<P, F>(
    scenario: &Scenario,
    factory: F,
    adversary: BoxedAdversary,
    seed: u64,
) -> SyncOutcome
where
    P: SyncProtocol,
    F: FnMut(NodeId) -> P,
{
    let faults = build_scenario_faults(scenario);
    execute_probed(scenario, factory, adversary, seed, Vec::new(), faults).0
}

/// Builds the fault layers a scenario declares, resolving names against the
/// process-global registry. Panics on an unknown name or bad parameters —
/// callers on the validated [`Sim`] path build layers from factories
/// resolved at construction instead.
pub(crate) fn build_scenario_faults(scenario: &Scenario) -> Vec<Box<dyn FaultLayer>> {
    scenario
        .faults
        .iter()
        .map(|fault| {
            registry::build_fault(fault, scenario)
                .unwrap_or_else(|e| panic!("scenario fault failed to build: {e}"))
        })
        .collect()
}

/// [`execute`] with declarative probes attached to the engine's stack.
/// Returns the outcome together with each probe's finalized output, in
/// declaration order. Probes only observe, so the outcome is bit-identical
/// with and without them (`tests/engine_golden.rs` pins this).
pub(crate) fn execute_probed<P, F>(
    scenario: &Scenario,
    factory: F,
    adversary: BoxedAdversary,
    seed: u64,
    probes: Vec<registry::RegistryProbe>,
    faults: Vec<Box<dyn FaultLayer>>,
) -> (SyncOutcome, Vec<registry::ProbeOutput>)
where
    P: SyncProtocol,
    F: FnMut(NodeId) -> P,
{
    let mut engine = Engine::new(
        scenario.sim_config(),
        factory,
        adversary,
        scenario.activation.clone(),
        seed,
    )
    .expect("scenario produced an invalid simulation configuration");
    for layer in faults {
        engine.attach_fault(layer);
    }
    let checker_slot = engine.attach_probe(Box::new(PropertyChecker::new()));
    let probe_slots: Vec<usize> = probes
        .into_iter()
        .map(|probe| engine.attach_probe(Box::new(probe)))
        .collect();
    let result = engine.run();
    let mut stack = engine.take_probes();
    let checker: PropertyChecker = stack
        .take(checker_slot)
        .expect("the checker probe is recoverable from its slot");
    let outputs: Vec<registry::ProbeOutput> = probe_slots
        .into_iter()
        .map(|slot| {
            stack
                .take::<registry::RegistryProbe>(slot)
                .expect("registry probes are recoverable from their slots")
                .finish(&result)
        })
        .collect();
    let leaders = engine.protocols().iter().filter(|p| p.is_leader()).count();
    let outcome = SyncOutcome {
        properties: checker.finish(&result),
        result,
        leaders,
        adversary: scenario.adversary.name().to_string(),
        seed,
    };
    (outcome, outputs)
}

/// Runs `scenario` with protocol instances produced by `factory`, checking
/// the synchronization properties online.
///
/// This is the statically-typed escape hatch for protocol types that are
/// not registered (wrappers, instrumented variants). The adversary is still
/// resolved by name through the global registry.
///
/// # Panics
///
/// Panics when the scenario is invalid or its adversary cannot be resolved;
/// use [`Sim::from_spec`](crate::sim::Sim::from_spec) for fallible,
/// validated construction.
pub fn run_protocol<P, F>(scenario: &Scenario, factory: F, seed: u64) -> SyncOutcome
where
    P: SyncProtocol,
    F: FnMut(NodeId) -> P,
{
    let adversary = registry::build_adversary(&scenario.adversary, scenario, seed)
        .unwrap_or_else(|e| panic!("scenario adversary failed to build: {e}"));
    execute(scenario, factory, adversary, seed)
}

fn run_named(scenario: &Scenario, protocol: impl Into<ComponentSpec>, seed: u64) -> SyncOutcome {
    Sim::from_scenario(scenario, protocol)
        .unwrap_or_else(|e| panic!("invalid scenario: {e}"))
        .run_one(seed)
}

/// The registry parameters equivalent to an explicit [`TrapdoorConfig`].
pub fn trapdoor_component(config: &TrapdoorConfig) -> ComponentSpec {
    let mut component = ComponentSpec::named("trapdoor")
        .with("upper_bound_n", config.upper_bound_n)
        .with("num_frequencies", config.num_frequencies)
        .with("disruption_bound", config.disruption_bound)
        .with("epoch_constant", config.epoch_constant)
        .with("final_epoch_constant", config.final_epoch_constant)
        .with(
            "leader_broadcast_probability",
            config.leader_broadcast_probability,
        );
    if let Some(limit) = config.frequency_limit {
        component = component.with("frequency_limit", limit);
    }
    component
}

/// The registry parameters equivalent to an explicit
/// [`GoodSamaritanConfig`].
pub fn good_samaritan_component(config: &GoodSamaritanConfig) -> ComponentSpec {
    ComponentSpec::named("good-samaritan")
        .with("upper_bound_n", config.upper_bound_n)
        .with("num_frequencies", config.num_frequencies)
        .with("disruption_bound", config.disruption_bound)
        .with("epoch_constant", config.epoch_constant)
        .with("threshold_shift", config.threshold_shift)
        .with("fallback_multiplier", config.fallback_multiplier)
        .with(
            "leader_broadcast_probability",
            config.leader_broadcast_probability,
        )
}

/// Runs the Trapdoor Protocol (default constants) on `scenario`.
#[deprecated(
    since = "0.2.0",
    note = "use `Sim::from_scenario(scenario, \"trapdoor\")` or a ScenarioSpec"
)]
pub fn run_trapdoor(scenario: &Scenario, seed: u64) -> SyncOutcome {
    run_named(scenario, "trapdoor", seed)
}

/// Runs the Trapdoor Protocol with an explicit configuration on `scenario`.
#[deprecated(
    since = "0.2.0",
    note = "use `Sim::from_scenario(scenario, trapdoor_component(&config))`"
)]
pub fn run_trapdoor_with(scenario: &Scenario, config: TrapdoorConfig, seed: u64) -> SyncOutcome {
    run_named(scenario, trapdoor_component(&config), seed)
}

/// Runs the Good Samaritan Protocol (default constants) on `scenario`.
#[deprecated(
    since = "0.2.0",
    note = "use `Sim::from_scenario(scenario, \"good-samaritan\")` or a ScenarioSpec"
)]
pub fn run_good_samaritan(scenario: &Scenario, seed: u64) -> SyncOutcome {
    run_named(scenario, "good-samaritan", seed)
}

/// Runs the Good Samaritan Protocol with an explicit configuration.
#[deprecated(
    since = "0.2.0",
    note = "use `Sim::from_scenario(scenario, good_samaritan_component(&config))`"
)]
pub fn run_good_samaritan_with(
    scenario: &Scenario,
    config: GoodSamaritanConfig,
    seed: u64,
) -> SyncOutcome {
    run_named(scenario, good_samaritan_component(&config), seed)
}

/// Runs the wake-up-style baseline on `scenario`.
#[deprecated(
    since = "0.2.0",
    note = "use `Sim::from_scenario(scenario, \"wakeup\")` or a ScenarioSpec"
)]
pub fn run_wakeup(scenario: &Scenario, seed: u64) -> SyncOutcome {
    run_named(scenario, "wakeup", seed)
}

/// Runs the deterministic round-robin hopping baseline on `scenario`.
#[deprecated(
    since = "0.2.0",
    note = "use `Sim::from_scenario(scenario, \"round-robin\")` or a ScenarioSpec"
)]
pub fn run_round_robin(scenario: &Scenario, seed: u64) -> SyncOutcome {
    run_named(scenario, "round-robin", seed)
}

/// Runs the single-frequency Trapdoor baseline on `scenario`.
#[deprecated(
    since = "0.2.0",
    note = "use `Sim::from_scenario(scenario, \"single-frequency\")` or a ScenarioSpec"
)]
pub fn run_single_frequency(scenario: &Scenario, seed: u64) -> SyncOutcome {
    run_named(scenario, "single-frequency", seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_defaults() {
        let s = Scenario::new(10, 8, 2);
        assert_eq!(s.upper_bound(), 16);
        assert_eq!(s.adversary, ComponentSpec::named("none"));
        let cfg = s.sim_config();
        assert_eq!(cfg.num_nodes, 10);
        assert_eq!(cfg.upper_bound_n, 16);
        assert!(s.instance().is_valid());
    }

    #[test]
    fn adversary_kind_converts_and_builds_all_variants() {
        let s = Scenario::new(4, 8, 3);
        for kind in [
            AdversaryKind::None,
            AdversaryKind::FixedBand,
            AdversaryKind::Random,
            AdversaryKind::Sweep,
            AdversaryKind::Bursty {
                period: 10,
                burst_len: 2,
            },
            AdversaryKind::AdaptiveGreedy,
            AdversaryKind::ObliviousRandom { t_actual: 2 },
        ] {
            let component = kind.to_component();
            assert_eq!(component.name(), kind.name());
            let mut adv = registry::build_adversary(&component, &s, 1).expect("builtin resolves");
            let band = FrequencyBand::new(8);
            let set = adv.disrupt(0, band, &History::new(), &mut SimRng::from_seed(0));
            assert!(set.len() <= 8);
            // the deprecated wrapper builds the identical adversary
            #[allow(deprecated)]
            let mut legacy = kind.build(&s, 1);
            let legacy_set = legacy.disrupt(0, band, &History::new(), &mut SimRng::from_seed(0));
            assert_eq!(set, legacy_set);
        }
    }

    #[test]
    fn trapdoor_small_scenario_synchronizes_cleanly() {
        let scenario = Scenario::new(8, 8, 2).with_adversary("random");
        let outcome = run_named(&scenario, "trapdoor", 11);
        assert!(outcome.result.all_synchronized);
        assert_eq!(outcome.leaders, 1);
        assert!(outcome.properties.all_hold());
        assert!(outcome.is_clean());
    }

    #[test]
    fn deprecated_shorthands_match_the_registry_path() {
        let scenario = Scenario::new(8, 8, 2).with_adversary(AdversaryKind::Random);
        #[allow(deprecated)]
        let legacy = run_trapdoor(&scenario, 11);
        let registry_path = run_named(&scenario, "trapdoor", 11);
        assert_eq!(legacy, registry_path);
    }

    #[test]
    fn wakeup_and_round_robin_baselines_run() {
        let scenario = Scenario::new(6, 8, 1);
        let w = run_named(&scenario, "wakeup", 3);
        assert!(w.result.all_synchronized);
        assert!(w.leaders >= 1);
        let r = run_named(&scenario, "round-robin", 3);
        assert!(r.result.all_synchronized);
        assert!(r.leaders >= 1);
    }

    #[test]
    fn single_frequency_degenerates_under_fixed_band_jamming() {
        // With frequency 1 permanently jammed, single-frequency contenders
        // never hear each other: every node wins its own competition and
        // declares itself leader, and late joiners adopt numbering schemes
        // that disagree with the early ones.
        let scenario = Scenario::new(4, 4, 1)
            .with_adversary("fixed-band")
            .with_activation(ActivationSchedule::LateJoiner { late: 3 })
            .with_max_rounds(2_000);
        let outcome = run_named(&scenario, "single-frequency", 5);
        assert_eq!(outcome.leaders, 4, "every isolated node elects itself");
        assert!(!outcome.is_clean());
        assert!(
            outcome.properties.total_violations > 0,
            "disagreeing round numbers must be flagged"
        );
    }

    #[test]
    fn identical_seed_identical_outcome() {
        let scenario = Scenario::new(6, 8, 2).with_adversary("random");
        let a = run_named(&scenario, "trapdoor", 21);
        let b = run_named(&scenario, "trapdoor", 21);
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_config_components_reproduce_the_configs() {
        let config = TrapdoorConfig::new(64, 16, 4)
            .with_epoch_constant(1.5)
            .with_frequency_limit(3);
        let component = trapdoor_component(&config);
        assert_eq!(component.name(), "trapdoor");
        let scenario = Scenario::new(8, 16, 4);
        // rebuilding through the registry yields the same protocol config
        let factory = registry::resolve_protocol("trapdoor").unwrap();
        assert!(factory.instantiate(&scenario, &component.params).is_ok());

        let gs = GoodSamaritanConfig::new(32, 8, 2).with_threshold_shift(5);
        let component = good_samaritan_component(&gs);
        assert_eq!(component.name(), "good-samaritan");
        let factory = registry::resolve_protocol("good-samaritan").unwrap();
        assert!(factory.instantiate(&scenario, &component.params).is_ok());
    }
}
