//! Contender timestamps.
//!
//! The Trapdoor Protocol labels every contender message with the sender's
//! *timestamp*: the pair `(ra, uid)` where `ra` is the number of rounds the
//! contender has been active and `uid` is a unique identifier drawn at
//! random upon activation (Section 6.1). Timestamps are compared
//! lexicographically; a contender that receives a message from a contender
//! with a *larger* timestamp is knocked out, so the earliest-activated node
//! (largest `ra`, ties broken by `uid`) can never be knocked out.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

use wsync_radio::rng::SimRng;

/// A contender timestamp `(rounds_active, uid)` with lexicographic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Timestamp {
    /// Number of rounds the node has been active (including the current
    /// round).
    pub rounds_active: u64,
    /// Unique identifier chosen at random upon activation.
    pub uid: u64,
}

impl Timestamp {
    /// Creates a timestamp.
    pub fn new(rounds_active: u64, uid: u64) -> Self {
        Timestamp { rounds_active, uid }
    }

    /// Draws a fresh unique identifier uniformly from `[1, c·N²]` with
    /// `c = 64`, as suggested by the paper (footnote 4): with `n ≤ N`
    /// participants the collision probability is at most `n²/(c·N²) ≤ 1/c`.
    pub fn draw_uid(upper_bound_n: u64, rng: &mut SimRng) -> u64 {
        let n = upper_bound_n.max(2);
        let range_max = 64u64.saturating_mul(n).saturating_mul(n).max(2);
        rng.gen_range(1..=range_max)
    }

    /// Advances the timestamp by one round of activity.
    pub fn tick(&mut self) {
        self.rounds_active += 1;
    }
}

impl PartialOrd for Timestamp {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Timestamp {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.rounds_active, self.uid).cmp(&(other.rounds_active, other.uid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lexicographic_order() {
        let a = Timestamp::new(5, 100);
        let b = Timestamp::new(6, 1);
        let c = Timestamp::new(5, 101);
        assert!(b > a, "more rounds active wins regardless of uid");
        assert!(c > a, "ties on rounds_active broken by uid");
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn tick_increments_rounds_active() {
        let mut t = Timestamp::new(0, 7);
        t.tick();
        t.tick();
        assert_eq!(t.rounds_active, 2);
        assert_eq!(t.uid, 7);
    }

    #[test]
    fn draw_uid_in_range_and_rarely_colliding() {
        let mut rng = SimRng::from_seed(42);
        let n = 64u64;
        let max = 64 * n * n;
        let uids: Vec<u64> = (0..200).map(|_| Timestamp::draw_uid(n, &mut rng)).collect();
        assert!(uids.iter().all(|&u| u >= 1 && u <= max));
        let mut sorted = uids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        // with 200 draws from a space of 64·64² ≈ 262k values, collisions are
        // overwhelmingly unlikely
        assert_eq!(sorted.len(), uids.len());
    }

    #[test]
    fn draw_uid_handles_tiny_upper_bound() {
        let mut rng = SimRng::from_seed(1);
        for _ in 0..50 {
            let u = Timestamp::draw_uid(1, &mut rng);
            assert!(u >= 1);
        }
    }

    proptest! {
        #[test]
        fn order_is_total_and_consistent(
            ra1 in 0u64..1000, uid1 in 0u64..1000,
            ra2 in 0u64..1000, uid2 in 0u64..1000,
        ) {
            let a = Timestamp::new(ra1, uid1);
            let b = Timestamp::new(ra2, uid2);
            // antisymmetry and totality
            match a.cmp(&b) {
                Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
                Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
                Ordering::Equal => {
                    prop_assert_eq!(a, b);
                }
            }
            // consistency with the lexicographic definition
            prop_assert_eq!(a < b, (ra1, uid1) < (ra2, uid2));
        }

        #[test]
        fn ticking_preserves_relative_order(ra in 0u64..1000, uid1 in 0u64..1000, uid2 in 0u64..1000) {
            let mut a = Timestamp::new(ra, uid1);
            let mut b = Timestamp::new(ra + 1, uid2);
            prop_assert!(b > a);
            a.tick();
            b.tick();
            prop_assert!(b > a, "both ticking preserves order");
        }
    }
}
