//! The simulation builder: one validated, runnable entry point.
//!
//! [`Sim`] is the single code path every execution in the workspace goes
//! through. Build one from a declarative [`ScenarioSpec`] (possibly loaded
//! from JSON) or from an existing runtime [`Scenario`] plus a protocol
//! name, choose a seed range, and run — one trial at a time or sharded
//! across cores by a [`BatchRunner`]:
//!
//! ```
//! use wsync_core::batch::BatchRunner;
//! use wsync_core::sim::Sim;
//! use wsync_core::spec::ScenarioSpec;
//!
//! let spec = ScenarioSpec::new("trapdoor", 8, 8, 2).with_adversary("random");
//! let outcomes = Sim::from_spec(&spec)?
//!     .seeds(0..8)
//!     .run(&BatchRunner::new());
//! assert_eq!(outcomes.len(), 8);
//! # Ok::<(), wsync_core::spec::SpecError>(())
//! ```
//!
//! All validation happens in [`Sim::from_spec`]: protocol and adversary
//! names resolve against the [`registry`], their
//! parameters are type-checked, and the instance passes
//! `SimConfig::validate` — so a bad spec is a typed [`SpecError`] at build
//! time, never a panic mid-run. The deprecated `run_*` shorthands,
//! `run_trial` on `ProtocolKind`, and `BatchRunner::run` are all thin wrappers
//! over this type.

use std::ops::Range;
use std::sync::Arc;

use crate::batch::{BatchRunner, BatchStats};
use crate::registry::{
    AdversaryFactory, FaultFactory, ProbeFactory, ProbeOutput, ProtocolCtor, Registry,
    RegistryProbe,
};
use crate::report::SyncOutcome;
use crate::runner::{execute_probed, Scenario};
use crate::spec::{ComponentSpec, ScenarioSpec, SpecError};
use crate::store::{spec_digest, ResultStore};
use crate::{registry, spec};

/// One trial's outcome together with the outputs of the spec's declared
/// probes (see [`Sim::run_probed`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbedOutcome {
    /// The trial outcome — bit-identical to what [`Sim::run_one`] returns,
    /// probes or not.
    pub outcome: SyncOutcome,
    /// The declared probes' finalized outputs, in declaration order —
    /// `None` when the trial was served from an attached [`ResultStore`]
    /// without executing the engine (probes observe live executions only;
    /// use [`SweepRunner::record_only`](crate::sweep::SweepRunner::record_only)
    /// semantics to force execution).
    pub probes: Option<Vec<ProbeOutput>>,
}

/// A fully validated, runnable simulation: scenario, resolved protocol
/// constructor, resolved adversary factory, resolved probe factories, and
/// a seed range.
pub struct Sim {
    scenario: Scenario,
    protocol: ComponentSpec,
    ctor: ProtocolCtor,
    adversary: Arc<dyn AdversaryFactory>,
    probes: Vec<(ComponentSpec, Arc<dyn ProbeFactory>)>,
    faults: Vec<(ComponentSpec, Arc<dyn FaultFactory>)>,
    seeds: Range<u64>,
    digest: u64,
    store: Option<Arc<ResultStore>>,
}

impl Sim {
    /// Builds a simulation from a declarative spec, resolving names against
    /// the process-global registry.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when the instance is inconsistent (`t ≥ F`,
    /// `n = 0`, `N < n`, a zero round cap), a name is unknown, or a
    /// parameter is missing, mistyped, or unrecognised.
    pub fn from_spec(spec: &ScenarioSpec) -> Result<Self, SpecError> {
        Sim::build(
            spec,
            registry::resolve_protocol(spec.protocol.name())?,
            registry::resolve_adversary(spec.adversary.name())?,
            spec.probes
                .iter()
                .map(|probe| Ok((probe.clone(), registry::resolve_probe(probe.name())?)))
                .collect::<Result<_, SpecError>>()?,
            spec.faults
                .iter()
                .map(|fault| Ok((fault.clone(), registry::resolve_fault(fault.name())?)))
                .collect::<Result<_, SpecError>>()?,
        )
    }

    /// Builds a simulation from a declarative spec, resolving names against
    /// an explicit registry instead of the process-global one.
    pub fn from_spec_in(registry: &Registry, spec: &ScenarioSpec) -> Result<Self, SpecError> {
        Sim::build(
            spec,
            registry.protocol(spec.protocol.name())?,
            registry.adversary(spec.adversary.name())?,
            spec.probes
                .iter()
                .map(|probe| Ok((probe.clone(), registry.probe(probe.name())?)))
                .collect::<Result<_, SpecError>>()?,
            spec.faults
                .iter()
                .map(|fault| Ok((fault.clone(), registry.fault(fault.name())?)))
                .collect::<Result<_, SpecError>>()?,
        )
    }

    /// Builds a simulation from a runtime [`Scenario`] plus a protocol
    /// (name or name-plus-params), resolving against the process-global
    /// registry.
    pub fn from_scenario(
        scenario: &Scenario,
        protocol: impl Into<ComponentSpec>,
    ) -> Result<Self, SpecError> {
        Sim::from_spec(&ScenarioSpec::from_scenario(scenario, protocol))
    }

    fn build(
        spec: &ScenarioSpec,
        protocol_factory: Arc<dyn crate::registry::ProtocolFactory>,
        adversary_factory: Arc<dyn AdversaryFactory>,
        probe_factories: Vec<(ComponentSpec, Arc<dyn ProbeFactory>)>,
        fault_factories: Vec<(ComponentSpec, Arc<dyn FaultFactory>)>,
    ) -> Result<Self, SpecError> {
        spec.validate()?;
        let scenario = spec.scenario();
        let ctor = protocol_factory.instantiate(&scenario, &spec.protocol.params)?;
        // Probe-build the adversary, the probes, and the fault layers once
        // so parameter errors surface here, keeping `run_one`/`run_probed`
        // infallible. AdversaryFactory's contract requires validation to be
        // seed-independent, so one probe covers all seeds; probe and fault
        // factories take no seed at all.
        adversary_factory.build(&scenario, &spec.adversary.params, 0)?;
        for (component, factory) in &probe_factories {
            factory.build(&scenario, &component.params)?;
        }
        for (component, factory) in &fault_factories {
            factory.build(&scenario, &component.params)?;
        }
        Ok(Sim {
            scenario,
            protocol: spec.protocol.clone(),
            ctor,
            adversary: adversary_factory,
            probes: probe_factories,
            faults: fault_factories,
            seeds: 0..1,
            digest: spec_digest(spec),
            store: None,
        })
    }

    /// Sets the seed range subsequent [`run`](Self::run) /
    /// [`run_stats`](Self::run_stats) calls execute (default `0..1`).
    pub fn seeds(mut self, seeds: Range<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// The runtime scenario this simulation executes.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The protocol component (registry name plus parameters).
    pub fn protocol(&self) -> &ComponentSpec {
        &self.protocol
    }

    /// The configured seed range.
    pub fn seed_range(&self) -> Range<u64> {
        self.seeds.clone()
    }

    /// Attaches a persistent [`ResultStore`]: subsequent
    /// [`run_one`](Self::run_one) / [`run`](Self::run) calls serve
    /// already-stored trials from the cache without executing the engine,
    /// and persist every trial they do execute. Trials are keyed by the
    /// canonical spec digest ([`spec_digest`]), so equivalent `Sim`s built
    /// in different processes share entries.
    pub fn store(mut self, store: &Arc<ResultStore>) -> Self {
        self.store = Some(Arc::clone(store));
        self
    }

    /// The canonical content digest of this simulation's resolved spec —
    /// the key its trials are stored under.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Runs a single trial. Executions are a pure function of
    /// `(spec, seed)`; with a [`store`](Self::store) attached, an
    /// already-stored trial is returned without touching the engine.
    ///
    /// Declared probes are *not* run on this path (their outputs would be
    /// discarded); use [`run_probed`](Self::run_probed) to carry them. The
    /// outcome is identical either way — probes only observe.
    ///
    /// # Panics
    ///
    /// Panics if persisting a fresh outcome to the attached store fails
    /// (`run_one` stays infallible; orchestration layers that need typed
    /// store errors use [`SweepRunner`](crate::sweep::SweepRunner)).
    pub fn run_one(&self, seed: u64) -> SyncOutcome {
        self.run_inner(seed, false).outcome
    }

    /// Runs a single trial with the spec's declared probes attached to the
    /// engine's probe stack, returning the outcome together with each
    /// probe's finalized output.
    ///
    /// With a [`store`](Self::store) attached, an already-stored trial is
    /// served from the cache with `probes: None` — the engine did not run,
    /// so there was nothing to observe. The outcome itself is bit-identical
    /// to [`run_one`](Self::run_one) in every case (probes never perturb an
    /// execution, and the store digest deliberately excludes them).
    ///
    /// # Panics
    ///
    /// Panics if persisting a fresh outcome to the attached store fails,
    /// like [`run_one`](Self::run_one).
    pub fn run_probed(&self, seed: u64) -> ProbedOutcome {
        self.run_inner(seed, true)
    }

    /// The one trial path behind [`run_one`](Self::run_one) and
    /// [`run_probed`](Self::run_probed): cache lookup, adversary (and
    /// optionally probe) construction, execution, persistence.
    fn run_inner(&self, seed: u64, probed: bool) -> ProbedOutcome {
        if let Some(store) = &self.store {
            if let Some(hit) = store.get(self.digest, seed) {
                return ProbedOutcome {
                    outcome: hit,
                    probes: None,
                };
            }
        }
        let adversary = self
            .adversary
            .build(&self.scenario, &self.scenario.adversary.params, seed)
            .expect("adversary parameters were validated when the Sim was built");
        let probes: Vec<RegistryProbe> = if probed {
            self.probes
                .iter()
                .map(|(component, factory)| {
                    RegistryProbe::new(
                        component.name(),
                        factory
                            .build(&self.scenario, &component.params)
                            .expect("probe parameters were validated when the Sim was built"),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        let faults: Vec<_> = self
            .faults
            .iter()
            .map(|(component, factory)| {
                factory
                    .build(&self.scenario, &component.params)
                    .expect("fault parameters were validated when the Sim was built")
            })
            .collect();
        let (outcome, outputs) = execute_probed(
            &self.scenario,
            |id| (self.ctor)(id),
            adversary,
            seed,
            probes,
            faults,
        );
        if let Some(store) = &self.store {
            store
                .put(self.digest, seed, &outcome)
                .expect("persisting a trial outcome to the result store failed");
        }
        ProbedOutcome {
            outcome,
            probes: probed.then_some(outputs),
        }
    }

    /// The spec's declared probes (name-plus-params components), in
    /// declaration order.
    pub fn probe_components(&self) -> Vec<&ComponentSpec> {
        self.probes.iter().map(|(component, _)| component).collect()
    }

    /// Whether the spec declares any probes.
    pub fn has_probes(&self) -> bool {
        !self.probes.is_empty()
    }

    /// The spec's declared fault layers (name-plus-params components), in
    /// declaration (stack) order.
    pub fn fault_components(&self) -> Vec<&ComponentSpec> {
        self.faults.iter().map(|(component, _)| component).collect()
    }

    /// Whether the spec declares any fault layers.
    pub fn has_faults(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Runs every seed in the configured range on `runner`'s worker pool
    /// and returns the outcomes in seed order (bit-identical to a serial
    /// loop; see [`BatchRunner`]).
    pub fn run(&self, runner: &BatchRunner) -> Vec<SyncOutcome> {
        runner.map(self.seeds.clone(), |seed| self.run_one(seed))
    }

    /// Runs every seed in the configured range and folds the outcomes into
    /// [`BatchStats`].
    pub fn run_stats(&self, runner: &BatchRunner) -> BatchStats {
        BatchStats::aggregate(&self.run(runner))
    }

    /// Expands a [`SweepSpec`](spec::SweepSpec) into `(label, Sim)` pairs,
    /// one per grid point, each configured with the sweep's seed range.
    pub fn from_sweep(sweep: &spec::SweepSpec) -> Result<Vec<(String, Sim)>, SpecError> {
        let seeds = sweep.seeds()?;
        sweep
            .expand()?
            .into_iter()
            .map(|point| {
                Sim::from_spec(&point.spec).map(|sim| (point.label, sim.seeds(seeds.clone())))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    #[test]
    fn spec_driven_run_is_deterministic_and_clean() {
        let spec = ScenarioSpec::new("trapdoor", 8, 8, 2).with_adversary("random");
        let sim = Sim::from_spec(&spec).unwrap();
        let a = sim.run_one(11);
        let b = sim.run_one(11);
        assert_eq!(a, b);
        assert!(a.result.all_synchronized);
        assert_eq!(a.leaders, 1);
        assert_eq!(a.adversary, "random");
    }

    #[test]
    fn invalid_specs_fail_at_build_time_not_mid_run() {
        // t >= F
        assert!(matches!(
            Sim::from_spec(&ScenarioSpec::new("trapdoor", 4, 8, 8)),
            Err(SpecError::InvalidConfig(_))
        ));
        // zero nodes
        assert!(matches!(
            Sim::from_spec(&ScenarioSpec::new("trapdoor", 0, 8, 2)),
            Err(SpecError::InvalidConfig(_))
        ));
        // zero round cap
        assert!(matches!(
            Sim::from_spec(&ScenarioSpec::new("trapdoor", 4, 8, 2).with_max_rounds(0)),
            Err(SpecError::InvalidConfig(_))
        ));
        // unknown protocol
        assert!(matches!(
            Sim::from_spec(&ScenarioSpec::new("paxos", 4, 8, 2)),
            Err(SpecError::UnknownProtocol { .. })
        ));
        // unknown adversary
        assert!(matches!(
            Sim::from_spec(&ScenarioSpec::new("trapdoor", 4, 8, 2).with_adversary("ddos")),
            Err(SpecError::UnknownAdversary { .. })
        ));
        // missing adversary parameter
        assert!(matches!(
            Sim::from_spec(&ScenarioSpec::new("trapdoor", 4, 8, 2).with_adversary("bursty")),
            Err(SpecError::MissingParam { .. })
        ));
        // mistyped protocol parameter
        assert!(matches!(
            Sim::from_spec(
                &ScenarioSpec::new("trapdoor", 4, 8, 2)
                    .with_protocol_param("epoch_constant", "big")
            ),
            Err(SpecError::BadParam { .. })
        ));
    }

    #[test]
    fn batch_run_matches_serial_loop() {
        let spec = ScenarioSpec::new("wakeup", 6, 8, 1).with_adversary("random");
        let sim = Sim::from_spec(&spec).unwrap().seeds(3..9);
        let batch = sim.run(&BatchRunner::with_workers(4));
        let serial: Vec<_> = (3..9).map(|seed| sim.run_one(seed)).collect();
        assert_eq!(batch, serial);
        let stats = sim.run_stats(&BatchRunner::with_workers(2));
        assert_eq!(stats.trials, 6);
    }

    #[test]
    fn sweep_expands_into_labelled_sims() {
        let base = ScenarioSpec::new("trapdoor", 6, 8, 2).with_adversary("random");
        let sweep =
            SweepSpec::new(base, 0..2).with_axis("num_nodes", vec![4u64.into(), 6u64.into()]);
        let sims = Sim::from_sweep(&sweep).unwrap();
        assert_eq!(sims.len(), 2);
        assert_eq!(sims[0].0, "num_nodes=4");
        assert_eq!(sims[0].1.scenario().num_nodes, 4);
        assert_eq!(sims[1].1.seed_range(), 0..2);
        // a sweep containing an invalid point fails as a whole
        let bad = SweepSpec::new(ScenarioSpec::new("trapdoor", 6, 8, 2), 0..2)
            .with_axis("disruption_bound", vec![1u64.into(), 8u64.into()]);
        assert!(Sim::from_sweep(&bad).is_err());
    }

    #[test]
    fn store_attached_sim_serves_cache_hits_without_the_engine() {
        let dir = std::env::temp_dir().join(format!(
            "wsync-sim-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = ScenarioSpec::new("trapdoor", 6, 8, 2).with_adversary("random");
        let plain = Sim::from_spec(&spec).unwrap();
        let fresh = plain.run_one(3);

        let store = Arc::new(crate::store::ResultStore::open(&dir).unwrap());
        let sim = Sim::from_spec(&spec).unwrap().store(&store);
        assert_eq!(sim.run_one(3), fresh); // miss: executes and records
        assert!(store.contains(sim.digest(), 3));

        // Reopen: poison the engine path by checking the stored outcome is
        // what comes back, bit for bit, through a fresh process-like load.
        let store = Arc::new(crate::store::ResultStore::open(&dir).unwrap());
        assert_eq!(store.loaded_records(), 1);
        let sim = Sim::from_spec(&spec).unwrap().store(&store);
        assert_eq!(sim.run_one(3), fresh); // hit: served from the store
        let batch = sim.seeds(3..4).run(&BatchRunner::new());
        assert_eq!(batch, vec![fresh]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_spec_runs_end_to_end() {
        let text = r#"{
            "protocol": "good-samaritan",
            "adversary": {"name": "oblivious-random", "params": {"t_actual": 2}},
            "num_nodes": 8,
            "num_frequencies": 8,
            "disruption_bound": 4
        }"#;
        let spec = ScenarioSpec::from_json(text).unwrap();
        let outcome = Sim::from_spec(&spec).unwrap().run_one(11);
        assert!(outcome.result.all_synchronized);
        assert_eq!(outcome.adversary, "oblivious-random");
    }
}
