//! The persistent, content-addressed trial result store.
//!
//! Every completed trial in this workspace is a pure function of its
//! resolved [`ScenarioSpec`] and seed, which makes results *content
//! addressable*: the store keys each [`SyncOutcome`] by
//! `(digest(spec), seed)`, where the digest is 64-bit FNV-1a over the
//! spec's **canonical** JSON (object keys sorted recursively, compact
//! encoding) — so two specs that differ only in parameter insertion order
//! share cache entries.
//!
//! On disk a store is a directory of sharded JSONL files
//! (`shard-00.jsonl` … `shard-07.jsonl`); each line is one self-contained
//! record written through the dependency-free [`json`] module:
//!
//! ```text
//! {"spec":"9f86d081884c7d65","seed":3,"outcome":{...}}
//! ```
//!
//! Appends are atomic at line granularity: a killed process can leave at
//! most one torn final line per shard, which [`ResultStore::open`] detects,
//! drops, and counts (see [`ResultStore::dropped_records`]) — the
//! corresponding trial is simply recomputed on resume. Records are
//! append-only and idempotent (`put` of an existing key is a no-op), so a
//! sweep restarted against the same store re-executes only the missing
//! trials and, because outcomes contain only integers/booleans/strings,
//! replayed aggregates are **bit-identical** to a from-scratch run.
//!
//! The store is safe to share across the worker threads of a
//! [`BatchRunner`](crate::batch::BatchRunner) /
//! [`SweepRunner`](crate::sweep::SweepRunner): the in-memory index is
//! behind an `RwLock` and each shard file behind its own `Mutex`.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use wsync_radio::engine::{ExecutionResult, NodeSummary};
use wsync_radio::metrics::SimMetrics;
use wsync_radio::node::NodeId;

use crate::checker::{PropertyReport, Violation};
use crate::json::{self, Value};
use crate::report::SyncOutcome;
use crate::spec::ScenarioSpec;

/// Number of JSONL shard files a store spreads its records over.
pub const SHARD_COUNT: usize = 8;

/// An error raised by store I/O (records that fail to *decode* are not
/// errors — they are dropped and counted at open time).
#[derive(Debug)]
pub enum StoreError {
    /// Reading or writing a store file failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Appending one trial record failed. Unlike [`StoreError::Io`], this
    /// names the trial identity, so an orchestration layer (or its user)
    /// can see exactly which `(spec digest, seed)` was lost and which
    /// shard file refused it.
    Append {
        /// The shard file the record was headed for.
        path: PathBuf,
        /// The canonical spec digest of the trial.
        digest: u64,
        /// The trial seed.
        seed: u64,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "result store I/O error at {}: {source}", path.display())
            }
            StoreError::Append {
                path,
                digest,
                seed,
                source,
            } => write!(
                f,
                "result store append to {} failed for trial (spec {digest:016x}, seed {seed}): \
                 {source}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Append { source, .. } => Some(source),
        }
    }
}

/// 64-bit FNV-1a (the workspace's standard content digest).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Recursively sorts object keys, producing the canonical form of a value:
/// two semantically equal specs whose parameter bags were built in
/// different orders canonicalize to the same value (and therefore the same
/// digest).
pub fn canonicalize(value: &Value) -> Value {
    match value {
        Value::Array(items) => Value::Array(items.iter().map(canonicalize).collect()),
        Value::Object(members) => {
            let mut sorted: Vec<(String, Value)> = members
                .iter()
                .map(|(k, v)| (k.clone(), canonicalize(v)))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(sorted)
        }
        other => other.clone(),
    }
}

/// The canonical digest of a resolved scenario spec: FNV-1a over the
/// key-sorted compact JSON encoding.
///
/// The `"probes"` field is excluded: probes are pure observers that cannot
/// perturb an execution, so specs that differ only in their declared probes
/// share cache entries (a trial recorded by an instrumented run is served
/// to an outcome-only sweep and vice versa).
pub fn spec_digest(spec: &ScenarioSpec) -> u64 {
    let mut value = spec.to_value();
    if let Value::Object(members) = &mut value {
        members.retain(|(key, _)| key != "probes");
    }
    fnv1a(canonicalize(&value).to_json_compact().as_bytes())
}

/// What opening (or repairing) found in one shard file: how many
/// undecodable lines were dropped from the index and whether the file
/// itself was rewritten to purge them.
///
/// [`ResultStore::open`] repairs eagerly, so its entries always have
/// `rewritten == true`; [`ResultStore::open_shared`] never rewrites (other
/// processes may hold live append handles), so a fabric worker repairs its
/// claimed shard explicitly via [`ResultStore::repair_shard`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRepair {
    /// The shard index (`0..SHARD_COUNT`).
    pub shard: usize,
    /// The shard's file path.
    pub path: PathBuf,
    /// Undecodable lines dropped from the in-memory index (torn final
    /// lines from a killed writer, or corrupted records).
    pub dropped_lines: u64,
    /// Whether the final line was missing its terminating newline (the
    /// signature of a killed append, even when the bytes still decode).
    pub torn_tail: bool,
    /// Whether the shard file was rewritten in place with only the good
    /// records.
    pub rewritten: bool,
}

/// One pass over a shard file: the decodable records, the lines to keep on
/// a rewrite, and what was wrong.
struct ShardScan {
    good_lines: Vec<String>,
    records: Vec<(u64, u64, SyncOutcome)>,
    dropped: u64,
    ends_clean: bool,
}

impl ShardScan {
    fn needs_rewrite(&self) -> bool {
        self.dropped > 0 || !self.ends_clean
    }
}

/// Reads every line of the shard at `path`, splitting decodable records
/// from torn/corrupt ones. `Ok(None)` means the shard file does not exist
/// yet.
fn scan_shard(path: &Path) -> Result<Option<ShardScan>, StoreError> {
    let mut file = match File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(source) => {
            return Err(StoreError::Io {
                path: path.to_path_buf(),
                source,
            })
        }
    };
    // A shard not ending in '\n' means the last append was cut off by a
    // kill. Even if the surviving bytes happen to decode (the cut can land
    // exactly before the newline), the shard must be rewritten so the next
    // append starts on a fresh line instead of concatenating onto the
    // remnant.
    let ends_clean = {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let io = |source| StoreError::Io {
            path: path.to_path_buf(),
            source,
        };
        let len = file.metadata().map_err(io)?.len();
        if len == 0 {
            true
        } else {
            file.seek(SeekFrom::End(-1)).map_err(io)?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last).map_err(io)?;
            file.seek(SeekFrom::Start(0)).map_err(io)?;
            last[0] == b'\n'
        }
    };
    let mut scan = ShardScan {
        good_lines: Vec::new(),
        records: Vec::new(),
        dropped: 0,
        ends_clean,
    };
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|source| StoreError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        if line.trim().is_empty() {
            continue;
        }
        match decode_record(&line) {
            Some((digest, seed, outcome)) => {
                scan.records.push((digest, seed, outcome));
                scan.good_lines.push(line);
            }
            None => scan.dropped += 1,
        }
    }
    Ok(Some(scan))
}

/// Rewrites the shard at `path` with only `good_lines`, via a temporary
/// file and rename, so later appends always start on a clean line.
fn rewrite_shard(
    dir: &Path,
    shard: usize,
    path: &Path,
    good_lines: &[String],
) -> Result<(), StoreError> {
    let mut repaired = good_lines.join("\n");
    if !repaired.is_empty() {
        repaired.push('\n');
    }
    let tmp = dir.join(format!(".shard-{shard:02}.jsonl.tmp"));
    fs::write(&tmp, repaired)
        .and_then(|()| fs::rename(&tmp, path))
        .map_err(|source| StoreError::Io {
            path: path.to_path_buf(),
            source,
        })
}

/// A persistent map from `(spec digest, seed)` to the trial's
/// [`SyncOutcome`], backed by sharded JSONL files.
///
/// # Memory model
///
/// The store keeps an in-memory index of **all** records (loaded at open
/// plus appended since), so lookups and idempotence checks never touch
/// disk: memory is `O(stored records)`, while the sweep layer's
/// *aggregation* memory stays `O(reorder window)`. For the sweep sizes
/// the experiments run this is megabytes; a spill-to-offset index (keys
/// in memory, outcomes re-read from their shard on demand) is the
/// designed escape hatch if stores ever outgrow RAM, and can be added
/// behind this same API.
pub struct ResultStore {
    dir: PathBuf,
    // Ordered map: the index is lookup-only today, but anything that ever
    // iterates it (a stats endpoint, an export) must see a deterministic
    // order — keys are trial identities feeding resumable aggregates.
    index: RwLock<BTreeMap<(u64, u64), SyncOutcome>>,
    shards: Vec<Mutex<Option<File>>>,
    dropped: u64,
    loaded: usize,
    repairs: Vec<ShardRepair>,
}

impl fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResultStore")
            .field("dir", &self.dir)
            .field("records", &self.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl ResultStore {
    /// Opens (creating if necessary) the store rooted at `dir`, loading
    /// every decodable record from its shards. Undecodable lines — a torn
    /// final line from a killed writer, or any other corruption — are
    /// dropped and counted, never fatal: the trials they held are simply
    /// recomputed by the next resumed run. A shard containing dropped
    /// lines is repaired in place (rewritten with only the good records,
    /// via a temporary file and rename), so later appends always start on
    /// a clean line and a subsequent open reports zero drops.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        ResultStore::open_inner(dir.as_ref(), true)
    }

    /// Opens the store without repairing any shard file: every decodable
    /// record is loaded (and undecodable lines dropped from the in-memory
    /// index and counted, exactly as in [`open`](Self::open)), but the
    /// files on disk are left byte-for-byte untouched.
    ///
    /// This is the mode for **shared** directories — a fabric worker among
    /// other live worker processes must not rewrite a shard another
    /// process holds an append handle to (the rewrite replaces the inode,
    /// so the other writer's subsequent appends would land in an orphaned
    /// file and be lost). A worker that has claimed a shard's lease, and
    /// is therefore that shard's only writer, repairs it explicitly with
    /// [`repair_shard`](Self::repair_shard) before appending.
    pub fn open_shared(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        ResultStore::open_inner(dir.as_ref(), false)
    }

    fn open_inner(dir: &Path, repair: bool) -> Result<Self, StoreError> {
        let dir = dir.to_path_buf();
        fs::create_dir_all(&dir).map_err(|source| StoreError::Io {
            path: dir.clone(),
            source,
        })?;
        let mut index = BTreeMap::new();
        let mut dropped = 0u64;
        let mut repairs = Vec::new();
        for shard in 0..SHARD_COUNT {
            let path = shard_path(&dir, shard);
            let Some(scan) = scan_shard(&path)? else {
                continue;
            };
            for (digest, seed, outcome) in scan.records.iter().cloned() {
                index.insert((digest, seed), outcome);
            }
            if scan.needs_rewrite() {
                if repair {
                    rewrite_shard(&dir, shard, &path, &scan.good_lines)?;
                }
                repairs.push(ShardRepair {
                    shard,
                    path,
                    dropped_lines: scan.dropped,
                    torn_tail: !scan.ends_clean,
                    rewritten: repair,
                });
            }
            dropped += scan.dropped;
        }
        let loaded = index.len();
        Ok(ResultStore {
            dir,
            index: RwLock::new(index),
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(None)).collect(),
            dropped,
            loaded,
            repairs,
        })
    }

    /// The directory this store persists to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Read access to the index. A poisoned lock means another thread
    /// panicked mid-insert; the index may then be missing a record whose
    /// line was already appended, so no recovery keeps memory and disk
    /// coherent.
    fn index_read(&self) -> RwLockReadGuard<'_, BTreeMap<(u64, u64), SyncOutcome>> {
        // lint:allow(panicky-library): poisoned index = a writer panicked mid-insert; propagating the panic is the only sound option
        self.index.read().expect("store index poisoned")
    }

    /// Write access to the index; same poisoning policy as
    /// [`index_read`](Self::index_read).
    fn index_write(&self) -> RwLockWriteGuard<'_, BTreeMap<(u64, u64), SyncOutcome>> {
        // lint:allow(panicky-library): poisoned index = a writer panicked mid-insert; propagating the panic is the only sound option
        self.index.write().expect("store index poisoned")
    }

    /// Number of records currently held (loaded plus appended).
    pub fn len(&self) -> usize {
        self.index_read().len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records loaded from disk when the store was opened.
    pub fn loaded_records(&self) -> usize {
        self.loaded
    }

    /// Number of undecodable lines dropped while opening (torn final lines
    /// from a killed writer, or corrupted records).
    pub fn dropped_records(&self) -> u64 {
        self.dropped
    }

    /// Per-shard open-time repair statistics: one entry for every shard
    /// that held torn/corrupt lines or a missing trailing newline, naming
    /// the shard file, how many lines were dropped, and whether the file
    /// was rewritten ([`open`](Self::open)) or left untouched
    /// ([`open_shared`](Self::open_shared)). Empty for a healthy store.
    pub fn repair_stats(&self) -> &[ShardRepair] {
        &self.repairs
    }

    /// Re-reads one shard file from disk and merges any record the
    /// in-memory index does not hold yet (first record wins, matching
    /// `put`'s idempotence). Returns `(records merged, undecodable lines
    /// seen)`. Never rewrites the file — this is the read side of the
    /// fabric protocol, used to observe progress other processes append to
    /// a shared store.
    pub fn refresh_shard(&self, shard: usize) -> Result<(usize, u64), StoreError> {
        assert!(shard < SHARD_COUNT, "shard index out of range");
        let path = shard_path(&self.dir, shard);
        let Some(scan) = scan_shard(&path)? else {
            return Ok((0, 0));
        };
        let mut merged = 0usize;
        let mut index = self.index_write();
        for (digest, seed, outcome) in scan.records {
            if let std::collections::btree_map::Entry::Vacant(slot) = index.entry((digest, seed)) {
                slot.insert(outcome);
                merged += 1;
            }
        }
        Ok((merged, scan.dropped))
    }

    /// Scans and, if needed, rewrites one shard file in place, dropping
    /// torn/corrupt lines and restoring the trailing newline, then merges
    /// the surviving records into the in-memory index.
    ///
    /// **Single-writer precondition:** the caller must be the shard's only
    /// live writer (in the fabric protocol, the holder of its lease) — the
    /// rewrite replaces the inode, so any other process's open append
    /// handle would keep writing into an orphaned file. This store's own
    /// cached append handle is invalidated here under the shard lock, so
    /// a later `put` through *this* instance reopens the repaired file.
    pub fn repair_shard(&self, shard: usize) -> Result<ShardRepair, StoreError> {
        assert!(shard < SHARD_COUNT, "shard index out of range");
        let path = shard_path(&self.dir, shard);
        // Hold the shard lock across scan + rewrite + handle invalidation
        // so a concurrent `put` from another thread of this process cannot
        // append between the scan and the rename (its line would be lost
        // with the old inode). Safe against the index lock: `put` never
        // holds both locks at once.
        // lint:allow(panicky-library): poisoned shard writer = a panic mid-append left the file position unknowable; stop instead of corrupting
        let mut guard = self.shards[shard].lock().expect("shard writer poisoned");
        let scan = match scan_shard(&path)? {
            Some(scan) => scan,
            None => {
                return Ok(ShardRepair {
                    shard,
                    path,
                    dropped_lines: 0,
                    torn_tail: false,
                    rewritten: false,
                })
            }
        };
        let repair = ShardRepair {
            shard,
            path: path.clone(),
            dropped_lines: scan.dropped,
            torn_tail: !scan.ends_clean,
            rewritten: scan.needs_rewrite(),
        };
        if scan.needs_rewrite() {
            rewrite_shard(&self.dir, shard, &path, &scan.good_lines)?;
            // The rename replaced the inode; drop the cached append handle
            // so the next put reopens the repaired file.
            *guard = None;
        }
        drop(guard);
        let mut index = self.index_write();
        for (digest, seed, outcome) in scan.records {
            index.entry((digest, seed)).or_insert(outcome);
        }
        Ok(repair)
    }

    /// Looks up the stored outcome of trial `(digest, seed)`.
    pub fn get(&self, digest: u64, seed: u64) -> Option<SyncOutcome> {
        self.index_read().get(&(digest, seed)).cloned()
    }

    /// Whether trial `(digest, seed)` is already stored.
    pub fn contains(&self, digest: u64, seed: u64) -> bool {
        self.index_read().contains_key(&(digest, seed))
    }

    /// Records a completed trial, appending one JSONL line to the
    /// responsible shard. Idempotent: putting an already-stored key is a
    /// no-op (the first record wins), so concurrent workers and re-runs
    /// never duplicate lines.
    pub fn put(&self, digest: u64, seed: u64, outcome: &SyncOutcome) -> Result<(), StoreError> {
        {
            let mut index = self.index_write();
            if index.contains_key(&(digest, seed)) {
                return Ok(());
            }
            index.insert((digest, seed), outcome.clone());
        }
        // One buffer, one write_all: the record and its newline must never
        // be separate writes, or a kill between them would leave a
        // *decodable* line with no trailing newline — the repair-on-open
        // pass would not trigger and the next append would concatenate
        // onto it, corrupting two good records.
        let mut line = encode_record(digest, seed, outcome);
        line.push('\n');
        let shard = shard_index(digest, seed);
        let path = shard_path(&self.dir, shard);
        // A poisoned shard lock means a thread panicked between buffering
        // and flushing a line; the file position is unknowable, so appends
        // must stop. Recovering via into_inner would risk interleaving
        // half-written records.
        // lint:allow(panicky-library): poisoned shard writer = a panic mid-append left the file position unknowable; stop instead of corrupting
        let mut guard = self.shards[shard].lock().expect("shard writer poisoned");
        if guard.is_none() {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|source| StoreError::Append {
                    path: path.clone(),
                    digest,
                    seed,
                    source,
                })?;
            *guard = Some(file);
        }
        // lint:allow(panicky-library): the None branch directly above just filled the slot, so as_mut cannot fail
        let file = guard.as_mut().expect("writer opened above");
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|source| StoreError::Append {
                path,
                digest,
                seed,
                source,
            })
    }
}

fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:02}.jsonl"))
}

/// The shard index responsible for trial `(digest, seed)`.
///
/// Public because the fabric partitions a sweep's trials by shard: a
/// worker holding shard `i`'s lease executes exactly the trials for which
/// `shard_index(digest, seed) == i`, making it the shard's only writer.
pub fn shard_index(digest: u64, seed: u64) -> usize {
    // Mix the seed so one grid point's trials spread over all shards.
    ((digest ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % SHARD_COUNT as u64) as usize
}

// --- record codec -------------------------------------------------------
//
// The vendored serde is a no-op facade, so outcomes are encoded by hand
// through `json::Value`. Every field of `SyncOutcome` is an integer,
// boolean, or string — no floats — so decode(encode(x)) == x exactly,
// which is what makes resumed aggregates bit-identical.

fn encode_record(digest: u64, seed: u64, outcome: &SyncOutcome) -> String {
    Value::Object(vec![
        ("spec".to_string(), Value::Str(format!("{digest:016x}"))),
        ("seed".to_string(), u64_value(seed)),
        ("outcome".to_string(), outcome_to_value(outcome)),
    ])
    .to_json_compact()
}

/// Decodes one shard line into `(digest, seed, outcome)`; `None` means the
/// line is torn or corrupt and must be dropped.
fn decode_record(line: &str) -> Option<(u64, u64, SyncOutcome)> {
    let value = json::parse(line).ok()?;
    let digest = u64::from_str_radix(value.get("spec")?.as_str()?, 16).ok()?;
    let seed = value_as_u64(value.get("seed")?)?;
    let outcome = outcome_from_value(value.get("outcome")?)?;
    // A record whose embedded outcome disagrees with its key is corrupt.
    if outcome.seed != seed {
        return None;
    }
    Some((digest, seed, outcome))
}

/// Encodes a `u64` losslessly: as a JSON integer when it fits in `i64`,
/// otherwise as a decimal string. `Value::from(u64)` falls back to `f64`
/// above `i64::MAX`, which would silently round large seeds and break the
/// `decode(encode(x)) == x` contract — a record with such a seed would be
/// dropped as corrupt on every reopen and recomputed forever.
fn u64_value(n: u64) -> Value {
    match i64::try_from(n) {
        Ok(i) => Value::Int(i),
        Err(_) => Value::Str(n.to_string()),
    }
}

/// Decodes either `u64` encoding produced by [`u64_value`].
fn value_as_u64(value: &Value) -> Option<u64> {
    match value {
        Value::Str(s) => s.parse().ok(),
        other => other.as_u64(),
    }
}

fn opt_u64_value(v: Option<u64>) -> Value {
    match v {
        Some(n) => u64_value(n),
        None => Value::Null,
    }
}

/// Encodes a full [`SyncOutcome`] as a JSON value.
pub fn outcome_to_value(outcome: &SyncOutcome) -> Value {
    let nodes = outcome
        .result
        .nodes
        .iter()
        .map(|n| {
            Value::Object(vec![
                ("id".to_string(), u64_value(n.id.index() as u64)),
                ("activated".to_string(), u64_value(n.activation_round)),
                ("sync".to_string(), opt_u64_value(n.sync_round)),
                ("out".to_string(), opt_u64_value(n.final_output)),
            ])
        })
        .collect();
    let m = &outcome.result.metrics;
    let metrics = Value::Object(vec![
        ("rounds".to_string(), u64_value(m.rounds)),
        ("broadcasts".to_string(), u64_value(m.broadcasts)),
        ("listens".to_string(), u64_value(m.listens)),
        ("sleeps".to_string(), u64_value(m.sleeps)),
        ("deliveries".to_string(), u64_value(m.deliveries)),
        ("receptions".to_string(), u64_value(m.receptions)),
        ("collisions".to_string(), u64_value(m.collisions)),
        (
            "jammed_solo".to_string(),
            u64_value(m.jammed_solo_broadcasts),
        ),
        (
            "disrupted_freq_rounds".to_string(),
            u64_value(m.disrupted_frequency_rounds),
        ),
        ("max_active".to_string(), m.max_active_nodes.into()),
        (
            "budget_violations".to_string(),
            u64_value(m.adversary_budget_violations),
        ),
    ]);
    let result = Value::Object(vec![
        (
            "rounds".to_string(),
            u64_value(outcome.result.rounds_executed),
        ),
        ("synced".to_string(), outcome.result.all_synchronized.into()),
        ("nodes".to_string(), Value::Array(nodes)),
        ("metrics".to_string(), metrics),
    ]);
    let violations = outcome
        .properties
        .violations
        .iter()
        .map(violation_to_value)
        .collect();
    let properties = Value::Object(vec![
        ("violations".to_string(), Value::Array(violations)),
        (
            "total".to_string(),
            u64_value(outcome.properties.total_violations),
        ),
        (
            "rounds".to_string(),
            u64_value(outcome.properties.rounds_observed),
        ),
        ("liveness".to_string(), outcome.properties.liveness.into()),
        (
            "completion".to_string(),
            opt_u64_value(outcome.properties.completion_round),
        ),
    ]);
    Value::Object(vec![
        ("result".to_string(), result),
        ("properties".to_string(), properties),
        ("leaders".to_string(), u64_value(outcome.leaders as u64)),
        (
            "adversary".to_string(),
            Value::Str(outcome.adversary.clone()),
        ),
        ("seed".to_string(), u64_value(outcome.seed)),
    ])
}

fn violation_to_value(violation: &Violation) -> Value {
    match violation {
        Violation::SynchCommit {
            node,
            round,
            previous,
        } => Value::Object(vec![
            ("kind".to_string(), Value::Str("synch-commit".to_string())),
            ("node".to_string(), u64_value(node.index() as u64)),
            ("round".to_string(), u64_value(*round)),
            ("previous".to_string(), u64_value(*previous)),
        ]),
        Violation::Correctness {
            node,
            round,
            previous,
            current,
        } => Value::Object(vec![
            ("kind".to_string(), Value::Str("correctness".to_string())),
            ("node".to_string(), u64_value(node.index() as u64)),
            ("round".to_string(), u64_value(*round)),
            ("previous".to_string(), u64_value(*previous)),
            ("current".to_string(), u64_value(*current)),
        ]),
        Violation::Agreement {
            round,
            first,
            second,
        } => Value::Object(vec![
            ("kind".to_string(), Value::Str("agreement".to_string())),
            ("round".to_string(), u64_value(*round)),
            (
                "first".to_string(),
                Value::Array(vec![u64_value(first.0.index() as u64), u64_value(first.1)]),
            ),
            (
                "second".to_string(),
                Value::Array(vec![
                    u64_value(second.0.index() as u64),
                    u64_value(second.1),
                ]),
            ),
        ]),
    }
}

fn get_u64(value: &Value, key: &str) -> Option<u64> {
    value_as_u64(value.get(key)?)
}

fn get_opt_u64(value: &Value, key: &str) -> Option<Option<u64>> {
    match value.get(key)? {
        Value::Null => Some(None),
        other => value_as_u64(other).map(Some),
    }
}

fn node_id(raw: u64) -> Option<NodeId> {
    u32::try_from(raw).ok().map(NodeId::new)
}

/// Decodes a [`SyncOutcome`] from its JSON encoding; `None` on any shape
/// mismatch (the caller treats the record as corrupt and drops it).
pub fn outcome_from_value(value: &Value) -> Option<SyncOutcome> {
    let result = value.get("result")?;
    let nodes = result
        .get("nodes")?
        .as_array()?
        .iter()
        .map(|n| {
            Some(NodeSummary {
                id: node_id(get_u64(n, "id")?)?,
                activation_round: get_u64(n, "activated")?,
                sync_round: get_opt_u64(n, "sync")?,
                final_output: get_opt_u64(n, "out")?,
            })
        })
        .collect::<Option<Vec<NodeSummary>>>()?;
    let m = result.get("metrics")?;
    let metrics = SimMetrics {
        rounds: get_u64(m, "rounds")?,
        broadcasts: get_u64(m, "broadcasts")?,
        listens: get_u64(m, "listens")?,
        sleeps: get_u64(m, "sleeps")?,
        deliveries: get_u64(m, "deliveries")?,
        receptions: get_u64(m, "receptions")?,
        collisions: get_u64(m, "collisions")?,
        jammed_solo_broadcasts: get_u64(m, "jammed_solo")?,
        disrupted_frequency_rounds: get_u64(m, "disrupted_freq_rounds")?,
        max_active_nodes: u32::try_from(get_u64(m, "max_active")?).ok()?,
        adversary_budget_violations: get_u64(m, "budget_violations")?,
    };
    let properties = value.get("properties")?;
    let violations = properties
        .get("violations")?
        .as_array()?
        .iter()
        .map(violation_from_value)
        .collect::<Option<Vec<Violation>>>()?;
    Some(SyncOutcome {
        result: ExecutionResult {
            rounds_executed: get_u64(result, "rounds")?,
            all_synchronized: result.get("synced")?.as_bool()?,
            nodes,
            metrics,
        },
        properties: PropertyReport {
            violations,
            total_violations: get_u64(properties, "total")?,
            rounds_observed: get_u64(properties, "rounds")?,
            liveness: properties.get("liveness")?.as_bool()?,
            completion_round: get_opt_u64(properties, "completion")?,
        },
        leaders: usize::try_from(get_u64(value, "leaders")?).ok()?,
        adversary: value.get("adversary")?.as_str()?.to_string(),
        seed: get_u64(value, "seed")?,
    })
}

fn violation_from_value(value: &Value) -> Option<Violation> {
    let pair = |key: &str| -> Option<(NodeId, u64)> {
        let items = value.get(key)?.as_array()?;
        match items {
            [a, b] => Some((node_id(value_as_u64(a)?)?, value_as_u64(b)?)),
            _ => None,
        }
    };
    match value.get("kind")?.as_str()? {
        "synch-commit" => Some(Violation::SynchCommit {
            node: node_id(get_u64(value, "node")?)?,
            round: get_u64(value, "round")?,
            previous: get_u64(value, "previous")?,
        }),
        "correctness" => Some(Violation::Correctness {
            node: node_id(get_u64(value, "node")?)?,
            round: get_u64(value, "round")?,
            previous: get_u64(value, "previous")?,
            current: get_u64(value, "current")?,
        }),
        "agreement" => Some(Violation::Agreement {
            round: get_u64(value, "round")?,
            first: pair("first")?,
            second: pair("second")?,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wsync-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_outcomes(n: usize) -> Vec<SyncOutcome> {
        let spec = ScenarioSpec::new("trapdoor", 6, 8, 2).with_adversary("random");
        let sim = Sim::from_spec(&spec).unwrap();
        (0..n as u64).map(|seed| sim.run_one(seed)).collect()
    }

    #[test]
    fn outcome_codec_round_trips_exactly() {
        for outcome in sample_outcomes(3) {
            let value = outcome_to_value(&outcome);
            // through text as well, exactly as the store writes it
            let text = value.to_json_compact();
            let back = outcome_from_value(&json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, outcome);
        }
        // a dirty outcome with violations round-trips too
        let dirty = Sim::from_spec(
            &ScenarioSpec::new("single-frequency", 4, 4, 1)
                .with_adversary("fixed-band")
                .with_activation(wsync_radio::activation::ActivationSchedule::LateJoiner {
                    late: 3,
                })
                .with_max_rounds(2_000),
        )
        .unwrap()
        .run_one(5);
        assert!(dirty.properties.total_violations > 0);
        let back = outcome_from_value(&outcome_to_value(&dirty)).unwrap();
        assert_eq!(back, dirty);
    }

    #[test]
    fn seeds_beyond_i64_survive_the_store_round_trip() {
        // `Value::from(u64)` falls back to f64 above i64::MAX; the record
        // codec must not take that path or huge seeds would be dropped as
        // corrupt on every reopen and recomputed forever.
        let dir = temp_dir("big-seed");
        let huge = u64::MAX - 7;
        let spec = ScenarioSpec::new("trapdoor", 6, 8, 2).with_adversary("random");
        let outcome = Sim::from_spec(&spec).unwrap().run_one(huge);
        assert_eq!(outcome.seed, huge);
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put(3, huge, &outcome).unwrap();
        }
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.dropped_records(), 0);
        assert_eq!(store.get(3, huge), Some(outcome));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn digest_is_canonical_over_param_order() {
        let a = ScenarioSpec::new("trapdoor", 8, 8, 2)
            .with_protocol_param("epoch_constant", 2.0)
            .with_protocol_param("final_epoch_constant", 6.0);
        let b = ScenarioSpec::new("trapdoor", 8, 8, 2)
            .with_protocol_param("final_epoch_constant", 6.0)
            .with_protocol_param("epoch_constant", 2.0);
        assert_eq!(spec_digest(&a), spec_digest(&b));
        let c = ScenarioSpec::new("trapdoor", 8, 8, 3);
        assert_ne!(spec_digest(&a), spec_digest(&c));
    }

    #[test]
    fn put_get_persist_and_reload() {
        let dir = temp_dir("roundtrip");
        let outcomes = sample_outcomes(4);
        let digest = 0xabcdu64;
        {
            let store = ResultStore::open(&dir).unwrap();
            assert!(store.is_empty());
            for outcome in &outcomes {
                store.put(digest, outcome.seed, outcome).unwrap();
            }
            // idempotent second put
            store.put(digest, outcomes[0].seed, &outcomes[0]).unwrap();
            assert_eq!(store.len(), 4);
        }
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 4);
        assert_eq!(store.loaded_records(), 4);
        assert_eq!(store.dropped_records(), 0);
        for outcome in &outcomes {
            assert_eq!(store.get(digest, outcome.seed), Some(outcome.clone()));
            assert!(store.contains(digest, outcome.seed));
        }
        assert_eq!(store.get(digest, 99), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_trailing_newline_is_repaired_even_when_the_line_decodes() {
        // A kill can cut an append exactly before the trailing '\n',
        // leaving a fully decodable line with no newline. The record must
        // survive, and the shard must be rewritten newline-terminated so a
        // later append cannot concatenate onto it.
        let dir = temp_dir("no-newline");
        let outcomes = sample_outcomes(3);
        {
            let store = ResultStore::open(&dir).unwrap();
            for outcome in &outcomes {
                store.put(5, outcome.seed, outcome).unwrap();
            }
        }
        let mut clipped = None;
        for shard in 0..SHARD_COUNT {
            let path = shard_path(&dir, shard);
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            if text.ends_with('\n') && !text.trim().is_empty() {
                fs::write(&path, text.trim_end_matches('\n')).unwrap();
                clipped = Some(path);
                break;
            }
        }
        let clipped = clipped.expect("some shard has records");
        {
            let store = ResultStore::open(&dir).unwrap();
            assert_eq!(store.loaded_records(), 3, "no record may be lost");
            assert_eq!(store.dropped_records(), 0);
        }
        let repaired = fs::read_to_string(&clipped).unwrap();
        assert!(
            repaired.ends_with('\n'),
            "open must restore the shard's trailing newline"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_is_dropped_and_only_that_trial_is_missing() {
        let dir = temp_dir("torn");
        let outcomes = sample_outcomes(3);
        let digest = 7u64;
        {
            let store = ResultStore::open(&dir).unwrap();
            for outcome in &outcomes {
                store.put(digest, outcome.seed, outcome).unwrap();
            }
        }
        // Tear the final line of one shard in half, as a kill mid-append
        // would. Find a shard holding a record.
        let mut torn_seed = None;
        for shard in 0..SHARD_COUNT {
            let path = shard_path(&dir, shard);
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                continue;
            }
            let last = lines[lines.len() - 1];
            let seed = json::parse(last).unwrap().get("seed").unwrap().as_u64();
            let mut kept: String = lines[..lines.len() - 1].join("\n");
            if !kept.is_empty() {
                kept.push('\n');
            }
            kept.push_str(&last[..last.len() / 2]);
            fs::write(&path, kept).unwrap();
            torn_seed = seed;
            break;
        }
        let torn_seed = torn_seed.expect("at least one shard has a record");
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.dropped_records(), 1);
        assert_eq!(store.len(), 2);
        assert!(!store.contains(digest, torn_seed));
        for outcome in &outcomes {
            if outcome.seed != torn_seed {
                assert!(store.contains(digest, outcome.seed));
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Tears the final line of the first non-empty shard in half (as a
    /// kill mid-append would) and returns its shard index.
    fn tear_one_shard(dir: &Path) -> usize {
        for shard in 0..SHARD_COUNT {
            let path = shard_path(dir, shard);
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                continue;
            }
            let last = lines[lines.len() - 1];
            let mut kept: String = lines[..lines.len() - 1].join("\n");
            if !kept.is_empty() {
                kept.push('\n');
            }
            kept.push_str(&last[..last.len() / 2]);
            fs::write(&path, kept).unwrap();
            return shard;
        }
        panic!("no shard has records");
    }

    #[test]
    fn repair_stats_name_the_damaged_shard() {
        let dir = temp_dir("repair-stats");
        let outcomes = sample_outcomes(4);
        {
            let store = ResultStore::open(&dir).unwrap();
            for outcome in &outcomes {
                store.put(11, outcome.seed, outcome).unwrap();
            }
        }
        let torn = tear_one_shard(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let stats = store.repair_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].shard, torn);
        assert_eq!(stats[0].path, shard_path(&dir, torn));
        assert_eq!(stats[0].dropped_lines, 1);
        assert!(stats[0].torn_tail);
        assert!(stats[0].rewritten);
        // The eager repair leaves nothing for the next open to report.
        let clean = ResultStore::open(&dir).unwrap();
        assert!(clean.repair_stats().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_shared_loads_records_but_never_rewrites() {
        let dir = temp_dir("shared-open");
        let outcomes = sample_outcomes(4);
        {
            let store = ResultStore::open(&dir).unwrap();
            for outcome in &outcomes {
                store.put(13, outcome.seed, outcome).unwrap();
            }
        }
        let torn = tear_one_shard(&dir);
        let damaged = fs::read_to_string(shard_path(&dir, torn)).unwrap();
        let store = ResultStore::open_shared(&dir).unwrap();
        assert_eq!(store.len(), 3, "good records still load");
        assert_eq!(store.dropped_records(), 1);
        let stats = store.repair_stats();
        assert_eq!(stats.len(), 1);
        assert!(!stats[0].rewritten);
        assert_eq!(
            fs::read_to_string(shard_path(&dir, torn)).unwrap(),
            damaged,
            "open_shared must leave the shard file byte-for-byte untouched"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn repair_shard_fixes_exactly_one_shard_and_later_puts_land_cleanly() {
        let dir = temp_dir("repair-one");
        let outcomes = sample_outcomes(6);
        let digest = 17u64;
        {
            let store = ResultStore::open(&dir).unwrap();
            for outcome in &outcomes {
                store.put(digest, outcome.seed, outcome).unwrap();
            }
        }
        let torn = tear_one_shard(&dir);
        let store = ResultStore::open_shared(&dir).unwrap();
        let before = store.len();
        let repair = store.repair_shard(torn).unwrap();
        assert_eq!(repair.shard, torn);
        assert_eq!(repair.dropped_lines, 1);
        assert!(repair.torn_tail);
        assert!(repair.rewritten);
        let repaired = fs::read_to_string(shard_path(&dir, torn)).unwrap();
        assert!(repaired.is_empty() || repaired.ends_with('\n'));
        // The torn trial is gone from disk; re-putting it must reopen the
        // repaired inode (the cached handle was invalidated) and append a
        // clean line that the next open decodes.
        let missing: Vec<&SyncOutcome> = outcomes
            .iter()
            .filter(|o| !store.contains(digest, o.seed))
            .collect();
        assert_eq!(missing.len(), outcomes.len() - before);
        for outcome in missing {
            store.put(digest, outcome.seed, outcome).unwrap();
        }
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.dropped_records(), 0);
        assert_eq!(reopened.len(), outcomes.len());
        // Repairing a healthy or absent shard is a no-op that reports so.
        let noop = store.repair_shard(torn).unwrap();
        assert_eq!(noop.dropped_lines, 0);
        assert!(!noop.torn_tail);
        assert!(!noop.rewritten);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn refresh_shard_merges_records_appended_by_another_instance() {
        let dir = temp_dir("refresh");
        let outcomes = sample_outcomes(5);
        let digest = 19u64;
        let reader = ResultStore::open(&dir).unwrap();
        let writer = ResultStore::open_shared(&dir).unwrap();
        for outcome in &outcomes {
            writer.put(digest, outcome.seed, outcome).unwrap();
        }
        assert!(reader.is_empty(), "reader has not refreshed yet");
        let mut merged_total = 0;
        for shard in 0..SHARD_COUNT {
            let (merged, dropped) = reader.refresh_shard(shard).unwrap();
            merged_total += merged;
            assert_eq!(dropped, 0);
        }
        assert_eq!(merged_total, outcomes.len());
        for outcome in &outcomes {
            assert_eq!(reader.get(digest, outcome.seed), Some(outcome.clone()));
        }
        // A second refresh merges nothing new.
        for shard in 0..SHARD_COUNT {
            assert_eq!(reader.refresh_shard(shard).unwrap().0, 0);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_failure_names_the_shard_path_and_trial_key() {
        let dir = temp_dir("append-error");
        let store = ResultStore::open(&dir).unwrap();
        let outcome = sample_outcomes(1).remove(0);
        let digest = 0x0123_4567_89ab_cdefu64;
        let seed = outcome.seed;
        // Replace the responsible shard file with a directory so the
        // append's open fails.
        let shard = shard_index(digest, seed);
        let path = shard_path(&dir, shard);
        fs::create_dir_all(&path).unwrap();
        let err = store.put(digest, seed, &outcome).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains(&path.display().to_string()),
            "error must name the shard path, got: {message}"
        );
        assert!(
            message.contains(&format!("{digest:016x}")),
            "error must name the spec digest, got: {message}"
        );
        assert!(
            message.contains(&format!("seed {seed}")),
            "error must name the seed, got: {message}"
        );
        assert!(std::error::Error::source(&err).is_some());
        let _ = fs::remove_dir_all(&dir);
    }
}
