//! The open protocol/adversary registry.
//!
//! [`Registry`] maps string keys to [`ProtocolFactory`] and
//! [`AdversaryFactory`] implementations. [`Registry::with_defaults`]
//! pre-populates every protocol in this crate (`trapdoor`,
//! `good-samaritan`, `wakeup`, `round-robin`, `single-frequency`) and every
//! adversary in `wsync-radio` (`none`, `fixed-band`, `random`, `sweep`,
//! `bursty`, `adaptive-greedy`, `oblivious-random`, `top-weight`).
//! Downstream crates extend the set at run time with
//! [`register_protocol`] / [`register_adversary`] — no enum to edit, no
//! crate to fork — and their components immediately work everywhere a
//! name does: [`ScenarioSpec`](crate::spec::ScenarioSpec) files,
//! [`Sim::from_spec`](crate::sim::Sim::from_spec), sweeps, and the
//! `run_experiments --spec` CLI.
//!
//! The string keys are **stable public API** (they appear in spec files and
//! experiment tables); `tests/spec_roundtrip.rs` pins them.
//!
//! # Type erasure
//!
//! The engine is statically typed over one protocol type per run. Factories
//! bridge from dynamic names to that world by returning
//! [`BoxedProtocol`]s — type-erased [`SyncProtocol`]s whose message
//! payloads ride in a [`DynMsg`]. The erasure wrapper forwards every call
//! unchanged and draws no randomness of its own, so a registry-built run is
//! bit-for-bit identical to the statically-typed equivalent
//! (`tests/engine_golden.rs` holds the proof).

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

use wsync_radio::action::Action;
use wsync_radio::adversary::{
    AdaptiveGreedyAdversary, Adversary, BurstyAdversary, FixedBandAdversary, NoAdversary,
    ObliviousScheduleAdversary, RandomAdversary, SweepAdversary, TopWeightAdversary,
};
use wsync_radio::engine::ExecutionResult;
use wsync_radio::fault::{CaptureLayer, ChurnLayer, DropLayer, FaultLayer, PartitionLayer};
use wsync_radio::message::{Feedback, Received};
use wsync_radio::metrics::SimMetrics;
use wsync_radio::node::{ActivationInfo, NodeId};
use wsync_radio::probe::Probe;
use wsync_radio::protocol::Protocol;
use wsync_radio::rng::SimRng;
use wsync_radio::trace::RoundObservation;

use crate::baselines::{RoundRobinConfig, RoundRobinProtocol, WakeupConfig, WakeupProtocol};
use crate::checker::PropertyChecker;
use crate::good_samaritan::{GoodSamaritanConfig, GoodSamaritanProtocol};
use crate::json::Value;
use crate::runner::{BoxedAdversary, Scenario, SyncProtocol};
use crate::spec::{ComponentSpec, ParamReader, Params, SpecError};
use crate::trapdoor::{TrapdoorConfig, TrapdoorProtocol};

/// A type-erased message payload.
///
/// Registry-built protocols of arbitrary concrete type share one engine
/// instantiation, so their messages travel as `DynMsg` and are downcast
/// back on receipt. All nodes of a run are built by the same factory and
/// therefore speak the same payload type; a mismatch (a custom factory
/// mixing protocol types with different messages) panics with a clear
/// message rather than corrupting an execution.
#[derive(Clone)]
pub struct DynMsg {
    payload: Arc<dyn Any + Send + Sync>,
    type_name: &'static str,
}

impl DynMsg {
    /// Wraps a concrete message.
    pub fn new<M: Any + Send + Sync>(message: M) -> Self {
        DynMsg {
            payload: Arc::new(message),
            type_name: std::any::type_name::<M>(),
        }
    }

    /// Recovers the concrete message, cloning it out of the shared payload.
    pub fn downcast<M: Any + Clone>(&self) -> Option<M> {
        self.payload.downcast_ref::<M>().cloned()
    }

    /// The `type_name` of the wrapped message (diagnostics only).
    pub fn payload_type(&self) -> &'static str {
        self.type_name
    }
}

impl fmt::Debug for DynMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("DynMsg").field(&self.type_name).finish()
    }
}

/// A boxed, type-erased synchronization protocol — what a
/// [`ProtocolFactory`] produces and the engine runs.
pub struct BoxedProtocol(Box<dyn SyncProtocol<Msg = DynMsg>>);

impl BoxedProtocol {
    /// Erases a concrete protocol.
    pub fn erase<P>(protocol: P) -> Self
    where
        P: SyncProtocol + 'static,
        P::Msg: Any + Send + Sync,
    {
        BoxedProtocol(Box::new(Erased(protocol)))
    }
}

impl Protocol for BoxedProtocol {
    type Msg = DynMsg;

    fn on_activate(&mut self, info: ActivationInfo, rng: &mut SimRng) {
        self.0.on_activate(info, rng);
    }

    fn choose_action(&mut self, local_round: u64, rng: &mut SimRng) -> Action<DynMsg> {
        self.0.choose_action(local_round, rng)
    }

    fn on_feedback(&mut self, local_round: u64, feedback: Feedback<DynMsg>, rng: &mut SimRng) {
        self.0.on_feedback(local_round, feedback, rng);
    }

    fn output(&self) -> Option<u64> {
        self.0.output()
    }

    fn is_synchronized(&self) -> bool {
        self.0.is_synchronized()
    }
}

impl SyncProtocol for BoxedProtocol {
    fn is_leader(&self) -> bool {
        self.0.is_leader()
    }

    fn protocol_name(&self) -> &'static str {
        self.0.protocol_name()
    }
}

/// The erasure adapter: forwards every call to the concrete protocol,
/// wrapping outgoing payloads in [`DynMsg`] and downcasting incoming ones.
struct Erased<P>(P);

impl<P> Protocol for Erased<P>
where
    P: SyncProtocol,
    P::Msg: Any + Send + Sync,
{
    type Msg = DynMsg;

    fn on_activate(&mut self, info: ActivationInfo, rng: &mut SimRng) {
        self.0.on_activate(info, rng);
    }

    fn choose_action(&mut self, local_round: u64, rng: &mut SimRng) -> Action<DynMsg> {
        self.0
            .choose_action(local_round, rng)
            .map_message(DynMsg::new)
    }

    fn on_feedback(&mut self, local_round: u64, feedback: Feedback<DynMsg>, rng: &mut SimRng) {
        let feedback: Feedback<P::Msg> = match feedback {
            Feedback::Received(r) => {
                let payload = r.payload.downcast::<P::Msg>().unwrap_or_else(|| {
                    panic!(
                        "protocol {} expected a {} payload but received {}; a registry \
                         factory must build nodes that all share one message type",
                        self.0.protocol_name(),
                        std::any::type_name::<P::Msg>(),
                        r.payload.payload_type()
                    )
                });
                Feedback::Received(Received {
                    sender: r.sender,
                    frequency: r.frequency,
                    payload,
                })
            }
            Feedback::Silence { frequency } => Feedback::Silence { frequency },
            Feedback::Broadcasted { frequency } => Feedback::Broadcasted { frequency },
            Feedback::Slept => Feedback::Slept,
        };
        self.0.on_feedback(local_round, feedback, rng);
    }

    fn output(&self) -> Option<u64> {
        self.0.output()
    }

    fn is_synchronized(&self) -> bool {
        self.0.is_synchronized()
    }
}

impl<P> SyncProtocol for Erased<P>
where
    P: SyncProtocol,
    P::Msg: Any + Send + Sync,
{
    fn is_leader(&self) -> bool {
        self.0.is_leader()
    }

    fn protocol_name(&self) -> &'static str {
        self.0.protocol_name()
    }
}

/// A per-node protocol constructor, produced once per run by a
/// [`ProtocolFactory`] after parameter validation.
pub type ProtocolCtor = Box<dyn Fn(NodeId) -> BoxedProtocol + Send + Sync>;

/// Builds protocol instances for a scenario from declarative parameters.
///
/// `instantiate` is called once per run: it validates `params` against the
/// scenario (returning a typed [`SpecError`] on any problem) and returns
/// the constructor the engine calls once per node.
pub trait ProtocolFactory: Send + Sync {
    /// Validates `params` and returns the per-node constructor.
    fn instantiate(&self, scenario: &Scenario, params: &Params) -> Result<ProtocolCtor, SpecError>;
}

/// Builds an adversary instance for a scenario from declarative parameters.
pub trait AdversaryFactory: Send + Sync {
    /// Validates `params` and builds the adversary for one `(scenario,
    /// seed)` execution.
    ///
    /// Validation must not depend on `seed`: whether this returns `Ok` may
    /// vary only with `scenario` and `params`. [`Sim`](crate::sim::Sim)
    /// probe-builds once (seed 0) at construction so that its per-trial
    /// `run_one` can stay infallible; a factory that rejected some seeds
    /// but not others would turn that contract into a mid-batch panic.
    fn build(
        &self,
        scenario: &Scenario,
        params: &Params,
        seed: u64,
    ) -> Result<BoxedAdversary, SpecError>;
}

// ---------------------------------------------------------------------------
// Built-in protocol factories
// ---------------------------------------------------------------------------

/// Shared parameter schema of the Trapdoor-family factories: instance
/// overrides plus the `TrapdoorConfig` knobs the ablations sweep.
fn trapdoor_config_from(
    component: &str,
    scenario: &Scenario,
    params: &Params,
    default_frequency_limit: Option<u32>,
) -> Result<TrapdoorConfig, SpecError> {
    let mut reader = ParamReader::new(component, params);
    let n = reader
        .opt_u64("upper_bound_n")?
        .unwrap_or_else(|| scenario.upper_bound());
    let f = reader
        .opt_u32("num_frequencies")?
        .unwrap_or(scenario.num_frequencies);
    let t = reader
        .opt_u32("disruption_bound")?
        .unwrap_or(scenario.disruption_bound);
    let mut config = TrapdoorConfig::new(n, f, t);
    if let Some(c) = reader.opt_f64("epoch_constant")? {
        config = config.with_epoch_constant(c);
    }
    if let Some(c) = reader.opt_f64("final_epoch_constant")? {
        config = config.with_final_epoch_constant(c);
    }
    match reader.opt_u32("frequency_limit")? {
        Some(limit) => config = config.with_frequency_limit(limit),
        None => {
            if let Some(limit) = default_frequency_limit {
                config = config.with_frequency_limit(limit);
            }
        }
    }
    if let Some(p) = reader.opt_f64("leader_broadcast_probability")? {
        config.leader_broadcast_probability = p;
    }
    reader.finish()?;
    Ok(config)
}

struct TrapdoorFactory;

impl ProtocolFactory for TrapdoorFactory {
    fn instantiate(&self, scenario: &Scenario, params: &Params) -> Result<ProtocolCtor, SpecError> {
        let config = trapdoor_config_from("trapdoor", scenario, params, None)?;
        Ok(Box::new(move |_| {
            BoxedProtocol::erase(TrapdoorProtocol::new(config))
        }))
    }
}

struct SingleFrequencyFactory;

impl ProtocolFactory for SingleFrequencyFactory {
    fn instantiate(&self, scenario: &Scenario, params: &Params) -> Result<ProtocolCtor, SpecError> {
        let config = trapdoor_config_from("single-frequency", scenario, params, Some(1))?;
        Ok(Box::new(move |_| {
            BoxedProtocol::erase(TrapdoorProtocol::new(config))
        }))
    }
}

struct RoundRobinFactory;

impl ProtocolFactory for RoundRobinFactory {
    fn instantiate(&self, scenario: &Scenario, params: &Params) -> Result<ProtocolCtor, SpecError> {
        let trapdoor = trapdoor_config_from("round-robin", scenario, params, None)?;
        let config = RoundRobinConfig { trapdoor };
        Ok(Box::new(move |_| {
            BoxedProtocol::erase(RoundRobinProtocol::new(config))
        }))
    }
}

struct GoodSamaritanFactory;

impl ProtocolFactory for GoodSamaritanFactory {
    fn instantiate(&self, scenario: &Scenario, params: &Params) -> Result<ProtocolCtor, SpecError> {
        let mut reader = ParamReader::new("good-samaritan", params);
        let n = reader
            .opt_u64("upper_bound_n")?
            .unwrap_or_else(|| scenario.upper_bound());
        let f = reader
            .opt_u32("num_frequencies")?
            .unwrap_or(scenario.num_frequencies);
        let t = reader
            .opt_u32("disruption_bound")?
            .unwrap_or(scenario.disruption_bound);
        let mut config = GoodSamaritanConfig::new(n, f, t);
        if let Some(c) = reader.opt_f64("epoch_constant")? {
            config = config.with_epoch_constant(c);
        }
        if let Some(shift) = reader.opt_u32("threshold_shift")? {
            config = config.with_threshold_shift(shift);
        }
        if let Some(m) = reader.opt_f64("fallback_multiplier")? {
            config = config.with_fallback_multiplier(m);
        }
        if let Some(p) = reader.opt_f64("leader_broadcast_probability")? {
            config.leader_broadcast_probability = p;
        }
        reader.finish()?;
        Ok(Box::new(move |_| {
            BoxedProtocol::erase(GoodSamaritanProtocol::new(config))
        }))
    }
}

struct WakeupFactory;

impl ProtocolFactory for WakeupFactory {
    fn instantiate(&self, scenario: &Scenario, params: &Params) -> Result<ProtocolCtor, SpecError> {
        let mut reader = ParamReader::new("wakeup", params);
        let n = reader
            .opt_u64("upper_bound_n")?
            .unwrap_or_else(|| scenario.upper_bound());
        let f = reader
            .opt_u32("num_frequencies")?
            .unwrap_or(scenario.num_frequencies);
        let t = reader
            .opt_u32("disruption_bound")?
            .unwrap_or(scenario.disruption_bound);
        let mut config = WakeupConfig::new(n, f, t);
        if let Some(deadline) = reader.opt_u64("deadline_rounds")? {
            config = config.with_deadline(deadline);
        }
        if let Some(p) = reader.opt_f64("leader_broadcast_probability")? {
            config.leader_broadcast_probability = p;
        }
        reader.finish()?;
        Ok(Box::new(move |_| {
            BoxedProtocol::erase(WakeupProtocol::new(config))
        }))
    }
}

// ---------------------------------------------------------------------------
// Built-in adversary factories
// ---------------------------------------------------------------------------

/// Wraps a parameterless adversary constructor as a factory.
struct SimpleAdversaryFactory {
    name: &'static str,
    build: fn(u32) -> Box<dyn Adversary>,
}

impl AdversaryFactory for SimpleAdversaryFactory {
    fn build(
        &self,
        scenario: &Scenario,
        params: &Params,
        _seed: u64,
    ) -> Result<BoxedAdversary, SpecError> {
        ParamReader::new(self.name, params).finish()?;
        Ok(BoxedAdversary::new((self.build)(scenario.disruption_bound)))
    }
}

struct BurstyFactory;

impl AdversaryFactory for BurstyFactory {
    fn build(
        &self,
        scenario: &Scenario,
        params: &Params,
        _seed: u64,
    ) -> Result<BoxedAdversary, SpecError> {
        let mut reader = ParamReader::new("bursty", params);
        let period = reader.req_u64("period")?;
        let burst_len = reader.req_u64("burst_len")?;
        reader.finish()?;
        Ok(BoxedAdversary::new(Box::new(BurstyAdversary::new(
            scenario.disruption_bound,
            period,
            burst_len,
        ))))
    }
}

struct ObliviousRandomFactory;

impl AdversaryFactory for ObliviousRandomFactory {
    fn build(
        &self,
        scenario: &Scenario,
        params: &Params,
        seed: u64,
    ) -> Result<BoxedAdversary, SpecError> {
        let mut reader = ParamReader::new("oblivious-random", params);
        let t_actual = reader.req_u32("t_actual")?;
        reader.finish()?;
        // Pre-sample a schedule long enough to cover the run without
        // repeating too quickly. The seed tweak and length are part of the
        // reproducibility contract (pinned by tests/engine_golden.rs).
        let len = 8192usize;
        Ok(BoxedAdversary::new(Box::new(
            ObliviousScheduleAdversary::random(
                seed ^ 0x0b11_0005,
                len,
                scenario.num_frequencies,
                t_actual.min(scenario.disruption_bound),
            ),
        )))
    }
}

struct TopWeightFactory;

impl AdversaryFactory for TopWeightFactory {
    fn build(
        &self,
        scenario: &Scenario,
        params: &Params,
        _seed: u64,
    ) -> Result<BoxedAdversary, SpecError> {
        let mut reader = ParamReader::new("top-weight", params);
        let weights = reader.opt_f64_list("weights")?;
        reader.finish()?;
        let adversary = match weights {
            Some(weights) => TopWeightAdversary::new(scenario.disruption_bound, weights),
            None => TopWeightAdversary::against_uniform(
                scenario.disruption_bound,
                scenario.num_frequencies,
            ),
        };
        Ok(BoxedAdversary::new(Box::new(adversary)))
    }
}

// ---------------------------------------------------------------------------
// Probe factories
// ---------------------------------------------------------------------------

/// The output of one declarative probe after a run: the registry name it
/// was declared under and its finalized JSON value.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeOutput {
    /// The probe's registry name (as written in the spec's `"probes"`
    /// array).
    pub name: String,
    /// The probe's finalized value.
    pub value: Value,
}

/// A registry-built probe: a radio-engine [`Probe`] that additionally
/// finalizes into a JSON value once the execution completes, so declarative
/// runs can report what it observed.
pub trait SimProbe: Probe {
    /// Consumes the probe and produces its output value.
    fn finish_value(self: Box<Self>, result: &ExecutionResult) -> Value;
}

/// Builds a probe for a scenario from declarative parameters.
///
/// Like the other factories, `build` validates `params` with typed
/// [`SpecError`]s; [`Sim::from_spec`](crate::sim::Sim::from_spec)
/// probe-builds once at construction so parameter typos surface before any
/// trial runs.
pub trait ProbeFactory: Send + Sync {
    /// Validates `params` and builds the probe for one execution.
    fn build(&self, scenario: &Scenario, params: &Params) -> Result<Box<dyn SimProbe>, SpecError>;
}

/// The adapter that carries a registry-built probe through the engine's
/// type-erased stack: a known concrete type wrapping the `Box<dyn
/// SimProbe>`, so the runner can recover it by downcast after the run and
/// call [`finish`](RegistryProbe::finish).
pub struct RegistryProbe {
    name: String,
    inner: Box<dyn SimProbe>,
}

impl RegistryProbe {
    /// Wraps a built probe under its registry name.
    pub fn new(name: impl Into<String>, inner: Box<dyn SimProbe>) -> Self {
        RegistryProbe {
            name: name.into(),
            inner,
        }
    }

    /// The registry name the probe was declared under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Finalizes the probe into its named output.
    pub fn finish(self, result: &ExecutionResult) -> ProbeOutput {
        ProbeOutput {
            name: self.name,
            value: self.inner.finish_value(result),
        }
    }
}

impl Probe for RegistryProbe {
    fn observe(&mut self, observation: &RoundObservation<'_>) {
        self.inner.observe(observation);
    }

    fn lookback(&self) -> usize {
        self.inner.lookback()
    }
}

/// The `"metrics"` probe: an independently folded [`SimMetrics`] (the same
/// aggregates the engine computes, reproduced through the probe pipeline;
/// the equivalence is pinned by `tests/probe_pipeline.rs`).
struct MetricsProbe(SimMetrics);

impl Probe for MetricsProbe {
    fn observe(&mut self, observation: &RoundObservation<'_>) {
        self.0.observe(observation);
    }
}

impl SimProbe for MetricsProbe {
    fn finish_value(self: Box<Self>, _result: &ExecutionResult) -> Value {
        let m = &self.0;
        Value::Object(vec![
            ("rounds".to_string(), m.rounds.into()),
            ("broadcasts".to_string(), m.broadcasts.into()),
            ("listens".to_string(), m.listens.into()),
            ("sleeps".to_string(), m.sleeps.into()),
            ("deliveries".to_string(), m.deliveries.into()),
            ("receptions".to_string(), m.receptions.into()),
            ("collisions".to_string(), m.collisions.into()),
            (
                "jammed_solo_broadcasts".to_string(),
                m.jammed_solo_broadcasts.into(),
            ),
            (
                "disrupted_frequency_rounds".to_string(),
                m.disrupted_frequency_rounds.into(),
            ),
            ("max_active_nodes".to_string(), m.max_active_nodes.into()),
            (
                "adversary_budget_violations".to_string(),
                m.adversary_budget_violations.into(),
            ),
        ])
    }
}

struct MetricsProbeFactory;

impl ProbeFactory for MetricsProbeFactory {
    fn build(&self, _scenario: &Scenario, params: &Params) -> Result<Box<dyn SimProbe>, SpecError> {
        ParamReader::new("metrics", params).finish()?;
        Ok(Box::new(MetricsProbe(SimMetrics::default())))
    }
}

/// The `"checker"` probe: the streaming [`PropertyChecker`], folding
/// violations (and, redundantly, liveness) round-by-round. Finalization
/// goes through [`finish`](PropertyChecker::finish) because an
/// [`ExecutionResult`] is at hand here and that path is the documented
/// authority — it reflects the engine's own `is_synchronized` verdicts,
/// so the probe table can never contradict `SyncOutcome.properties`. The
/// result-free incremental [`report`](PropertyChecker::report) is
/// property-tested to agree on every engine-produced execution.
struct CheckerProbe(PropertyChecker);

impl Probe for CheckerProbe {
    fn observe(&mut self, observation: &RoundObservation<'_>) {
        self.0.observe(observation);
    }
}

impl SimProbe for CheckerProbe {
    fn finish_value(self: Box<Self>, result: &ExecutionResult) -> Value {
        let report = self.0.finish(result);
        Value::Object(vec![
            (
                "total_violations".to_string(),
                report.total_violations.into(),
            ),
            ("rounds_observed".to_string(), report.rounds_observed.into()),
            ("liveness".to_string(), Value::Bool(report.liveness)),
            (
                "safety_holds".to_string(),
                Value::Bool(report.safety_holds()),
            ),
            (
                "completion_round".to_string(),
                match report.completion_round {
                    Some(round) => round.into(),
                    None => Value::Null,
                },
            ),
        ])
    }
}

struct CheckerProbeFactory;

impl ProbeFactory for CheckerProbeFactory {
    fn build(&self, _scenario: &Scenario, params: &Params) -> Result<Box<dyn SimProbe>, SpecError> {
        let mut reader = ParamReader::new("checker", params);
        let max_recorded = reader.opt_u64("max_recorded")?;
        reader.finish()?;
        let mut checker = PropertyChecker::new();
        if let Some(max) = max_recorded {
            checker = checker.with_max_recorded(max as usize);
        }
        Ok(Box::new(CheckerProbe(checker)))
    }
}

/// The `"trace"` probe: an incremental trace summary — rounds observed,
/// delivery total, and per-node first-sync rounds, folded in O(n) state.
/// It deliberately does **not** retain a full trace
/// (`rounds × nodes` memory just to finalize into three summary fields);
/// attach a [`FullTrace`](wsync_radio::trace::FullTrace) probe directly
/// when the raw events themselves are wanted. The optional `max_rounds`
/// parameter bounds how many rounds contribute to the summary, mirroring
/// a truncated trace.
struct TraceProbe {
    max_rounds: Option<u64>,
    rounds: u64,
    deliveries: u64,
    first_sync: Vec<Option<u64>>,
}

impl Probe for TraceProbe {
    fn observe(&mut self, observation: &RoundObservation<'_>) {
        if let Some(max) = self.max_rounds {
            if self.rounds >= max {
                return;
            }
        }
        self.rounds += 1;
        self.deliveries += observation.deliveries.len() as u64;
        if self.first_sync.len() < observation.nodes.len() {
            self.first_sync.resize(observation.nodes.len(), None);
        }
        for (slot, view) in self.first_sync.iter_mut().zip(observation.nodes) {
            if slot.is_none() && matches!(view.output(), Some(Some(_))) {
                *slot = Some(observation.round);
            }
        }
    }
}

impl SimProbe for TraceProbe {
    fn finish_value(self: Box<Self>, _result: &ExecutionResult) -> Value {
        let sync_rounds: Vec<Value> = self
            .first_sync
            .iter()
            .map(|sync| match sync {
                Some(round) => (*round).into(),
                None => Value::Null,
            })
            .collect();
        Value::Object(vec![
            ("rounds_recorded".to_string(), self.rounds.into()),
            ("total_deliveries".to_string(), self.deliveries.into()),
            ("sync_rounds".to_string(), Value::Array(sync_rounds)),
        ])
    }
}

struct TraceProbeFactory;

impl ProbeFactory for TraceProbeFactory {
    fn build(&self, _scenario: &Scenario, params: &Params) -> Result<Box<dyn SimProbe>, SpecError> {
        let mut reader = ParamReader::new("trace", params);
        let max_rounds = reader.opt_u64("max_rounds")?;
        reader.finish()?;
        Ok(Box::new(TraceProbe {
            max_rounds,
            rounds: 0,
            deliveries: 0,
            first_sync: Vec::new(),
        }))
    }
}

// ---------------------------------------------------------------------------
// Fault factories
// ---------------------------------------------------------------------------

/// Builds a network-fault layer for a scenario from declarative parameters.
///
/// Like the other factories, `build` validates `params` with typed
/// [`SpecError`]s; [`Sim::from_spec`](crate::sim::Sim::from_spec)
/// probe-builds once at construction so parameter typos surface before any
/// trial runs. There is no seed parameter: layers draw randomness only from
/// the private per-layer stream the engine derives when the layer is
/// attached ([`Engine::attach_fault`](wsync_radio::engine::Engine)), which
/// is what keeps a layer's draws independent of every other stream.
pub trait FaultFactory: Send + Sync {
    /// Validates `params` and builds the fault layer for one execution.
    fn build(&self, scenario: &Scenario, params: &Params)
        -> Result<Box<dyn FaultLayer>, SpecError>;
}

/// Validates that an already-read `f64` parameter is a probability.
fn require_probability(component: &str, param: &str, value: Option<f64>) -> Result<f64, SpecError> {
    let rate = value.unwrap_or(0.0);
    if !(0.0..=1.0).contains(&rate) {
        return Err(SpecError::BadParam {
            component: component.to_string(),
            param: param.to_string(),
            expected: "a probability in [0, 1]",
            found: format!("{rate}"),
        });
    }
    Ok(rate)
}

/// The `"drop"` fault: whole-delivery loss with probability `drop_rate`
/// (default `0.0`, which changes nothing).
struct DropFaultFactory;

impl FaultFactory for DropFaultFactory {
    fn build(
        &self,
        _scenario: &Scenario,
        params: &Params,
    ) -> Result<Box<dyn FaultLayer>, SpecError> {
        let mut reader = ParamReader::new("drop", params);
        let rate = reader.opt_f64("drop_rate")?;
        reader.finish()?;
        Ok(Box::new(DropLayer::new(require_probability(
            "drop",
            "drop_rate",
            rate,
        )?)))
    }
}

/// The `"capture"` fault: per-receiver fading loss with probability
/// `miss_rate` (default `0.0`, which changes nothing).
struct CaptureFaultFactory;

impl FaultFactory for CaptureFaultFactory {
    fn build(
        &self,
        _scenario: &Scenario,
        params: &Params,
    ) -> Result<Box<dyn FaultLayer>, SpecError> {
        let mut reader = ParamReader::new("capture", params);
        let rate = reader.opt_f64("miss_rate")?;
        reader.finish()?;
        Ok(Box::new(CaptureLayer::new(require_probability(
            "capture",
            "miss_rate",
            rate,
        )?)))
    }
}

/// The `"partition"` fault: `groups` is an array of arrays of node indices
/// (nodes left out share one implicit remainder group; an omitted or empty
/// map changes nothing); optional `heal_at` is the round from which
/// cross-group deliveries flow again.
struct PartitionFaultFactory;

impl PartitionFaultFactory {
    fn parse_groups(scenario: &Scenario, value: &Value) -> Result<Vec<Vec<u32>>, SpecError> {
        let bad = |found: String| SpecError::BadParam {
            component: "partition".to_string(),
            param: "groups".to_string(),
            expected: "an array of arrays of node indices",
            found,
        };
        let outer = value
            .as_array()
            .ok_or_else(|| bad(value.type_name().to_string()))?;
        let mut groups: Vec<Vec<u32>> = Vec::with_capacity(outer.len());
        let mut seen = vec![false; scenario.num_nodes];
        for item in outer {
            let members = item
                .as_array()
                .ok_or_else(|| bad(format!("a group of type {}", item.type_name())))?;
            let mut group = Vec::with_capacity(members.len());
            for member in members {
                let index = member
                    .as_u64()
                    .and_then(|u| u32::try_from(u).ok())
                    .ok_or_else(|| bad(format!("group member {:?}", member)))?;
                if index as usize >= scenario.num_nodes {
                    return Err(bad(format!(
                        "node index {index} (the network has {} nodes)",
                        scenario.num_nodes
                    )));
                }
                if seen[index as usize] {
                    return Err(bad(format!("node {index} listed in more than one group")));
                }
                seen[index as usize] = true;
                group.push(index);
            }
            groups.push(group);
        }
        Ok(groups)
    }
}

impl FaultFactory for PartitionFaultFactory {
    fn build(
        &self,
        scenario: &Scenario,
        params: &Params,
    ) -> Result<Box<dyn FaultLayer>, SpecError> {
        let mut reader = ParamReader::new("partition", params);
        let groups = match reader.opt_value("groups") {
            Some(value) => Self::parse_groups(scenario, value)?,
            None => Vec::new(),
        };
        let heal_at = reader.opt_u64("heal_at")?;
        reader.finish()?;
        Ok(Box::new(PartitionLayer::new(
            scenario.num_nodes,
            &groups,
            heal_at,
        )))
    }
}

/// The `"churn"` fault: per-round crash probability `churn_rate` (default
/// `0.0`, which changes nothing) and per-crash `downtime` in rounds
/// (default 8, must be positive).
struct ChurnFaultFactory;

impl FaultFactory for ChurnFaultFactory {
    fn build(
        &self,
        _scenario: &Scenario,
        params: &Params,
    ) -> Result<Box<dyn FaultLayer>, SpecError> {
        let mut reader = ParamReader::new("churn", params);
        let rate = reader.opt_f64("churn_rate")?;
        let downtime = reader.opt_u64("downtime")?;
        reader.finish()?;
        let rate = require_probability("churn", "churn_rate", rate)?;
        let downtime = downtime.unwrap_or(8);
        if downtime == 0 {
            return Err(SpecError::BadParam {
                component: "churn".to_string(),
                param: "downtime".to_string(),
                expected: "a positive number of rounds",
                found: "0".to_string(),
            });
        }
        Ok(Box::new(ChurnLayer::new(rate, downtime)))
    }
}

/// The `"fault-counters"` probe: sums the per-round fault counters the
/// engine reports in [`RoundTally`](wsync_radio::trace::RoundTally), so a
/// spec-driven run can report how many deliveries its fault layers dropped,
/// suppressed, or severed, and how much churn it injected.
#[derive(Default)]
struct FaultCountersProbe {
    dropped_deliveries: u64,
    suppressed_receptions: u64,
    severed_receptions: u64,
    crashed_node_rounds: u64,
    restarts: u64,
}

impl Probe for FaultCountersProbe {
    fn observe(&mut self, observation: &RoundObservation<'_>) {
        let tally = &observation.tally;
        self.dropped_deliveries += u64::from(tally.dropped_deliveries);
        self.suppressed_receptions += u64::from(tally.suppressed_receptions);
        self.severed_receptions += u64::from(tally.severed_receptions);
        self.crashed_node_rounds += u64::from(tally.crashed_nodes);
        self.restarts += u64::from(tally.restarted_nodes);
    }
}

impl SimProbe for FaultCountersProbe {
    fn finish_value(self: Box<Self>, _result: &ExecutionResult) -> Value {
        Value::Object(vec![
            (
                "dropped_deliveries".to_string(),
                self.dropped_deliveries.into(),
            ),
            (
                "suppressed_receptions".to_string(),
                self.suppressed_receptions.into(),
            ),
            (
                "severed_receptions".to_string(),
                self.severed_receptions.into(),
            ),
            (
                "crashed_node_rounds".to_string(),
                self.crashed_node_rounds.into(),
            ),
            ("restarts".to_string(), self.restarts.into()),
        ])
    }
}

struct FaultCountersProbeFactory;

impl ProbeFactory for FaultCountersProbeFactory {
    fn build(&self, _scenario: &Scenario, params: &Params) -> Result<Box<dyn SimProbe>, SpecError> {
        ParamReader::new("fault-counters", params).finish()?;
        Ok(Box::new(FaultCountersProbe::default()))
    }
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

/// A string-keyed catalogue of protocol, adversary, probe, and fault-layer
/// factories.
#[derive(Clone)]
pub struct Registry {
    protocols: BTreeMap<String, Arc<dyn ProtocolFactory>>,
    adversaries: BTreeMap<String, Arc<dyn AdversaryFactory>>,
    probes: BTreeMap<String, Arc<dyn ProbeFactory>>,
    faults: BTreeMap<String, Arc<dyn FaultFactory>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("protocols", &self.protocol_names())
            .field("adversaries", &self.adversary_names())
            .field("probes", &self.probe_names())
            .field("faults", &self.fault_names())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_defaults()
    }
}

impl Registry {
    /// An empty registry.
    pub fn empty() -> Self {
        Registry {
            protocols: BTreeMap::new(),
            adversaries: BTreeMap::new(),
            probes: BTreeMap::new(),
            faults: BTreeMap::new(),
        }
    }

    /// A registry pre-populated with every protocol and adversary in the
    /// workspace.
    pub fn with_defaults() -> Self {
        let mut registry = Registry::empty();
        registry.register_protocol("trapdoor", Arc::new(TrapdoorFactory));
        registry.register_protocol("good-samaritan", Arc::new(GoodSamaritanFactory));
        registry.register_protocol("wakeup", Arc::new(WakeupFactory));
        registry.register_protocol("round-robin", Arc::new(RoundRobinFactory));
        registry.register_protocol("single-frequency", Arc::new(SingleFrequencyFactory));

        fn simple(
            name: &'static str,
            build: fn(u32) -> Box<dyn Adversary>,
        ) -> Arc<SimpleAdversaryFactory> {
            Arc::new(SimpleAdversaryFactory { name, build })
        }
        registry.register_adversary("none", simple("none", |_| Box::new(NoAdversary::new())));
        registry.register_adversary(
            "fixed-band",
            simple("fixed-band", |t| Box::new(FixedBandAdversary::new(t))),
        );
        registry.register_adversary(
            "random",
            simple("random", |t| Box::new(RandomAdversary::new(t))),
        );
        registry.register_adversary(
            "sweep",
            simple("sweep", |t| Box::new(SweepAdversary::new(t))),
        );
        registry.register_adversary(
            "adaptive-greedy",
            simple("adaptive-greedy", |t| {
                Box::new(AdaptiveGreedyAdversary::new(t))
            }),
        );
        registry.register_adversary("bursty", Arc::new(BurstyFactory));
        registry.register_adversary("oblivious-random", Arc::new(ObliviousRandomFactory));
        registry.register_adversary("top-weight", Arc::new(TopWeightFactory));

        registry.register_probe("metrics", Arc::new(MetricsProbeFactory));
        registry.register_probe("checker", Arc::new(CheckerProbeFactory));
        registry.register_probe("trace", Arc::new(TraceProbeFactory));
        registry.register_probe("fault-counters", Arc::new(FaultCountersProbeFactory));

        registry.register_fault("drop", Arc::new(DropFaultFactory));
        registry.register_fault("capture", Arc::new(CaptureFaultFactory));
        registry.register_fault("partition", Arc::new(PartitionFaultFactory));
        registry.register_fault("churn", Arc::new(ChurnFaultFactory));
        registry
    }

    /// Registers (or replaces) a protocol factory under `name`.
    pub fn register_protocol(
        &mut self,
        name: impl Into<String>,
        factory: Arc<dyn ProtocolFactory>,
    ) {
        self.protocols.insert(name.into(), factory);
    }

    /// Registers (or replaces) an adversary factory under `name`.
    pub fn register_adversary(
        &mut self,
        name: impl Into<String>,
        factory: Arc<dyn AdversaryFactory>,
    ) {
        self.adversaries.insert(name.into(), factory);
    }

    /// Registers (or replaces) a probe factory under `name`.
    pub fn register_probe(&mut self, name: impl Into<String>, factory: Arc<dyn ProbeFactory>) {
        self.probes.insert(name.into(), factory);
    }

    /// Registers (or replaces) a fault-layer factory under `name`.
    pub fn register_fault(&mut self, name: impl Into<String>, factory: Arc<dyn FaultFactory>) {
        self.faults.insert(name.into(), factory);
    }

    /// Resolves a protocol factory by name.
    pub fn protocol(&self, name: &str) -> Result<Arc<dyn ProtocolFactory>, SpecError> {
        self.protocols
            .get(name)
            .cloned()
            .ok_or_else(|| SpecError::UnknownProtocol {
                name: name.to_string(),
                known: self.protocol_names(),
            })
    }

    /// Resolves an adversary factory by name.
    pub fn adversary(&self, name: &str) -> Result<Arc<dyn AdversaryFactory>, SpecError> {
        self.adversaries
            .get(name)
            .cloned()
            .ok_or_else(|| SpecError::UnknownAdversary {
                name: name.to_string(),
                known: self.adversary_names(),
            })
    }

    /// Resolves a probe factory by name.
    pub fn probe(&self, name: &str) -> Result<Arc<dyn ProbeFactory>, SpecError> {
        self.probes
            .get(name)
            .cloned()
            .ok_or_else(|| SpecError::UnknownProbe {
                name: name.to_string(),
                known: self.probe_names(),
            })
    }

    /// Resolves a fault-layer factory by name.
    pub fn fault(&self, name: &str) -> Result<Arc<dyn FaultFactory>, SpecError> {
        self.faults
            .get(name)
            .cloned()
            .ok_or_else(|| SpecError::UnknownFault {
                name: name.to_string(),
                known: self.fault_names(),
            })
    }

    /// The registered protocol names, sorted.
    pub fn protocol_names(&self) -> Vec<String> {
        self.protocols.keys().cloned().collect()
    }

    /// The registered adversary names, sorted.
    pub fn adversary_names(&self) -> Vec<String> {
        self.adversaries.keys().cloned().collect()
    }

    /// The registered probe names, sorted.
    pub fn probe_names(&self) -> Vec<String> {
        self.probes.keys().cloned().collect()
    }

    /// The registered fault-layer names, sorted.
    pub fn fault_names(&self) -> Vec<String> {
        self.faults.keys().cloned().collect()
    }
}

fn global() -> &'static RwLock<Registry> {
    static GLOBAL: OnceLock<RwLock<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Registry::with_defaults()))
}

/// Registers a protocol factory in the process-global registry used by
/// [`Sim::from_spec`](crate::sim::Sim::from_spec) and the deprecated
/// shorthands. Downstream crates call this once at startup.
pub fn register_protocol(name: impl Into<String>, factory: Arc<dyn ProtocolFactory>) {
    global()
        .write()
        .expect("registry lock poisoned")
        .register_protocol(name, factory);
}

/// Registers an adversary factory in the process-global registry.
pub fn register_adversary(name: impl Into<String>, factory: Arc<dyn AdversaryFactory>) {
    global()
        .write()
        .expect("registry lock poisoned")
        .register_adversary(name, factory);
}

/// Registers a probe factory in the process-global registry.
pub fn register_probe(name: impl Into<String>, factory: Arc<dyn ProbeFactory>) {
    global()
        .write()
        .expect("registry lock poisoned")
        .register_probe(name, factory);
}

/// Resolves a protocol factory from the process-global registry.
pub fn resolve_protocol(name: &str) -> Result<Arc<dyn ProtocolFactory>, SpecError> {
    global()
        .read()
        .expect("registry lock poisoned")
        .protocol(name)
}

/// Resolves an adversary factory from the process-global registry.
pub fn resolve_adversary(name: &str) -> Result<Arc<dyn AdversaryFactory>, SpecError> {
    global()
        .read()
        .expect("registry lock poisoned")
        .adversary(name)
}

/// Resolves a probe factory from the process-global registry.
pub fn resolve_probe(name: &str) -> Result<Arc<dyn ProbeFactory>, SpecError> {
    global().read().expect("registry lock poisoned").probe(name)
}

/// Registers a fault-layer factory in the process-global registry.
pub fn register_fault(name: impl Into<String>, factory: Arc<dyn FaultFactory>) {
    global()
        .write()
        .expect("registry lock poisoned")
        .register_fault(name, factory);
}

/// Resolves a fault-layer factory from the process-global registry.
pub fn resolve_fault(name: &str) -> Result<Arc<dyn FaultFactory>, SpecError> {
    global().read().expect("registry lock poisoned").fault(name)
}

/// The protocol names in the process-global registry, sorted.
pub fn protocol_names() -> Vec<String> {
    global()
        .read()
        .expect("registry lock poisoned")
        .protocol_names()
}

/// The adversary names in the process-global registry, sorted.
pub fn adversary_names() -> Vec<String> {
    global()
        .read()
        .expect("registry lock poisoned")
        .adversary_names()
}

/// The probe names in the process-global registry, sorted.
pub fn probe_names() -> Vec<String> {
    global()
        .read()
        .expect("registry lock poisoned")
        .probe_names()
}

/// The fault-layer names in the process-global registry, sorted.
pub fn fault_names() -> Vec<String> {
    global()
        .read()
        .expect("registry lock poisoned")
        .fault_names()
}

/// Builds the adversary described by `spec` for one `(scenario, seed)`
/// execution, resolving the name against the process-global registry.
pub fn build_adversary(
    spec: &ComponentSpec,
    scenario: &Scenario,
    seed: u64,
) -> Result<BoxedAdversary, SpecError> {
    resolve_adversary(spec.name())?.build(scenario, &spec.params, seed)
}

/// Builds the fault layer described by `spec` for one scenario, resolving
/// the name against the process-global registry. Seedless by design: the
/// engine pairs the layer with its private random stream on attachment.
pub fn build_fault(
    spec: &ComponentSpec,
    scenario: &Scenario,
) -> Result<Box<dyn FaultLayer>, SpecError> {
    resolve_fault(spec.name())?.build(scenario, &spec.params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsync_radio::frequency::FrequencyBand;
    use wsync_radio::history::History;

    #[test]
    fn default_registry_resolves_every_builtin() {
        let registry = Registry::with_defaults();
        let scenario = Scenario::new(4, 8, 2);
        for name in registry.protocol_names() {
            let factory = registry.protocol(&name).unwrap();
            let ctor = factory
                .instantiate(&scenario, &Params::new())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut protocol = ctor(NodeId::new(0));
            assert!(!protocol.is_leader());
            assert!(!protocol.protocol_name().is_empty());
            // the protocol is runnable through the erased interface
            let mut rng = SimRng::from_seed(1);
            protocol.on_activate(ActivationInfo::new(4, 8, 2), &mut rng);
            let action = protocol.choose_action(0, &mut rng);
            let feedback = match action {
                Action::Broadcast { frequency, .. } => Feedback::Broadcasted { frequency },
                Action::Listen { frequency } => Feedback::Silence { frequency },
                Action::Sleep => Feedback::Slept,
            };
            protocol.on_feedback(0, feedback, &mut rng);
        }
        for name in registry.adversary_names() {
            let factory = registry.adversary(&name).unwrap();
            let mut params = Params::new();
            if name == "bursty" {
                params.set("period", 10u64);
                params.set("burst_len", 2u64);
            } else if name == "oblivious-random" {
                params.set("t_actual", 1u64);
            }
            let mut adversary = factory
                .build(&scenario, &params, 7)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let set = adversary.disrupt(
                0,
                FrequencyBand::new(8),
                &History::new(),
                &mut SimRng::from_seed(0),
            );
            assert!(set.len() <= 8, "{name} disrupted too much");
        }
    }

    #[test]
    fn unknown_names_list_the_known_ones() {
        let registry = Registry::with_defaults();
        match registry.protocol("trapdor").err() {
            Some(SpecError::UnknownProtocol { name, known }) => {
                assert_eq!(name, "trapdor");
                assert!(known.contains(&"trapdoor".to_string()));
            }
            other => panic!("expected UnknownProtocol, got {other:?}"),
        }
        match registry.adversary("nonsense").err() {
            Some(SpecError::UnknownAdversary { known, .. }) => {
                assert_eq!(known.len(), 8);
            }
            other => panic!("expected UnknownAdversary, got {other:?}"),
        }
    }

    #[test]
    fn factories_validate_their_parameters() {
        let registry = Registry::with_defaults();
        let scenario = Scenario::new(4, 8, 2);
        // typo in a protocol parameter
        let err = registry
            .protocol("trapdoor")
            .unwrap()
            .instantiate(&scenario, &Params::new().with("epoch_konstant", 2.0))
            .err()
            .expect("typo must be rejected");
        assert!(matches!(err, SpecError::UnknownParam { .. }), "{err}");
        // missing required adversary parameter
        let err = registry
            .adversary("oblivious-random")
            .unwrap()
            .build(&scenario, &Params::new(), 0)
            .expect_err("missing t_actual must be rejected");
        assert!(matches!(err, SpecError::MissingParam { .. }), "{err}");
        // wrong type
        let err = registry
            .adversary("bursty")
            .unwrap()
            .build(
                &scenario,
                &Params::new().with("period", "ten").with("burst_len", 2u64),
                0,
            )
            .expect_err("mistyped period must be rejected");
        assert!(matches!(err, SpecError::BadParam { .. }), "{err}");
    }

    #[test]
    fn downstream_registration_is_visible_globally() {
        struct EchoFactory;
        impl AdversaryFactory for EchoFactory {
            fn build(
                &self,
                _scenario: &Scenario,
                params: &Params,
                _seed: u64,
            ) -> Result<BoxedAdversary, SpecError> {
                ParamReader::new("test-echo", params).finish()?;
                Ok(BoxedAdversary::new(Box::new(NoAdversary::new())))
            }
        }
        register_adversary("test-echo", Arc::new(EchoFactory));
        assert!(adversary_names().contains(&"test-echo".to_string()));
        let spec = ComponentSpec::named("test-echo");
        let scenario = Scenario::new(2, 4, 1);
        assert!(build_adversary(&spec, &scenario, 0).is_ok());
    }

    #[test]
    fn trapdoor_params_mirror_the_config_builders() {
        let scenario = Scenario::new(8, 16, 4);
        let params = Params::new()
            .with("epoch_constant", 1.5)
            .with("final_epoch_constant", 3.0)
            .with("frequency_limit", 2u64);
        let config = trapdoor_config_from("trapdoor", &scenario, &params, None).unwrap();
        let expected = TrapdoorConfig::new(8, 16, 4)
            .with_epoch_constant(1.5)
            .with_final_epoch_constant(3.0)
            .with_frequency_limit(2);
        assert_eq!(config, expected);
    }
}
