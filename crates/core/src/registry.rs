//! The open protocol/adversary registry.
//!
//! [`Registry`] maps string keys to [`ProtocolFactory`] and
//! [`AdversaryFactory`] implementations. [`Registry::with_defaults`]
//! pre-populates every protocol in this crate (`trapdoor`,
//! `good-samaritan`, `wakeup`, `round-robin`, `single-frequency`) and every
//! adversary in `wsync-radio` (`none`, `fixed-band`, `random`, `sweep`,
//! `bursty`, `adaptive-greedy`, `oblivious-random`, `top-weight`).
//! Downstream crates extend the set at run time with
//! [`register_protocol`] / [`register_adversary`] — no enum to edit, no
//! crate to fork — and their components immediately work everywhere a
//! name does: [`ScenarioSpec`](crate::spec::ScenarioSpec) files,
//! [`Sim::from_spec`](crate::sim::Sim::from_spec), sweeps, and the
//! `run_experiments --spec` CLI.
//!
//! The string keys are **stable public API** (they appear in spec files and
//! experiment tables); `tests/spec_roundtrip.rs` pins them.
//!
//! # Type erasure
//!
//! The engine is statically typed over one protocol type per run. Factories
//! bridge from dynamic names to that world by returning
//! [`BoxedProtocol`]s — type-erased [`SyncProtocol`]s whose message
//! payloads ride in a [`DynMsg`]. The erasure wrapper forwards every call
//! unchanged and draws no randomness of its own, so a registry-built run is
//! bit-for-bit identical to the statically-typed equivalent
//! (`tests/engine_golden.rs` holds the proof).

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

use wsync_radio::action::Action;
use wsync_radio::adversary::{
    AdaptiveGreedyAdversary, Adversary, BurstyAdversary, FixedBandAdversary, NoAdversary,
    ObliviousScheduleAdversary, RandomAdversary, SweepAdversary, TopWeightAdversary,
};
use wsync_radio::message::{Feedback, Received};
use wsync_radio::node::{ActivationInfo, NodeId};
use wsync_radio::protocol::Protocol;
use wsync_radio::rng::SimRng;

use crate::baselines::{RoundRobinConfig, RoundRobinProtocol, WakeupConfig, WakeupProtocol};
use crate::good_samaritan::{GoodSamaritanConfig, GoodSamaritanProtocol};
use crate::runner::{BoxedAdversary, Scenario, SyncProtocol};
use crate::spec::{ComponentSpec, ParamReader, Params, SpecError};
use crate::trapdoor::{TrapdoorConfig, TrapdoorProtocol};

/// A type-erased message payload.
///
/// Registry-built protocols of arbitrary concrete type share one engine
/// instantiation, so their messages travel as `DynMsg` and are downcast
/// back on receipt. All nodes of a run are built by the same factory and
/// therefore speak the same payload type; a mismatch (a custom factory
/// mixing protocol types with different messages) panics with a clear
/// message rather than corrupting an execution.
#[derive(Clone)]
pub struct DynMsg {
    payload: Arc<dyn Any + Send + Sync>,
    type_name: &'static str,
}

impl DynMsg {
    /// Wraps a concrete message.
    pub fn new<M: Any + Send + Sync>(message: M) -> Self {
        DynMsg {
            payload: Arc::new(message),
            type_name: std::any::type_name::<M>(),
        }
    }

    /// Recovers the concrete message, cloning it out of the shared payload.
    pub fn downcast<M: Any + Clone>(&self) -> Option<M> {
        self.payload.downcast_ref::<M>().cloned()
    }

    /// The `type_name` of the wrapped message (diagnostics only).
    pub fn payload_type(&self) -> &'static str {
        self.type_name
    }
}

impl fmt::Debug for DynMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("DynMsg").field(&self.type_name).finish()
    }
}

/// A boxed, type-erased synchronization protocol — what a
/// [`ProtocolFactory`] produces and the engine runs.
pub struct BoxedProtocol(Box<dyn SyncProtocol<Msg = DynMsg>>);

impl BoxedProtocol {
    /// Erases a concrete protocol.
    pub fn erase<P>(protocol: P) -> Self
    where
        P: SyncProtocol + 'static,
        P::Msg: Any + Send + Sync,
    {
        BoxedProtocol(Box::new(Erased(protocol)))
    }
}

impl Protocol for BoxedProtocol {
    type Msg = DynMsg;

    fn on_activate(&mut self, info: ActivationInfo, rng: &mut SimRng) {
        self.0.on_activate(info, rng);
    }

    fn choose_action(&mut self, local_round: u64, rng: &mut SimRng) -> Action<DynMsg> {
        self.0.choose_action(local_round, rng)
    }

    fn on_feedback(&mut self, local_round: u64, feedback: Feedback<DynMsg>, rng: &mut SimRng) {
        self.0.on_feedback(local_round, feedback, rng);
    }

    fn output(&self) -> Option<u64> {
        self.0.output()
    }

    fn is_synchronized(&self) -> bool {
        self.0.is_synchronized()
    }
}

impl SyncProtocol for BoxedProtocol {
    fn is_leader(&self) -> bool {
        self.0.is_leader()
    }

    fn protocol_name(&self) -> &'static str {
        self.0.protocol_name()
    }
}

/// The erasure adapter: forwards every call to the concrete protocol,
/// wrapping outgoing payloads in [`DynMsg`] and downcasting incoming ones.
struct Erased<P>(P);

impl<P> Protocol for Erased<P>
where
    P: SyncProtocol,
    P::Msg: Any + Send + Sync,
{
    type Msg = DynMsg;

    fn on_activate(&mut self, info: ActivationInfo, rng: &mut SimRng) {
        self.0.on_activate(info, rng);
    }

    fn choose_action(&mut self, local_round: u64, rng: &mut SimRng) -> Action<DynMsg> {
        self.0
            .choose_action(local_round, rng)
            .map_message(DynMsg::new)
    }

    fn on_feedback(&mut self, local_round: u64, feedback: Feedback<DynMsg>, rng: &mut SimRng) {
        let feedback: Feedback<P::Msg> = match feedback {
            Feedback::Received(r) => {
                let payload = r.payload.downcast::<P::Msg>().unwrap_or_else(|| {
                    panic!(
                        "protocol {} expected a {} payload but received {}; a registry \
                         factory must build nodes that all share one message type",
                        self.0.protocol_name(),
                        std::any::type_name::<P::Msg>(),
                        r.payload.payload_type()
                    )
                });
                Feedback::Received(Received {
                    sender: r.sender,
                    frequency: r.frequency,
                    payload,
                })
            }
            Feedback::Silence { frequency } => Feedback::Silence { frequency },
            Feedback::Broadcasted { frequency } => Feedback::Broadcasted { frequency },
            Feedback::Slept => Feedback::Slept,
        };
        self.0.on_feedback(local_round, feedback, rng);
    }

    fn output(&self) -> Option<u64> {
        self.0.output()
    }

    fn is_synchronized(&self) -> bool {
        self.0.is_synchronized()
    }
}

impl<P> SyncProtocol for Erased<P>
where
    P: SyncProtocol,
    P::Msg: Any + Send + Sync,
{
    fn is_leader(&self) -> bool {
        self.0.is_leader()
    }

    fn protocol_name(&self) -> &'static str {
        self.0.protocol_name()
    }
}

/// A per-node protocol constructor, produced once per run by a
/// [`ProtocolFactory`] after parameter validation.
pub type ProtocolCtor = Box<dyn Fn(NodeId) -> BoxedProtocol + Send + Sync>;

/// Builds protocol instances for a scenario from declarative parameters.
///
/// `instantiate` is called once per run: it validates `params` against the
/// scenario (returning a typed [`SpecError`] on any problem) and returns
/// the constructor the engine calls once per node.
pub trait ProtocolFactory: Send + Sync {
    /// Validates `params` and returns the per-node constructor.
    fn instantiate(&self, scenario: &Scenario, params: &Params) -> Result<ProtocolCtor, SpecError>;
}

/// Builds an adversary instance for a scenario from declarative parameters.
pub trait AdversaryFactory: Send + Sync {
    /// Validates `params` and builds the adversary for one `(scenario,
    /// seed)` execution.
    ///
    /// Validation must not depend on `seed`: whether this returns `Ok` may
    /// vary only with `scenario` and `params`. [`Sim`](crate::sim::Sim)
    /// probe-builds once (seed 0) at construction so that its per-trial
    /// `run_one` can stay infallible; a factory that rejected some seeds
    /// but not others would turn that contract into a mid-batch panic.
    fn build(
        &self,
        scenario: &Scenario,
        params: &Params,
        seed: u64,
    ) -> Result<BoxedAdversary, SpecError>;
}

// ---------------------------------------------------------------------------
// Built-in protocol factories
// ---------------------------------------------------------------------------

/// Shared parameter schema of the Trapdoor-family factories: instance
/// overrides plus the `TrapdoorConfig` knobs the ablations sweep.
fn trapdoor_config_from(
    component: &str,
    scenario: &Scenario,
    params: &Params,
    default_frequency_limit: Option<u32>,
) -> Result<TrapdoorConfig, SpecError> {
    let mut reader = ParamReader::new(component, params);
    let n = reader
        .opt_u64("upper_bound_n")?
        .unwrap_or_else(|| scenario.upper_bound());
    let f = reader
        .opt_u32("num_frequencies")?
        .unwrap_or(scenario.num_frequencies);
    let t = reader
        .opt_u32("disruption_bound")?
        .unwrap_or(scenario.disruption_bound);
    let mut config = TrapdoorConfig::new(n, f, t);
    if let Some(c) = reader.opt_f64("epoch_constant")? {
        config = config.with_epoch_constant(c);
    }
    if let Some(c) = reader.opt_f64("final_epoch_constant")? {
        config = config.with_final_epoch_constant(c);
    }
    match reader.opt_u32("frequency_limit")? {
        Some(limit) => config = config.with_frequency_limit(limit),
        None => {
            if let Some(limit) = default_frequency_limit {
                config = config.with_frequency_limit(limit);
            }
        }
    }
    if let Some(p) = reader.opt_f64("leader_broadcast_probability")? {
        config.leader_broadcast_probability = p;
    }
    reader.finish()?;
    Ok(config)
}

struct TrapdoorFactory;

impl ProtocolFactory for TrapdoorFactory {
    fn instantiate(&self, scenario: &Scenario, params: &Params) -> Result<ProtocolCtor, SpecError> {
        let config = trapdoor_config_from("trapdoor", scenario, params, None)?;
        Ok(Box::new(move |_| {
            BoxedProtocol::erase(TrapdoorProtocol::new(config))
        }))
    }
}

struct SingleFrequencyFactory;

impl ProtocolFactory for SingleFrequencyFactory {
    fn instantiate(&self, scenario: &Scenario, params: &Params) -> Result<ProtocolCtor, SpecError> {
        let config = trapdoor_config_from("single-frequency", scenario, params, Some(1))?;
        Ok(Box::new(move |_| {
            BoxedProtocol::erase(TrapdoorProtocol::new(config))
        }))
    }
}

struct RoundRobinFactory;

impl ProtocolFactory for RoundRobinFactory {
    fn instantiate(&self, scenario: &Scenario, params: &Params) -> Result<ProtocolCtor, SpecError> {
        let trapdoor = trapdoor_config_from("round-robin", scenario, params, None)?;
        let config = RoundRobinConfig { trapdoor };
        Ok(Box::new(move |_| {
            BoxedProtocol::erase(RoundRobinProtocol::new(config))
        }))
    }
}

struct GoodSamaritanFactory;

impl ProtocolFactory for GoodSamaritanFactory {
    fn instantiate(&self, scenario: &Scenario, params: &Params) -> Result<ProtocolCtor, SpecError> {
        let mut reader = ParamReader::new("good-samaritan", params);
        let n = reader
            .opt_u64("upper_bound_n")?
            .unwrap_or_else(|| scenario.upper_bound());
        let f = reader
            .opt_u32("num_frequencies")?
            .unwrap_or(scenario.num_frequencies);
        let t = reader
            .opt_u32("disruption_bound")?
            .unwrap_or(scenario.disruption_bound);
        let mut config = GoodSamaritanConfig::new(n, f, t);
        if let Some(c) = reader.opt_f64("epoch_constant")? {
            config = config.with_epoch_constant(c);
        }
        if let Some(shift) = reader.opt_u32("threshold_shift")? {
            config = config.with_threshold_shift(shift);
        }
        if let Some(m) = reader.opt_f64("fallback_multiplier")? {
            config = config.with_fallback_multiplier(m);
        }
        if let Some(p) = reader.opt_f64("leader_broadcast_probability")? {
            config.leader_broadcast_probability = p;
        }
        reader.finish()?;
        Ok(Box::new(move |_| {
            BoxedProtocol::erase(GoodSamaritanProtocol::new(config))
        }))
    }
}

struct WakeupFactory;

impl ProtocolFactory for WakeupFactory {
    fn instantiate(&self, scenario: &Scenario, params: &Params) -> Result<ProtocolCtor, SpecError> {
        let mut reader = ParamReader::new("wakeup", params);
        let n = reader
            .opt_u64("upper_bound_n")?
            .unwrap_or_else(|| scenario.upper_bound());
        let f = reader
            .opt_u32("num_frequencies")?
            .unwrap_or(scenario.num_frequencies);
        let t = reader
            .opt_u32("disruption_bound")?
            .unwrap_or(scenario.disruption_bound);
        let mut config = WakeupConfig::new(n, f, t);
        if let Some(deadline) = reader.opt_u64("deadline_rounds")? {
            config = config.with_deadline(deadline);
        }
        if let Some(p) = reader.opt_f64("leader_broadcast_probability")? {
            config.leader_broadcast_probability = p;
        }
        reader.finish()?;
        Ok(Box::new(move |_| {
            BoxedProtocol::erase(WakeupProtocol::new(config))
        }))
    }
}

// ---------------------------------------------------------------------------
// Built-in adversary factories
// ---------------------------------------------------------------------------

/// Wraps a parameterless adversary constructor as a factory.
struct SimpleAdversaryFactory {
    name: &'static str,
    build: fn(u32) -> Box<dyn Adversary>,
}

impl AdversaryFactory for SimpleAdversaryFactory {
    fn build(
        &self,
        scenario: &Scenario,
        params: &Params,
        _seed: u64,
    ) -> Result<BoxedAdversary, SpecError> {
        ParamReader::new(self.name, params).finish()?;
        Ok(BoxedAdversary::new((self.build)(scenario.disruption_bound)))
    }
}

struct BurstyFactory;

impl AdversaryFactory for BurstyFactory {
    fn build(
        &self,
        scenario: &Scenario,
        params: &Params,
        _seed: u64,
    ) -> Result<BoxedAdversary, SpecError> {
        let mut reader = ParamReader::new("bursty", params);
        let period = reader.req_u64("period")?;
        let burst_len = reader.req_u64("burst_len")?;
        reader.finish()?;
        Ok(BoxedAdversary::new(Box::new(BurstyAdversary::new(
            scenario.disruption_bound,
            period,
            burst_len,
        ))))
    }
}

struct ObliviousRandomFactory;

impl AdversaryFactory for ObliviousRandomFactory {
    fn build(
        &self,
        scenario: &Scenario,
        params: &Params,
        seed: u64,
    ) -> Result<BoxedAdversary, SpecError> {
        let mut reader = ParamReader::new("oblivious-random", params);
        let t_actual = reader.req_u32("t_actual")?;
        reader.finish()?;
        // Pre-sample a schedule long enough to cover the run without
        // repeating too quickly. The seed tweak and length are part of the
        // reproducibility contract (pinned by tests/engine_golden.rs).
        let len = 8192usize;
        Ok(BoxedAdversary::new(Box::new(
            ObliviousScheduleAdversary::random(
                seed ^ 0x0b11_0005,
                len,
                scenario.num_frequencies,
                t_actual.min(scenario.disruption_bound),
            ),
        )))
    }
}

struct TopWeightFactory;

impl AdversaryFactory for TopWeightFactory {
    fn build(
        &self,
        scenario: &Scenario,
        params: &Params,
        _seed: u64,
    ) -> Result<BoxedAdversary, SpecError> {
        let mut reader = ParamReader::new("top-weight", params);
        let weights = reader.opt_f64_list("weights")?;
        reader.finish()?;
        let adversary = match weights {
            Some(weights) => TopWeightAdversary::new(scenario.disruption_bound, weights),
            None => TopWeightAdversary::against_uniform(
                scenario.disruption_bound,
                scenario.num_frequencies,
            ),
        };
        Ok(BoxedAdversary::new(Box::new(adversary)))
    }
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

/// A string-keyed catalogue of protocol and adversary factories.
#[derive(Clone)]
pub struct Registry {
    protocols: BTreeMap<String, Arc<dyn ProtocolFactory>>,
    adversaries: BTreeMap<String, Arc<dyn AdversaryFactory>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("protocols", &self.protocol_names())
            .field("adversaries", &self.adversary_names())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_defaults()
    }
}

impl Registry {
    /// An empty registry.
    pub fn empty() -> Self {
        Registry {
            protocols: BTreeMap::new(),
            adversaries: BTreeMap::new(),
        }
    }

    /// A registry pre-populated with every protocol and adversary in the
    /// workspace.
    pub fn with_defaults() -> Self {
        let mut registry = Registry::empty();
        registry.register_protocol("trapdoor", Arc::new(TrapdoorFactory));
        registry.register_protocol("good-samaritan", Arc::new(GoodSamaritanFactory));
        registry.register_protocol("wakeup", Arc::new(WakeupFactory));
        registry.register_protocol("round-robin", Arc::new(RoundRobinFactory));
        registry.register_protocol("single-frequency", Arc::new(SingleFrequencyFactory));

        fn simple(
            name: &'static str,
            build: fn(u32) -> Box<dyn Adversary>,
        ) -> Arc<SimpleAdversaryFactory> {
            Arc::new(SimpleAdversaryFactory { name, build })
        }
        registry.register_adversary("none", simple("none", |_| Box::new(NoAdversary::new())));
        registry.register_adversary(
            "fixed-band",
            simple("fixed-band", |t| Box::new(FixedBandAdversary::new(t))),
        );
        registry.register_adversary(
            "random",
            simple("random", |t| Box::new(RandomAdversary::new(t))),
        );
        registry.register_adversary(
            "sweep",
            simple("sweep", |t| Box::new(SweepAdversary::new(t))),
        );
        registry.register_adversary(
            "adaptive-greedy",
            simple("adaptive-greedy", |t| {
                Box::new(AdaptiveGreedyAdversary::new(t))
            }),
        );
        registry.register_adversary("bursty", Arc::new(BurstyFactory));
        registry.register_adversary("oblivious-random", Arc::new(ObliviousRandomFactory));
        registry.register_adversary("top-weight", Arc::new(TopWeightFactory));
        registry
    }

    /// Registers (or replaces) a protocol factory under `name`.
    pub fn register_protocol(
        &mut self,
        name: impl Into<String>,
        factory: Arc<dyn ProtocolFactory>,
    ) {
        self.protocols.insert(name.into(), factory);
    }

    /// Registers (or replaces) an adversary factory under `name`.
    pub fn register_adversary(
        &mut self,
        name: impl Into<String>,
        factory: Arc<dyn AdversaryFactory>,
    ) {
        self.adversaries.insert(name.into(), factory);
    }

    /// Resolves a protocol factory by name.
    pub fn protocol(&self, name: &str) -> Result<Arc<dyn ProtocolFactory>, SpecError> {
        self.protocols
            .get(name)
            .cloned()
            .ok_or_else(|| SpecError::UnknownProtocol {
                name: name.to_string(),
                known: self.protocol_names(),
            })
    }

    /// Resolves an adversary factory by name.
    pub fn adversary(&self, name: &str) -> Result<Arc<dyn AdversaryFactory>, SpecError> {
        self.adversaries
            .get(name)
            .cloned()
            .ok_or_else(|| SpecError::UnknownAdversary {
                name: name.to_string(),
                known: self.adversary_names(),
            })
    }

    /// The registered protocol names, sorted.
    pub fn protocol_names(&self) -> Vec<String> {
        self.protocols.keys().cloned().collect()
    }

    /// The registered adversary names, sorted.
    pub fn adversary_names(&self) -> Vec<String> {
        self.adversaries.keys().cloned().collect()
    }
}

fn global() -> &'static RwLock<Registry> {
    static GLOBAL: OnceLock<RwLock<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Registry::with_defaults()))
}

/// Registers a protocol factory in the process-global registry used by
/// [`Sim::from_spec`](crate::sim::Sim::from_spec) and the deprecated
/// shorthands. Downstream crates call this once at startup.
pub fn register_protocol(name: impl Into<String>, factory: Arc<dyn ProtocolFactory>) {
    global()
        .write()
        .expect("registry lock poisoned")
        .register_protocol(name, factory);
}

/// Registers an adversary factory in the process-global registry.
pub fn register_adversary(name: impl Into<String>, factory: Arc<dyn AdversaryFactory>) {
    global()
        .write()
        .expect("registry lock poisoned")
        .register_adversary(name, factory);
}

/// Resolves a protocol factory from the process-global registry.
pub fn resolve_protocol(name: &str) -> Result<Arc<dyn ProtocolFactory>, SpecError> {
    global()
        .read()
        .expect("registry lock poisoned")
        .protocol(name)
}

/// Resolves an adversary factory from the process-global registry.
pub fn resolve_adversary(name: &str) -> Result<Arc<dyn AdversaryFactory>, SpecError> {
    global()
        .read()
        .expect("registry lock poisoned")
        .adversary(name)
}

/// The protocol names in the process-global registry, sorted.
pub fn protocol_names() -> Vec<String> {
    global()
        .read()
        .expect("registry lock poisoned")
        .protocol_names()
}

/// The adversary names in the process-global registry, sorted.
pub fn adversary_names() -> Vec<String> {
    global()
        .read()
        .expect("registry lock poisoned")
        .adversary_names()
}

/// Builds the adversary described by `spec` for one `(scenario, seed)`
/// execution, resolving the name against the process-global registry.
pub fn build_adversary(
    spec: &ComponentSpec,
    scenario: &Scenario,
    seed: u64,
) -> Result<BoxedAdversary, SpecError> {
    resolve_adversary(spec.name())?.build(scenario, &spec.params, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsync_radio::frequency::FrequencyBand;
    use wsync_radio::history::History;

    #[test]
    fn default_registry_resolves_every_builtin() {
        let registry = Registry::with_defaults();
        let scenario = Scenario::new(4, 8, 2);
        for name in registry.protocol_names() {
            let factory = registry.protocol(&name).unwrap();
            let ctor = factory
                .instantiate(&scenario, &Params::new())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut protocol = ctor(NodeId::new(0));
            assert!(!protocol.is_leader());
            assert!(!protocol.protocol_name().is_empty());
            // the protocol is runnable through the erased interface
            let mut rng = SimRng::from_seed(1);
            protocol.on_activate(ActivationInfo::new(4, 8, 2), &mut rng);
            let action = protocol.choose_action(0, &mut rng);
            let feedback = match action {
                Action::Broadcast { frequency, .. } => Feedback::Broadcasted { frequency },
                Action::Listen { frequency } => Feedback::Silence { frequency },
                Action::Sleep => Feedback::Slept,
            };
            protocol.on_feedback(0, feedback, &mut rng);
        }
        for name in registry.adversary_names() {
            let factory = registry.adversary(&name).unwrap();
            let mut params = Params::new();
            if name == "bursty" {
                params.set("period", 10u64);
                params.set("burst_len", 2u64);
            } else if name == "oblivious-random" {
                params.set("t_actual", 1u64);
            }
            let mut adversary = factory
                .build(&scenario, &params, 7)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let set = adversary.disrupt(
                0,
                FrequencyBand::new(8),
                &History::new(),
                &mut SimRng::from_seed(0),
            );
            assert!(set.len() <= 8, "{name} disrupted too much");
        }
    }

    #[test]
    fn unknown_names_list_the_known_ones() {
        let registry = Registry::with_defaults();
        match registry.protocol("trapdor").err() {
            Some(SpecError::UnknownProtocol { name, known }) => {
                assert_eq!(name, "trapdor");
                assert!(known.contains(&"trapdoor".to_string()));
            }
            other => panic!("expected UnknownProtocol, got {other:?}"),
        }
        match registry.adversary("nonsense").err() {
            Some(SpecError::UnknownAdversary { known, .. }) => {
                assert_eq!(known.len(), 8);
            }
            other => panic!("expected UnknownAdversary, got {other:?}"),
        }
    }

    #[test]
    fn factories_validate_their_parameters() {
        let registry = Registry::with_defaults();
        let scenario = Scenario::new(4, 8, 2);
        // typo in a protocol parameter
        let err = registry
            .protocol("trapdoor")
            .unwrap()
            .instantiate(&scenario, &Params::new().with("epoch_konstant", 2.0))
            .err()
            .expect("typo must be rejected");
        assert!(matches!(err, SpecError::UnknownParam { .. }), "{err}");
        // missing required adversary parameter
        let err = registry
            .adversary("oblivious-random")
            .unwrap()
            .build(&scenario, &Params::new(), 0)
            .expect_err("missing t_actual must be rejected");
        assert!(matches!(err, SpecError::MissingParam { .. }), "{err}");
        // wrong type
        let err = registry
            .adversary("bursty")
            .unwrap()
            .build(
                &scenario,
                &Params::new().with("period", "ten").with("burst_len", 2u64),
                0,
            )
            .expect_err("mistyped period must be rejected");
        assert!(matches!(err, SpecError::BadParam { .. }), "{err}");
    }

    #[test]
    fn downstream_registration_is_visible_globally() {
        struct EchoFactory;
        impl AdversaryFactory for EchoFactory {
            fn build(
                &self,
                _scenario: &Scenario,
                params: &Params,
                _seed: u64,
            ) -> Result<BoxedAdversary, SpecError> {
                ParamReader::new("test-echo", params).finish()?;
                Ok(BoxedAdversary::new(Box::new(NoAdversary::new())))
            }
        }
        register_adversary("test-echo", Arc::new(EchoFactory));
        assert!(adversary_names().contains(&"test-echo".to_string()));
        let spec = ComponentSpec::named("test-echo");
        let scenario = Scenario::new(2, 4, 1);
        assert!(build_adversary(&spec, &scenario, 0).is_ok());
    }

    #[test]
    fn trapdoor_params_mirror_the_config_builders() {
        let scenario = Scenario::new(8, 16, 4);
        let params = Params::new()
            .with("epoch_constant", 1.5)
            .with("final_epoch_constant", 3.0)
            .with("frequency_limit", 2u64);
        let config = trapdoor_config_from("trapdoor", &scenario, &params, None).unwrap();
        let expected = TrapdoorConfig::new(8, 16, 4)
            .with_epoch_constant(1.5)
            .with_final_epoch_constant(3.0)
            .with_frequency_limit(2);
        assert_eq!(config, expected);
    }
}
