//! The wireless synchronization problem (Section 3).
//!
//! Wireless synchronization is achieved when the activated nodes share a
//! consistent round numbering scheme. The problem has five requirements:
//!
//! 1. **Validity** — in every round, every activated node outputs a value in
//!    `ℕ ∪ {⊥}` (`⊥` meaning "not yet determined").
//! 2. **Synch commit** — once a node outputs a non-`⊥` value, it never
//!    outputs `⊥` again.
//! 3. **Correctness** — if a node outputs `i` in round `r`, it outputs
//!    `i + 1` in round `r + 1`.
//! 4. **Agreement** — in every round, all non-`⊥` outputs are the same
//!    (with high probability).
//! 5. **Liveness** — eventually every active node stops outputting `⊥`
//!    (with probability 1).
//!
//! An algorithm *solves the problem in time `T`* iff liveness is achieved by
//! round `T` with high probability.
//!
//! In this workspace, a node's output is represented as `Option<u64>`
//! (`None` is `⊥`); [`SyncOutput`] is a convenience wrapper that formats and
//! compares outputs, and [`ProblemInstance`] carries the problem parameters
//! `(N, F, t)` shared by every protocol.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The parameters a wireless synchronization instance is defined over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProblemInstance {
    /// Known upper bound `N` on the number of participants.
    pub upper_bound_n: u64,
    /// Number of frequencies `F ≥ 1`.
    pub num_frequencies: u32,
    /// Known bound `t < F` on the number of frequencies the adversary can
    /// disrupt per round.
    pub disruption_bound: u32,
}

impl ProblemInstance {
    /// Creates a problem instance.
    pub fn new(upper_bound_n: u64, num_frequencies: u32, disruption_bound: u32) -> Self {
        ProblemInstance {
            upper_bound_n,
            num_frequencies,
            disruption_bound,
        }
    }

    /// Whether the parameters satisfy the model's constraints
    /// (`F ≥ 1`, `t < F`, `N ≥ 2`).
    pub fn is_valid(&self) -> bool {
        self.num_frequencies >= 1
            && self.disruption_bound < self.num_frequencies
            && self.upper_bound_n >= 2
    }

    /// Fraction of the band the adversary can disrupt, `t / F`.
    pub fn disruption_fraction(&self) -> f64 {
        f64::from(self.disruption_bound) / f64::from(self.num_frequencies)
    }
}

impl From<wsync_radio::node::ActivationInfo> for ProblemInstance {
    fn from(info: wsync_radio::node::ActivationInfo) -> Self {
        ProblemInstance::new(
            info.upper_bound_n,
            info.num_frequencies,
            info.disruption_bound,
        )
    }
}

/// A node's output for one round: the paper's `ℕ ∪ {⊥}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncOutput {
    /// The node has not yet determined a round number (`⊥`).
    Bottom,
    /// The node claims the current round has this number.
    Round(u64),
}

impl SyncOutput {
    /// Converts from the engine-level representation.
    pub fn from_option(output: Option<u64>) -> Self {
        match output {
            None => SyncOutput::Bottom,
            Some(i) => SyncOutput::Round(i),
        }
    }

    /// Converts to the engine-level representation.
    pub fn to_option(self) -> Option<u64> {
        match self {
            SyncOutput::Bottom => None,
            SyncOutput::Round(i) => Some(i),
        }
    }

    /// Whether the output is `⊥`.
    pub fn is_bottom(self) -> bool {
        matches!(self, SyncOutput::Bottom)
    }

    /// The expected output one round later under the correctness property.
    pub fn successor(self) -> Self {
        match self {
            SyncOutput::Bottom => SyncOutput::Bottom,
            SyncOutput::Round(i) => SyncOutput::Round(i + 1),
        }
    }
}

impl fmt::Display for SyncOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncOutput::Bottom => write!(f, "⊥"),
            SyncOutput::Round(i) => write!(f, "{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_validity() {
        assert!(ProblemInstance::new(16, 8, 3).is_valid());
        assert!(!ProblemInstance::new(16, 8, 8).is_valid());
        assert!(!ProblemInstance::new(16, 0, 0).is_valid());
        assert!(!ProblemInstance::new(1, 8, 3).is_valid());
    }

    #[test]
    fn disruption_fraction_computation() {
        let p = ProblemInstance::new(16, 8, 2);
        assert!((p.disruption_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn instance_from_activation_info() {
        let info = wsync_radio::node::ActivationInfo::new(32, 12, 5);
        let p: ProblemInstance = info.into();
        assert_eq!(p.upper_bound_n, 32);
        assert_eq!(p.num_frequencies, 12);
        assert_eq!(p.disruption_bound, 5);
    }

    #[test]
    fn sync_output_conversions_and_display() {
        assert_eq!(SyncOutput::from_option(None), SyncOutput::Bottom);
        assert_eq!(SyncOutput::from_option(Some(3)), SyncOutput::Round(3));
        assert_eq!(SyncOutput::Round(3).to_option(), Some(3));
        assert_eq!(SyncOutput::Bottom.to_option(), None);
        assert!(SyncOutput::Bottom.is_bottom());
        assert_eq!(format!("{}", SyncOutput::Bottom), "⊥");
        assert_eq!(format!("{}", SyncOutput::Round(9)), "9");
    }

    #[test]
    fn successor_follows_correctness() {
        assert_eq!(SyncOutput::Round(4).successor(), SyncOutput::Round(5));
        assert_eq!(SyncOutput::Bottom.successor(), SyncOutput::Bottom);
    }
}
