//! Resumable sweep orchestration: whole experiment grids as one
//! work-stealing batch, with streaming aggregation and an optional
//! persistent result cache.
//!
//! A [`SweepSpec`] expands into grid points × seeds — potentially far more
//! trials than fit comfortably in memory as raw outcomes, and far too
//! expensive to recompute when a long run is interrupted. [`SweepRunner`]
//! addresses both:
//!
//! * **Work stealing across the whole grid.** All `(grid point, seed)`
//!   pairs form one global index space that the
//!   [`BatchRunner`]'s worker pool drains through an atomic cursor, so a
//!   grid point with slow trials cannot leave cores idle while a cheap
//!   point finishes — unlike running the points one `run_stats` call at a
//!   time.
//! * **Streaming folds.** A collector re-orders finished trials back into
//!   deterministic (point-major, seed-ascending) order and folds each one
//!   into a [`BatchStatsFold`] the moment it arrives, then drops it.
//!   Workers stall once they run more than
//!   [`REORDER_WINDOW`](crate::batch::REORDER_WINDOW) trials ahead of the
//!   fold cursor, so aggregates hold `O(window)` outcomes regardless of
//!   sweep size, yet are bit-identical to a serial loop (see
//!   [`BatchStatsFold`]).
//! * **Content-addressed resume.** With a [`ResultStore`] attached, every
//!   completed trial is persisted under `(spec digest, seed)` and already
//!   stored trials are served from the cache without touching the engine —
//!   a killed sweep restarted against the same store re-runs only what is
//!   missing and reproduces the from-scratch aggregates bit for bit.
//! * **Adaptive trial allocation.** A sweep that declares a
//!   [`StoppingRule`] runs in fixed-size seed *batches* and retires each
//!   grid point as soon as its watched metric's confidence interval is
//!   narrow enough (or, optionally, the point is provably worse than the
//!   best one seen). Stop decisions are evaluated only at batch boundaries
//!   on seed-ordered prefixes, with every active point advancing in
//!   lockstep — so the decision sequence is a pure function of trial
//!   outcomes, bit-identical across worker counts, scheduling
//!   perturbations, fabric processes, and fresh-vs-resumed runs (cached
//!   trials count toward the rule exactly like executed ones).

use std::ops::Range;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use wsync_stats::{
    dominated, quantiles, splitting_estimate, table::fmt_f64, wilson_ci, CiUndefined,
    ConfidenceInterval, SplittingConfig, SplittingEstimate, Table,
};

use crate::batch::{BatchRunner, BatchStats, BatchStatsFold};
use crate::json::Value;
use crate::registry::ProbeOutput;
use crate::report::SyncOutcome;
use crate::sim::Sim;
use crate::spec::{field_f64, field_u64, reject_unknown_keys, ScenarioSpec, SpecError, SweepSpec};
use crate::store::{ResultStore, StoreError};

/// An error raised while orchestrating a sweep: either the spec side
/// (invalid grid, unknown names) or the persistence side (store I/O).
#[derive(Debug)]
pub enum SweepError {
    /// Spec expansion or validation failed.
    Spec(SpecError),
    /// Reading from or appending to the result store failed.
    Store(StoreError),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Spec(e) => write!(f, "{e}"),
            SweepError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Spec(e) => Some(e),
            SweepError::Store(e) => Some(e),
        }
    }
}

impl From<SpecError> for SweepError {
    fn from(e: SpecError) -> Self {
        SweepError::Spec(e)
    }
}

impl From<StoreError> for SweepError {
    fn from(e: StoreError) -> Self {
        SweepError::Store(e)
    }
}

/// Aggregate result of one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointStats {
    /// The point's `"field=value"` label (empty for a gridless sweep).
    pub label: String,
    /// The fully substituted spec the point ran.
    pub spec: ScenarioSpec,
    /// The aggregate statistics, bit-identical to a serial
    /// [`BatchStats::aggregate`] over the point's seed-ordered outcomes.
    pub stats: BatchStats,
    /// Trials served from the result store without executing the engine.
    pub cached: u64,
    /// Trials executed by the engine in this run.
    pub executed: u64,
    /// Whether the point stopped before consuming the sweep's full seed
    /// budget (always `false` on fixed-count paths).
    pub stopped_early: bool,
    /// Why the point stopped sampling. `None` on fixed-count paths; on
    /// adaptive paths every point carries a reason —
    /// [`StopReason::Exhausted`] when the budget ran out first.
    pub stop: Option<StopReason>,
}

impl PointStats {
    /// Trials this point consumed in total (cached + executed).
    pub fn seeds_used(&self) -> u64 {
        self.cached + self.executed
    }
}

/// The result of a whole sweep: per-point aggregates plus cache totals.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One entry per grid point, in expansion order.
    pub points: Vec<PointStats>,
    /// First seed (inclusive).
    pub seed_start: u64,
    /// Last seed (exclusive).
    pub seed_end: u64,
}

impl SweepReport {
    /// The seed range every point ran.
    pub fn seeds(&self) -> Range<u64> {
        self.seed_start..self.seed_end
    }

    /// Total trials served from the result store across all points.
    pub fn cached_trials(&self) -> u64 {
        self.points.iter().map(|p| p.cached).sum()
    }

    /// Total trials executed by the engine across all points.
    pub fn executed_trials(&self) -> u64 {
        self.points.iter().map(|p| p.executed).sum()
    }

    /// Total trials (cached + executed).
    pub fn total_trials(&self) -> u64 {
        self.cached_trials() + self.executed_trials()
    }

    /// Points that stopped before consuming the full seed budget.
    pub fn stopped_early_points(&self) -> u64 {
        self.points.iter().filter(|p| p.stopped_early).count() as u64
    }
}

/// The per-point batch statistic an adaptive [`StoppingRule`] watches.
///
/// Mean metrics build a normal-approximation interval from the point's
/// Welford summary ([`ConfidenceInterval::for_summary`]); rate metrics
/// build a Wilson score interval from its success/trial counters
/// ([`wilson_ci`]). Both are incremental: the rule never retains samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopMetric {
    /// Mean of the worst per-node rounds-to-sync (over synced trials).
    SyncRoundsMean,
    /// Mean of the global completion round (over synced trials).
    CompletionRoundsMean,
    /// Fraction of trials in which every node synchronized.
    SyncRate,
    /// Fraction of trials that ended with exactly one leader.
    SingleLeaderRate,
    /// Fraction of clean trials (synced, one leader, no violation).
    CleanRate,
}

impl StopMetric {
    /// Every metric, in spec-name order (for error messages).
    pub const ALL: [StopMetric; 5] = [
        StopMetric::SyncRoundsMean,
        StopMetric::CompletionRoundsMean,
        StopMetric::SyncRate,
        StopMetric::SingleLeaderRate,
        StopMetric::CleanRate,
    ];

    /// The metric's spec-file name.
    pub fn name(self) -> &'static str {
        match self {
            StopMetric::SyncRoundsMean => "sync_rounds_mean",
            StopMetric::CompletionRoundsMean => "completion_rounds_mean",
            StopMetric::SyncRate => "sync_rate",
            StopMetric::SingleLeaderRate => "single_leader_rate",
            StopMetric::CleanRate => "clean_rate",
        }
    }

    /// Parses a spec-file name.
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.name() == name)
    }

    /// The objective direction dominance testing uses: `true` when larger
    /// values win (rates), `false` when smaller values win (round counts).
    pub fn higher_is_better(self) -> bool {
        matches!(
            self,
            StopMetric::SyncRate | StopMetric::SingleLeaderRate | StopMetric::CleanRate
        )
    }

    /// The metric's confidence interval over a point's accumulated stats.
    /// A typed [`CiUndefined`] means the prefix is too short (or too
    /// degenerate) for the width to exist — the stopping rule reads every
    /// variant as "keep sampling".
    pub fn ci(self, stats: &BatchStats, level: f64) -> Result<ConfidenceInterval, CiUndefined> {
        match self {
            StopMetric::SyncRoundsMean => {
                ConfidenceInterval::for_summary(&stats.rounds_to_sync, level)
            }
            StopMetric::CompletionRoundsMean => {
                ConfidenceInterval::for_summary(&stats.completion_rounds, level)
            }
            StopMetric::SyncRate => wilson_ci(stats.synced, stats.trials, level),
            StopMetric::SingleLeaderRate => wilson_ci(stats.single_leader, stats.trials, level),
            StopMetric::CleanRate => wilson_ci(stats.clean, stats.trials, level),
        }
    }
}

/// Why an adaptive sweep stopped sampling a grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The metric's confidence interval reached the rule's target width.
    HalfWidth,
    /// The point is provably worse than the incumbent best point: their
    /// intervals separate strictly on the losing side.
    Dominated,
    /// The seed budget ran out before the rule was satisfied.
    Exhausted,
}

impl StopReason {
    /// The reason's wire name (job events, report notes).
    pub fn name(self) -> &'static str {
        match self {
            StopReason::HalfWidth => "half_width",
            StopReason::Dominated => "dominated",
            StopReason::Exhausted => "exhausted",
        }
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An adaptive stopping rule: when a sweep declares one (the `"stop"` key
/// of a [`SweepSpec`]), trials are allocated in fixed-size seed batches
/// and each grid point retires as soon as its answer is statistically
/// known, instead of running a fixed count.
///
/// # Determinism contract
///
/// Decisions are evaluated only at *batch boundaries* — prefix lengths
/// `batch, 2·batch, …` of the effective seed range — over each point's
/// seed-ordered outcome prefix, with every still-active point advancing in
/// lockstep. The decision sequence is therefore a pure function of the
/// sweep's outcomes: worker counts, thread scheduling, multi-process
/// sharding, and cache hits versus live execution cannot change which
/// points stop, when, or why. [`decide_batch`](Self::decide_batch) is that
/// pure function; every consumer (in-process runner, fabric workers, the
/// serving layer) calls it with identically ordered inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoppingRule {
    /// The watched statistic.
    pub metric: StopMetric,
    /// Confidence level of the interval the rule tests (default `0.95`).
    pub ci_level: f64,
    /// Target half-width: a point stops once its interval's half-width is
    /// `≤` this (absolute, or relative to `|estimate|` when
    /// [`relative`](Self::relative) is set).
    pub half_width: f64,
    /// Interpret [`half_width`](Self::half_width) as a fraction of the
    /// point estimate's magnitude instead of an absolute width.
    pub relative: bool,
    /// Smallest prefix length at which stopping is allowed (default `64`):
    /// guards against lucky early widths on tiny samples.
    pub min_seeds: u64,
    /// Seed budget per point. `None` means the sweep's declared seed count
    /// is the budget.
    pub max_seeds: Option<u64>,
    /// Seeds per allocation batch (default `64`). Decisions happen only at
    /// multiples of this prefix length.
    pub batch: u64,
    /// Also retire points strictly *dominated* by the incumbent best point
    /// on the watched metric (their intervals separate on the losing
    /// side). Off by default: it changes the semantics from "every point
    /// measured to width ε" to "the winner measured, losers identified".
    pub dominance: bool,
}

impl StoppingRule {
    /// A rule watching `metric` with the given absolute target half-width
    /// and the documented defaults (`ci_level = 0.95`, `min_seeds = 64`,
    /// `batch = 64`, no budget override, no dominance).
    pub fn new(metric: StopMetric, half_width: f64) -> Self {
        StoppingRule {
            metric,
            ci_level: 0.95,
            half_width,
            relative: false,
            min_seeds: 64,
            max_seeds: None,
            batch: 64,
            dominance: false,
        }
    }

    /// Builder-style confidence level.
    pub fn with_ci_level(mut self, level: f64) -> Self {
        self.ci_level = level;
        self
    }

    /// Builder-style relative-width interpretation.
    pub fn relative(mut self) -> Self {
        self.relative = true;
        self
    }

    /// Builder-style minimum prefix length.
    pub fn with_min_seeds(mut self, min_seeds: u64) -> Self {
        self.min_seeds = min_seeds;
        self
    }

    /// Builder-style seed budget.
    pub fn with_max_seeds(mut self, max_seeds: u64) -> Self {
        self.max_seeds = Some(max_seeds);
        self
    }

    /// Builder-style batch size.
    pub fn with_batch(mut self, batch: u64) -> Self {
        self.batch = batch;
        self
    }

    /// Builder-style dominance-based early retirement.
    pub fn with_dominance(mut self) -> Self {
        self.dominance = true;
        self
    }

    /// Validates the rule's numeric ranges.
    pub fn validate(&self) -> Result<(), SpecError> {
        let bad = |message: String| SpecError::Malformed {
            context: "stop".to_string(),
            message,
        };
        if !(self.half_width.is_finite() && self.half_width > 0.0) {
            return Err(bad(format!(
                "\"half_width\" must be a positive finite number, got {}",
                self.half_width
            )));
        }
        if !(self.ci_level > 0.5 && self.ci_level < 1.0) {
            return Err(bad(format!(
                "\"ci_level\" must lie in (0.5, 1), got {}",
                self.ci_level
            )));
        }
        if self.min_seeds == 0 {
            return Err(bad("\"min_seeds\" must be at least 1".to_string()));
        }
        if self.batch == 0 {
            return Err(bad("\"batch\" must be at least 1".to_string()));
        }
        if let Some(max) = self.max_seeds {
            if max < self.min_seeds {
                return Err(bad(format!(
                    "\"max_seeds\" ({max}) must be at least \"min_seeds\" ({})",
                    self.min_seeds
                )));
            }
        }
        Ok(())
    }

    /// The width the interval must reach for `estimate`.
    pub fn target_half_width(&self, estimate: f64) -> f64 {
        if self.relative {
            self.half_width * estimate.abs()
        } else {
            self.half_width
        }
    }

    /// Whether a point's accumulated stats satisfy the width criterion. A
    /// width-undefined interval ([`CiUndefined`]) never satisfies it.
    pub fn satisfied(&self, stats: &BatchStats) -> bool {
        match self.metric.ci(stats, self.ci_level) {
            Err(_) => false,
            Ok(ci) => ci.half_width() <= self.target_half_width(ci.estimate),
        }
    }

    /// The shared batch-boundary decision: given every point's stats over
    /// the seed-ordered prefix of length `prefix_len` (stopped points keep
    /// the stats frozen at their stop boundary), marks newly stopped
    /// points in `stopped`. Pure — same inputs, same marks — and shared by
    /// the in-process runner and the fabric workers, so all consumers
    /// agree on the decision sequence by construction.
    ///
    /// The width pass runs first (in point order), then the dominance pass
    /// if enabled: the incumbent is the best defined interval across *all*
    /// points (stopped ones included — a retired winner still retires
    /// losers), and an active point is marked [`StopReason::Dominated`]
    /// when its interval separates strictly on the losing side.
    pub fn decide_batch(
        &self,
        stats: &[BatchStats],
        stopped: &mut [Option<StopReason>],
        prefix_len: u64,
    ) {
        debug_assert_eq!(stats.len(), stopped.len());
        if prefix_len < self.min_seeds {
            return;
        }
        for (point, point_stats) in stats.iter().enumerate() {
            if stopped[point].is_none() && self.satisfied(point_stats) {
                stopped[point] = Some(StopReason::HalfWidth);
            }
        }
        if !self.dominance {
            return;
        }
        let higher = self.metric.higher_is_better();
        let cis: Vec<Option<ConfidenceInterval>> = stats
            .iter()
            .map(|s| self.metric.ci(s, self.ci_level).ok())
            .collect();
        // The incumbent: best defended bound among defined intervals —
        // smallest upper when minimizing, largest lower when maximizing.
        // Strict comparison keeps the earliest point on ties, so the
        // choice is deterministic in point order.
        let incumbent = cis.iter().flatten().copied().reduce(|best, ci| {
            let wins = if higher {
                ci.lower > best.lower
            } else {
                ci.upper < best.upper
            };
            if wins {
                ci
            } else {
                best
            }
        });
        if let Some(incumbent) = incumbent {
            for (point, ci) in cis.iter().enumerate() {
                if stopped[point].is_none() {
                    if let Some(ci) = ci {
                        if dominated(ci, &incumbent, higher) {
                            stopped[point] = Some(StopReason::Dominated);
                        }
                    }
                }
            }
        }
    }

    /// Serializes to a JSON [`Value`] (the `"stop"` member of a sweep
    /// spec). `relative`/`dominance` are emitted only when set and
    /// `max_seeds` only when present, so round-tripping preserves the
    /// written form.
    pub fn to_value(&self) -> Value {
        let mut members = vec![
            (
                "metric".to_string(),
                Value::Str(self.metric.name().to_string()),
            ),
            ("ci_level".to_string(), self.ci_level.into()),
            ("half_width".to_string(), self.half_width.into()),
        ];
        if self.relative {
            members.push(("relative".to_string(), Value::Bool(true)));
        }
        members.push(("min_seeds".to_string(), self.min_seeds.into()));
        if let Some(max) = self.max_seeds {
            members.push(("max_seeds".to_string(), max.into()));
        }
        members.push(("batch".to_string(), self.batch.into()));
        if self.dominance {
            members.push(("dominance".to_string(), Value::Bool(true)));
        }
        Value::Object(members)
    }

    /// Decodes from a JSON [`Value`], rejecting unknown keys. Numeric
    /// ranges are *not* checked here — [`SweepSpec::from_value`] (and
    /// every execution entry point) calls [`validate`](Self::validate).
    pub fn from_value(value: &Value) -> Result<Self, SpecError> {
        let malformed = |context: &str, message: String| SpecError::Malformed {
            context: context.to_string(),
            message,
        };
        if value.as_object().is_none() {
            return Err(malformed(
                "stop",
                format!("expected an object, found {}", value.type_name()),
            ));
        }
        reject_unknown_keys(
            value,
            "stop",
            &[
                "metric",
                "ci_level",
                "half_width",
                "relative",
                "min_seeds",
                "max_seeds",
                "batch",
                "dominance",
            ],
        )?;
        let metric_name = value
            .get("metric")
            .and_then(Value::as_str)
            .ok_or_else(|| malformed("stop", "missing string key \"metric\"".to_string()))?;
        let metric = StopMetric::parse(metric_name).ok_or_else(|| {
            let known: Vec<&str> = StopMetric::ALL.iter().map(|m| m.name()).collect();
            malformed(
                "stop",
                format!(
                    "unknown metric \"{metric_name}\"; known metrics: {}",
                    known.join(", ")
                ),
            )
        })?;
        let half_width = field_f64(
            value
                .get("half_width")
                .ok_or_else(|| malformed("stop", "missing key \"half_width\"".to_string()))?,
            "stop.half_width",
        )?;
        let opt_f64 = |key: &str, default: f64| -> Result<f64, SpecError> {
            match value.get(key) {
                None => Ok(default),
                Some(v) => field_f64(v, &format!("stop.{key}")),
            }
        };
        let opt_u64 = |key: &str, default: u64| -> Result<u64, SpecError> {
            match value.get(key) {
                None => Ok(default),
                Some(v) => field_u64(v, &format!("stop.{key}")),
            }
        };
        let flag = |key: &str| -> Result<bool, SpecError> {
            match value.get(key) {
                None => Ok(false),
                Some(v) => v.as_bool().ok_or_else(|| {
                    malformed(
                        &format!("stop.{key}"),
                        format!("expected a bool, found {}", v.type_name()),
                    )
                }),
            }
        };
        Ok(StoppingRule {
            metric,
            ci_level: opt_f64("ci_level", 0.95)?,
            half_width,
            relative: flag("relative")?,
            min_seeds: opt_u64("min_seeds", 64)?,
            max_seeds: match value.get("max_seeds") {
                None => None,
                Some(v) => Some(field_u64(v, "stop.max_seeds")?),
            },
            batch: opt_u64("batch", 64)?,
            dominance: flag("dominance")?,
        })
    }
}

/// Which trials of a sweep run with their spec's declared probes
/// attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeSeeds {
    /// No trial is probed.
    None,
    /// Every executed trial is probed.
    All,
    /// Only each point's first seed is probed.
    FirstOnly,
}

/// Streams sweep grids through a [`BatchRunner`] worker pool with optional
/// content-addressed persistence. See the module docs for the execution
/// model.
#[derive(Debug, Clone, Default)]
pub struct SweepRunner {
    runner: BatchRunner,
    store: Option<Arc<ResultStore>>,
    reuse: bool,
}

impl SweepRunner {
    /// A runner on the default worker pool, with no store.
    pub fn new() -> Self {
        SweepRunner {
            runner: BatchRunner::new(),
            store: None,
            reuse: false,
        }
    }

    /// A runner on an explicit worker pool.
    pub fn with_runner(runner: BatchRunner) -> Self {
        SweepRunner {
            runner,
            store: None,
            reuse: false,
        }
    }

    /// Attaches a result store: completed trials are persisted, and
    /// already-stored trials are served from the cache without executing
    /// the engine (the `--resume` behaviour).
    pub fn store(mut self, store: Arc<ResultStore>) -> Self {
        self.store = Some(store);
        self.reuse = true;
        self
    }

    /// Attaches a result store in record-only mode: completed trials are
    /// persisted but existing records are *not* reused — every trial
    /// executes (a fresh `--out` run that still leaves a resumable store
    /// behind).
    pub fn record_only(mut self, store: Arc<ResultStore>) -> Self {
        self.store = Some(store);
        self.reuse = false;
        self
    }

    /// Expands `sweep` and runs every (grid point × seed) trial — or, when
    /// the sweep declares a [`StoppingRule`], allocates trials adaptively
    /// over [`SweepSpec::effective_seeds`] and stops each point as soon as
    /// its rule is satisfied.
    pub fn run(&self, sweep: &SweepSpec) -> Result<SweepReport, SweepError> {
        let points: Vec<(String, ScenarioSpec)> = sweep
            .expand()?
            .into_iter()
            .map(|point| (point.label, point.spec))
            .collect();
        match &sweep.stop {
            None => self.run_points(points, sweep.seeds()?),
            Some(rule) => self.run_points_adaptive(points, sweep.effective_seeds()?, rule),
        }
    }

    /// Runs an explicit list of labelled grid points over a seed range.
    /// This is the form the experiment modules use for grids that are not
    /// an axis cross product (paired parameters, per-point protocols).
    pub fn run_points(
        &self,
        points: Vec<(String, ScenarioSpec)>,
        seeds: Range<u64>,
    ) -> Result<SweepReport, SweepError> {
        self.run_points_each(points, seeds, |_, _| {})
    }

    /// Like [`run_points`](Self::run_points), additionally invoking `each`
    /// for every outcome — in deterministic (point index, seed) order,
    /// exactly once, before the outcome is dropped. Use this for bespoke
    /// folds that need more than [`BatchStats`] without collecting
    /// outcomes. Declared probes are not run on this path; use
    /// [`run_points_probed_each`](Self::run_points_probed_each) to carry
    /// their outputs.
    pub fn run_points_each<F>(
        &self,
        points: Vec<(String, ScenarioSpec)>,
        seeds: Range<u64>,
        mut each: F,
    ) -> Result<SweepReport, SweepError>
    where
        F: FnMut(usize, &SyncOutcome),
    {
        self.run_points_inner(points, seeds, ProbeSeeds::None, |point, outcome, _| {
            each(point, outcome)
        })
    }

    /// Like [`run_points_each`](Self::run_points_each), but every executed
    /// trial runs with its spec's declared probes attached; `each`
    /// additionally receives the probes' finalized outputs. Trials served
    /// from an attached store skip the engine — and therefore the probes —
    /// and are reported with `None` (the outcome stream itself is
    /// bit-identical either way).
    pub fn run_points_probed_each<F>(
        &self,
        points: Vec<(String, ScenarioSpec)>,
        seeds: Range<u64>,
        each: F,
    ) -> Result<SweepReport, SweepError>
    where
        F: FnMut(usize, &SyncOutcome, Option<&[ProbeOutput]>),
    {
        self.run_points_inner(points, seeds, ProbeSeeds::All, each)
    }

    /// Like [`run_points_probed_each`](Self::run_points_probed_each), but
    /// only each point's first *executed* seed runs with probes attached —
    /// the cheap sampling mode for reports that show one probe output per
    /// point (the `--spec` probe table): the remaining trials skip the
    /// probe overhead entirely, and the outcome stream stays identical.
    /// With a resume store attached, the sampled seed is the first one not
    /// already cached (probes observe live executions), so a partially
    /// resumed sweep still reports probe output as long as anything
    /// executes. Caveat: two points whose specs canonicalize to the same
    /// store digest (identical cells, or cells differing only in probes)
    /// share cache entries, so with a store attached one such point's
    /// freshly persisted trial can serve the other's sampled seed from
    /// cache and cost it its probe sample — give duplicate points distinct
    /// parameters if each must report probe output.
    pub fn run_points_probed_first_each<F>(
        &self,
        points: Vec<(String, ScenarioSpec)>,
        seeds: Range<u64>,
        each: F,
    ) -> Result<SweepReport, SweepError>
    where
        F: FnMut(usize, &SyncOutcome, Option<&[ProbeOutput]>),
    {
        self.run_points_inner(points, seeds, ProbeSeeds::FirstOnly, each)
    }

    fn run_points_inner<F>(
        &self,
        points: Vec<(String, ScenarioSpec)>,
        seeds: Range<u64>,
        probed: ProbeSeeds,
        mut each: F,
    ) -> Result<SweepReport, SweepError>
    where
        F: FnMut(usize, &SyncOutcome, Option<&[ProbeOutput]>),
    {
        let sims: Vec<Sim> = points
            .iter()
            .map(|(_, spec)| Sim::from_spec(spec))
            .collect::<Result<_, SpecError>>()?;
        // Each Sim already computed its canonical spec digest at build time.
        let digests: Vec<u64> = sims.iter().map(Sim::digest).collect();
        // For first-only sampling, pick each point's probe seed up front:
        // the first seed the store cannot serve (cache hits skip the
        // engine, and probes observe live executions only). The scan sees
        // the store as it was before the run; a point sharing its digest
        // with another point can still lose its sample to the other's
        // mid-run put (see run_points_probed_first_each docs).
        let probe_seed: Vec<Option<u64>> = match probed {
            ProbeSeeds::FirstOnly => digests
                .iter()
                .map(|&digest| match (&self.store, self.reuse) {
                    (Some(store), true) => seeds.clone().find(|&s| !store.contains(digest, s)),
                    _ => Some(seeds.start),
                })
                .collect(),
            _ => Vec::new(),
        };
        let seed_count = seeds.end.saturating_sub(seeds.start);
        let total = points.len() as u64 * seed_count;
        let mut folds: Vec<BatchStatsFold> = points.iter().map(|_| BatchStatsFold::new()).collect();
        let mut cached: Vec<u64> = vec![0; points.len()];
        let mut executed: Vec<u64> = vec![0; points.len()];

        // Every (point, seed) pair is one index in a single queue drained
        // by the BatchRunner's streaming core: workers steal trials
        // globally (atomic cursor, bounded reorder window) and the
        // collector hands results back here in deterministic (point,
        // seed) order — each outcome is folded and dropped immediately,
        // so memory stays O(reorder window) regardless of sweep size.
        let chunk = seed_count.max(1);
        self.runner
            .try_map_each(
                0..total,
                |idx| -> Result<Trial, StoreError> {
                    let (point, seed) = ((idx / chunk) as usize, seeds.start + idx % chunk);
                    let probe_this = match probed {
                        ProbeSeeds::None => false,
                        ProbeSeeds::All => true,
                        ProbeSeeds::FirstOnly => probe_seed[point] == Some(seed),
                    };
                    self.run_trial(&sims[point], digests[point], seed, probe_this)
                },
                |idx, (outcome, probes, hit)| {
                    let point = (idx / chunk) as usize;
                    if hit {
                        cached[point] += 1;
                    } else {
                        executed[point] += 1;
                    }
                    each(point, &outcome, probes.as_deref());
                    folds[point].push(&outcome);
                },
            )
            .map_err(SweepError::Store)?;

        let points = points
            .into_iter()
            .zip(folds)
            .zip(cached.into_iter().zip(executed))
            .map(|(((label, spec), fold), (cached, executed))| PointStats {
                label,
                spec,
                stats: fold.finish(),
                cached,
                executed,
                stopped_early: false,
                stop: None,
            })
            .collect();
        Ok(SweepReport {
            points,
            seed_start: seeds.start,
            seed_end: seeds.end,
        })
    }

    /// Runs labelled grid points with adaptive trial allocation: seeds are
    /// consumed in lockstep batches of `rule.batch` from `seeds` (the
    /// *effective* range — pass [`SweepSpec::effective_seeds`]), and each
    /// point retires at the first batch boundary where `rule` is satisfied
    /// on its seed-ordered prefix. Points still active when the budget
    /// runs out report [`StopReason::Exhausted`].
    pub fn run_points_adaptive(
        &self,
        points: Vec<(String, ScenarioSpec)>,
        seeds: Range<u64>,
        rule: &StoppingRule,
    ) -> Result<SweepReport, SweepError> {
        self.run_points_adaptive_inner(points, seeds, rule, ProbeSeeds::None, |_, _, _| {})
    }

    /// Like [`run_points_adaptive`](Self::run_points_adaptive),
    /// additionally invoking `each` for every outcome — exactly once, in
    /// the deterministic adaptive order: batch-major, then point index,
    /// then seed (the fixed-count point-major order, re-chunked by batch).
    pub fn run_points_adaptive_each<F>(
        &self,
        points: Vec<(String, ScenarioSpec)>,
        seeds: Range<u64>,
        rule: &StoppingRule,
        mut each: F,
    ) -> Result<SweepReport, SweepError>
    where
        F: FnMut(usize, &SyncOutcome),
    {
        self.run_points_adaptive_inner(
            points,
            seeds,
            rule,
            ProbeSeeds::None,
            |point, outcome, _| each(point, outcome),
        )
    }

    /// The adaptive counterpart of
    /// [`run_points_probed_first_each`](Self::run_points_probed_first_each):
    /// each point's first executed seed runs with its declared probes
    /// attached. A point that stops before reaching its sampled seed
    /// reports no probe output (consistent with the fixed path's cached
    /// caveat: probes observe live executions only).
    pub fn run_points_adaptive_probed_first_each<F>(
        &self,
        points: Vec<(String, ScenarioSpec)>,
        seeds: Range<u64>,
        rule: &StoppingRule,
        each: F,
    ) -> Result<SweepReport, SweepError>
    where
        F: FnMut(usize, &SyncOutcome, Option<&[ProbeOutput]>),
    {
        self.run_points_adaptive_inner(points, seeds, rule, ProbeSeeds::FirstOnly, each)
    }

    fn run_points_adaptive_inner<F>(
        &self,
        points: Vec<(String, ScenarioSpec)>,
        seeds: Range<u64>,
        rule: &StoppingRule,
        probed: ProbeSeeds,
        mut each: F,
    ) -> Result<SweepReport, SweepError>
    where
        F: FnMut(usize, &SyncOutcome, Option<&[ProbeOutput]>),
    {
        rule.validate()?;
        let sims: Vec<Sim> = points
            .iter()
            .map(|(_, spec)| Sim::from_spec(spec))
            .collect::<Result<_, SpecError>>()?;
        let digests: Vec<u64> = sims.iter().map(Sim::digest).collect();
        let probe_seed: Vec<Option<u64>> = match probed {
            ProbeSeeds::FirstOnly => digests
                .iter()
                .map(|&digest| match (&self.store, self.reuse) {
                    (Some(store), true) => seeds.clone().find(|&s| !store.contains(digest, s)),
                    _ => Some(seeds.start),
                })
                .collect(),
            _ => Vec::new(),
        };
        let mut folds: Vec<BatchStatsFold> = points.iter().map(|_| BatchStatsFold::new()).collect();
        let mut cached: Vec<u64> = vec![0; points.len()];
        let mut executed: Vec<u64> = vec![0; points.len()];
        let mut stopped: Vec<Option<StopReason>> = vec![None; points.len()];

        // Lockstep batches: every still-active point advances through the
        // same seed window [next, batch_end), then the rule is evaluated
        // at the boundary on each point's seed-ordered prefix. Within a
        // batch, (active point, seed) pairs form one work-stealing queue
        // exactly like the fixed path — the collector re-orders outcomes
        // into (point, seed) order, so folds (and therefore decisions) are
        // independent of worker count and scheduling.
        let mut next = seeds.start;
        while next < seeds.end {
            let active: Vec<usize> = (0..points.len())
                .filter(|&p| stopped[p].is_none())
                .collect();
            if active.is_empty() {
                break;
            }
            let batch_end = seeds.end.min(next + rule.batch);
            let span = batch_end - next;
            let total = active.len() as u64 * span;
            self.runner
                .try_map_each(
                    0..total,
                    |idx| -> Result<Trial, StoreError> {
                        let point = active[(idx / span) as usize];
                        let seed = next + idx % span;
                        let probe_this = match probed {
                            ProbeSeeds::None => false,
                            ProbeSeeds::All => true,
                            ProbeSeeds::FirstOnly => probe_seed[point] == Some(seed),
                        };
                        self.run_trial(&sims[point], digests[point], seed, probe_this)
                    },
                    |idx, (outcome, probes, hit)| {
                        let point = active[(idx / span) as usize];
                        if hit {
                            cached[point] += 1;
                        } else {
                            executed[point] += 1;
                        }
                        each(point, &outcome, probes.as_deref());
                        folds[point].push(&outcome);
                    },
                )
                .map_err(SweepError::Store)?;
            let stats: Vec<BatchStats> = folds.iter().map(BatchStatsFold::finish).collect();
            rule.decide_batch(&stats, &mut stopped, batch_end - seeds.start);
            next = batch_end;
        }

        let budget = seeds.end - seeds.start;
        let points = points
            .into_iter()
            .zip(folds)
            .zip(cached.into_iter().zip(executed))
            .zip(stopped)
            .map(
                |((((label, spec), fold), (cached, executed)), stop)| PointStats {
                    label,
                    spec,
                    stats: fold.finish(),
                    stopped_early: cached + executed < budget,
                    stop: Some(stop.unwrap_or(StopReason::Exhausted)),
                    cached,
                    executed,
                },
            )
            .collect();
        Ok(SweepReport {
            points,
            seed_start: seeds.start,
            seed_end: seeds.end,
        })
    }

    /// One trial: serve from the attached store if possible (reuse mode),
    /// otherwise execute the engine (with probes when asked) and persist.
    /// The returned flag is `true` for a cache hit. Shared by the fixed
    /// and adaptive paths so both produce identical outcome streams and
    /// store contents for the trials they run.
    fn run_trial(
        &self,
        sim: &Sim,
        digest: u64,
        seed: u64,
        probe_this: bool,
    ) -> Result<Trial, StoreError> {
        if self.reuse {
            if let Some(store) = &self.store {
                if let Some(hit) = store.get(digest, seed) {
                    return Ok((hit, None, true));
                }
            }
        }
        let (outcome, probes) = if probe_this && sim.has_probes() {
            let probed_outcome = sim.run_probed(seed);
            (probed_outcome.outcome, probed_outcome.probes)
        } else {
            (sim.run_one(seed), None)
        };
        if let Some(store) = &self.store {
            store.put(digest, seed, &outcome)?;
        }
        Ok((outcome, probes, false))
    }
}

/// The unit of work both sweep paths stream through the worker pool: an
/// outcome, its probe outputs (live probed executions only), and whether
/// it was served from the result store.
type Trial = (SyncOutcome, Option<Vec<ProbeOutput>>, bool);

/// Estimates the probability that a scenario's completion round reaches
/// the last threshold of `config.levels` — a rare-event tail probability —
/// by multilevel importance splitting over deterministic seed streams (see
/// [`wsync_stats::splitting`]). A trial that never synchronizes counts as
/// infinitely severe (it sits above every threshold).
///
/// The engine replays a whole execution from a single seed, so a child
/// path cannot literally branch mid-trajectory: each [`SplitPath`] is
/// replayed from its derived seed ([`SplitPath::seed`]), which degrades
/// multilevel splitting to deterministic stratified restarts — unbiased
/// per level factor, with reduced (not zero) variance benefit. The
/// estimate is still a pure function of `(spec, config)`: same inputs,
/// bit-identical result, on any machine.
///
/// [`SplitPath`]: wsync_stats::SplitPath
/// [`SplitPath::seed`]: wsync_stats::SplitPath::seed
pub fn estimate_rare_event(
    spec: &ScenarioSpec,
    config: &SplittingConfig,
) -> Result<SplittingEstimate, SpecError> {
    let sim = Sim::from_spec(spec)?;
    Ok(splitting_estimate(config, |path| {
        match sim.run_one(path.seed()).completion_round() {
            Some(round) => round as f64,
            None => f64::INFINITY,
        }
    }))
}

/// Renders the sync-time quantile table of a seed-ordered outcome slice:
/// one row for the worst per-node rounds-to-sync, one for the global
/// completion round, with the standard quantile columns. Shared by the
/// statistical golden tests and the wrapper-equivalence tests so both pin
/// the same rendering.
pub fn sync_time_quantile_table(title: &str, outcomes: &[SyncOutcome]) -> Table {
    const PROBS: [f64; 6] = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0];
    let mut table = Table::new(
        title,
        &["metric", "trials", "q0", "q25", "q50", "q75", "q90", "q100"],
    );
    let rows: [(&str, Vec<f64>); 2] = [
        (
            "rounds to sync",
            outcomes
                .iter()
                .filter_map(|o| o.max_rounds_to_sync().map(|r| r as f64))
                .collect(),
        ),
        (
            "completion round",
            outcomes
                .iter()
                .filter_map(|o| o.completion_round().map(|r| r as f64))
                .collect(),
        ),
    ];
    for (metric, samples) in rows {
        let qs = quantiles(&samples, &PROBS);
        let mut cells = vec![metric.to_string(), samples.len().to_string()];
        cells.extend(qs.iter().map(|&q| fmt_f64(q)));
        table.push_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sweep() -> SweepSpec {
        let base = ScenarioSpec::new("trapdoor", 6, 8, 1).with_adversary("random");
        SweepSpec::new(base, 0..5).with_axis("disruption_bound", vec![1u64.into(), 3u64.into()])
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wsync-sweep-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sweep_runner_matches_per_point_run_stats() {
        let sweep = sweep();
        let report = SweepRunner::with_runner(BatchRunner::with_workers(4))
            .run(&sweep)
            .unwrap();
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.seeds(), 0..5);
        assert_eq!(report.executed_trials(), 10);
        assert_eq!(report.cached_trials(), 0);
        for (point, (label, sim)) in report.points.iter().zip(Sim::from_sweep(&sweep).unwrap()) {
            assert_eq!(point.label, label);
            assert_eq!(point.stats, sim.run_stats(&BatchRunner::serial()));
        }
    }

    #[test]
    fn parallel_and_serial_sweeps_agree_bit_for_bit() {
        let sweep = sweep();
        let serial = SweepRunner::with_runner(BatchRunner::serial())
            .run(&sweep)
            .unwrap();
        let parallel = SweepRunner::with_runner(BatchRunner::with_workers(8))
            .run(&sweep)
            .unwrap();
        for (a, b) in serial.points.iter().zip(&parallel.points) {
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn each_callback_sees_every_outcome_in_order() {
        let sweep = sweep();
        let points: Vec<(String, ScenarioSpec)> = sweep
            .expand()
            .unwrap()
            .into_iter()
            .map(|p| (p.label, p.spec))
            .collect();
        let mut seen: Vec<(usize, u64)> = Vec::new();
        SweepRunner::with_runner(BatchRunner::with_workers(4))
            .run_points_each(points, 0..5, |point, outcome| {
                seen.push((point, outcome.seed));
            })
            .unwrap();
        let expected: Vec<(usize, u64)> = (0..2usize)
            .flat_map(|p| (0..5u64).map(move |s| (p, s)))
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn resumed_sweep_executes_nothing_and_reproduces_aggregates() {
        let dir = temp_dir("resume");
        let sweep = sweep();
        let fresh = SweepRunner::new().run(&sweep).unwrap();
        let store = Arc::new(ResultStore::open(&dir).unwrap());
        let recorded = SweepRunner::new()
            .store(Arc::clone(&store))
            .run(&sweep)
            .unwrap();
        assert_eq!(recorded.executed_trials(), 10);
        // reopen: everything is served from the store, aggregates identical
        let store = Arc::new(ResultStore::open(&dir).unwrap());
        assert_eq!(store.loaded_records(), 10);
        let resumed = SweepRunner::new().store(store).run(&sweep).unwrap();
        assert_eq!(resumed.executed_trials(), 0);
        assert_eq!(resumed.cached_trials(), 10);
        for ((a, b), c) in fresh
            .points
            .iter()
            .zip(&recorded.points)
            .zip(&resumed.points)
        {
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.stats, c.stats);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_only_mode_ignores_existing_records() {
        let dir = temp_dir("record-only");
        let sweep = sweep();
        let store = Arc::new(ResultStore::open(&dir).unwrap());
        SweepRunner::new()
            .store(Arc::clone(&store))
            .run(&sweep)
            .unwrap();
        let again = SweepRunner::new().record_only(store).run(&sweep).unwrap();
        assert_eq!(again.cached_trials(), 0);
        assert_eq!(again.executed_trials(), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn rate_stats(synced: u64, trials: u64) -> BatchStats {
        BatchStats {
            trials,
            synced,
            single_leader: 0,
            clean: 0,
            total_violations: 0,
            all_hold: 0,
            rounds_to_sync: wsync_stats::Summary::from_slice(&[]),
            completion_rounds: wsync_stats::Summary::from_slice(&[]),
        }
    }

    #[test]
    fn stopping_rule_round_trips_through_json() {
        let full = StoppingRule::new(StopMetric::SyncRoundsMean, 2.0)
            .with_ci_level(0.99)
            .relative()
            .with_min_seeds(32)
            .with_max_seeds(4096)
            .with_batch(16)
            .with_dominance();
        let minimal = StoppingRule::new(StopMetric::CleanRate, 0.05);
        for rule in [full, minimal] {
            let decoded = StoppingRule::from_value(&rule.to_value()).unwrap();
            assert_eq!(decoded, rule);
        }
        // the ISSUE-style spec syntax decodes with defaults filled in
        let sweep = SweepSpec::from_json(
            r#"{"base": {"protocol": "trapdoor", "num_nodes": 6, "num_frequencies": 8,
                         "disruption_bound": 1, "adversary": "random"},
                "seeds": {"start": 0, "end": 256},
                "stop": {"metric": "sync_rounds_mean", "ci_level": 0.95, "half_width": 2.0,
                         "min_seeds": 64, "max_seeds": 65536, "batch": 64}}"#,
        )
        .unwrap();
        let rule = sweep.stop.as_ref().unwrap();
        assert_eq!(rule.metric, StopMetric::SyncRoundsMean);
        assert!(!rule.relative && !rule.dominance);
        assert_eq!(sweep.effective_seeds().unwrap(), 0..65536);
        // and the sweep's own JSON round-trips byte for byte
        let json = sweep.to_json();
        assert_eq!(SweepSpec::from_json(&json).unwrap().to_json(), json);
    }

    #[test]
    fn stopping_rule_rejects_bad_specs() {
        for (json, needle) in [
            (
                r#"{"metric": "typo_metric", "half_width": 1.0}"#,
                "unknown metric",
            ),
            (r#"{"metric": "sync_rate"}"#, "half_width"),
            (
                r#"{"metric": "sync_rate", "half_width": 0.1, "batc": 4}"#,
                "unknown key",
            ),
            (r#"[1, 2]"#, "expected an object"),
        ] {
            let err = StoppingRule::from_value(&crate::json::parse(json).unwrap())
                .expect_err(json)
                .to_string();
            assert!(err.contains(needle), "{json}: {err}");
        }
        // range validation (applied by SweepSpec decoding and every entry point)
        for rule in [
            StoppingRule::new(StopMetric::SyncRate, 0.0),
            StoppingRule::new(StopMetric::SyncRate, f64::NAN),
            StoppingRule::new(StopMetric::SyncRate, 0.1).with_ci_level(0.4),
            StoppingRule::new(StopMetric::SyncRate, 0.1).with_min_seeds(0),
            StoppingRule::new(StopMetric::SyncRate, 0.1).with_batch(0),
            StoppingRule::new(StopMetric::SyncRate, 0.1)
                .with_min_seeds(8)
                .with_max_seeds(4),
        ] {
            assert!(rule.validate().is_err(), "{rule:?} should not validate");
        }
    }

    #[test]
    fn width_undefined_means_keep_sampling() {
        let rule = StoppingRule::new(StopMetric::SyncRate, 0.5);
        assert!(!rule.satisfied(&rate_stats(0, 0)));
        // one synced trial: rounds_to_sync has a single sample — the mean
        // rule must keep sampling, not read the degenerate width as done
        let sweep = sweep();
        let sim = Sim::from_sweep(&sweep).unwrap().remove(0).1;
        let stats = BatchStats::aggregate(&[sim.run_one(0)]);
        assert!(!StoppingRule::new(StopMetric::SyncRoundsMean, 1e6).satisfied(&stats));
    }

    #[test]
    fn decide_batch_gates_on_min_seeds_and_marks_dominated_points() {
        let rule = StoppingRule::new(StopMetric::SyncRate, 1e-9)
            .with_min_seeds(50)
            .with_dominance();
        let stats = vec![rate_stats(95, 100), rate_stats(5, 100)];
        let mut stopped = vec![None, None];
        // below min_seeds: no verdicts at all
        rule.decide_batch(&stats, &mut stopped, 49);
        assert_eq!(stopped, vec![None, None]);
        // at min_seeds: the far-worse point is dominated, the incumbent runs on
        rule.decide_batch(&stats, &mut stopped, 100);
        assert_eq!(stopped, vec![None, Some(StopReason::Dominated)]);
    }

    #[test]
    fn adaptive_sweep_stops_early_and_matches_fixed_prefix() {
        let base = sweep();
        // sync_rate converges fast on this grid (every trial syncs): a
        // loose width stops both points at the first eligible boundary.
        let rule = StoppingRule::new(StopMetric::SyncRate, 0.3)
            .with_min_seeds(6)
            .with_batch(2)
            .with_max_seeds(40);
        let adaptive = SweepRunner::with_runner(BatchRunner::with_workers(4))
            .run(&base.clone().with_stop(rule))
            .unwrap();
        assert_eq!(adaptive.seeds(), 0..40);
        for point in &adaptive.points {
            // stopped at the first boundary past min_seeds, not at 2 or 4
            assert_eq!(point.seeds_used(), 6);
            assert!(point.stopped_early);
            assert_eq!(point.stop, Some(StopReason::HalfWidth));
            assert!(point.stats.trials == 6);
        }
        // the adaptive prefix aggregates are bit-identical to a fixed
        // sweep over the same seeds
        let fixed = SweepRunner::new()
            .run(&SweepSpec {
                seed_end: 6,
                ..sweep()
            })
            .unwrap();
        for (a, f) in adaptive.points.iter().zip(&fixed.points) {
            assert_eq!(a.stats, f.stats);
        }
    }

    #[test]
    fn adaptive_sweep_exhausts_budget_when_rule_never_satisfied() {
        let rule = StoppingRule::new(StopMetric::SyncRoundsMean, 1e-12)
            .with_min_seeds(2)
            .with_batch(3);
        let report = SweepRunner::new().run(&sweep().with_stop(rule)).unwrap();
        for point in &report.points {
            assert_eq!(point.seeds_used(), 5);
            assert!(!point.stopped_early);
            assert_eq!(point.stop, Some(StopReason::Exhausted));
        }
        assert_eq!(report.stopped_early_points(), 0);
    }

    #[test]
    fn adaptive_decisions_are_identical_across_worker_counts() {
        let spec = sweep().with_stop(
            StoppingRule::new(StopMetric::SyncRoundsMean, 0.5)
                .with_min_seeds(2)
                .with_batch(2)
                .with_max_seeds(64),
        );
        let reference = SweepRunner::with_runner(BatchRunner::serial())
            .run(&spec)
            .unwrap();
        for workers in [1, 2, 8] {
            let report = SweepRunner::with_runner(BatchRunner::with_workers(workers))
                .run(&spec)
                .unwrap();
            for (a, b) in reference.points.iter().zip(&report.points) {
                assert_eq!(a.stats, b.stats);
                assert_eq!(a.stop, b.stop);
                assert_eq!(a.executed, b.executed);
                assert_eq!(a.stopped_early, b.stopped_early);
            }
        }
    }

    #[test]
    fn adaptive_resume_reproduces_fresh_decisions_from_cache() {
        let dir = temp_dir("adaptive-resume");
        let spec = sweep().with_stop(
            StoppingRule::new(StopMetric::SyncRate, 0.3)
                .with_min_seeds(4)
                .with_batch(4)
                .with_max_seeds(32),
        );
        let fresh = SweepRunner::new().run(&spec).unwrap();
        let store = Arc::new(ResultStore::open(&dir).unwrap());
        let recorded = SweepRunner::new()
            .store(Arc::clone(&store))
            .run(&spec)
            .unwrap();
        let store = Arc::new(ResultStore::open(&dir).unwrap());
        let resumed = SweepRunner::new().store(store).run(&spec).unwrap();
        assert_eq!(resumed.executed_trials(), 0);
        assert_eq!(resumed.cached_trials(), fresh.total_trials());
        for ((a, b), c) in fresh
            .points
            .iter()
            .zip(&recorded.points)
            .zip(&resumed.points)
        {
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.stats, c.stats);
            assert_eq!(a.stop, c.stop);
            assert_eq!(a.stopped_early, c.stopped_early);
            assert_eq!(a.seeds_used(), c.seeds_used());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adaptive_each_sees_outcomes_in_batch_major_order() {
        let points: Vec<(String, ScenarioSpec)> = sweep()
            .expand()
            .unwrap()
            .into_iter()
            .map(|p| (p.label, p.spec))
            .collect();
        let rule = StoppingRule::new(StopMetric::SyncRoundsMean, 1e-12)
            .with_min_seeds(2)
            .with_batch(2);
        let mut seen: Vec<(usize, u64)> = Vec::new();
        SweepRunner::with_runner(BatchRunner::with_workers(4))
            .run_points_adaptive_each(points, 0..4, &rule, |point, outcome| {
                seen.push((point, outcome.seed));
            })
            .unwrap();
        // batch [0, 2) point-major, then batch [2, 4) point-major
        let expected = vec![
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
        ];
        assert_eq!(seen, expected);
    }

    #[test]
    fn rare_event_estimate_is_deterministic_and_bounded() {
        let spec = ScenarioSpec::new("trapdoor", 6, 8, 1).with_adversary("random");
        let config = SplittingConfig {
            levels: vec![10.0, 20.0],
            base_trials: 64,
            splits: 4,
            max_population: 128,
            seed_start: 0,
        };
        let a = estimate_rare_event(&spec, &config).unwrap();
        let b = estimate_rare_event(&spec, &config).unwrap();
        assert_eq!(a, b);
        assert!(a.probability >= 0.0 && a.probability <= 1.0);
        assert!(a.total_runs >= 64);
    }

    #[test]
    fn quantile_table_has_stable_shape() {
        let sim = Sim::from_spec(&ScenarioSpec::new("trapdoor", 6, 8, 1).with_adversary("random"))
            .unwrap();
        let outcomes: Vec<SyncOutcome> = (0..4).map(|s| sim.run_one(s)).collect();
        let table = sync_time_quantile_table("demo", &outcomes);
        assert_eq!(table.len(), 2);
        assert_eq!(table.rows()[0][0], "rounds to sync");
        assert_eq!(table.rows()[1][0], "completion round");
    }
}
