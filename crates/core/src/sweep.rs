//! Resumable sweep orchestration: whole experiment grids as one
//! work-stealing batch, with streaming aggregation and an optional
//! persistent result cache.
//!
//! A [`SweepSpec`] expands into grid points × seeds — potentially far more
//! trials than fit comfortably in memory as raw outcomes, and far too
//! expensive to recompute when a long run is interrupted. [`SweepRunner`]
//! addresses both:
//!
//! * **Work stealing across the whole grid.** All `(grid point, seed)`
//!   pairs form one global index space that the
//!   [`BatchRunner`]'s worker pool drains through an atomic cursor, so a
//!   grid point with slow trials cannot leave cores idle while a cheap
//!   point finishes — unlike running the points one `run_stats` call at a
//!   time.
//! * **Streaming folds.** A collector re-orders finished trials back into
//!   deterministic (point-major, seed-ascending) order and folds each one
//!   into a [`BatchStatsFold`] the moment it arrives, then drops it.
//!   Workers stall once they run more than
//!   [`REORDER_WINDOW`](crate::batch::REORDER_WINDOW) trials ahead of the
//!   fold cursor, so aggregates hold `O(window)` outcomes regardless of
//!   sweep size, yet are bit-identical to a serial loop (see
//!   [`BatchStatsFold`]).
//! * **Content-addressed resume.** With a [`ResultStore`] attached, every
//!   completed trial is persisted under `(spec digest, seed)` and already
//!   stored trials are served from the cache without touching the engine —
//!   a killed sweep restarted against the same store re-runs only what is
//!   missing and reproduces the from-scratch aggregates bit for bit.

use std::ops::Range;
use std::sync::Arc;

use wsync_stats::{quantiles, table::fmt_f64, Table};

use crate::batch::{BatchRunner, BatchStats, BatchStatsFold};
use crate::registry::ProbeOutput;
use crate::report::SyncOutcome;
use crate::sim::Sim;
use crate::spec::{ScenarioSpec, SpecError, SweepSpec};
use crate::store::{ResultStore, StoreError};

/// An error raised while orchestrating a sweep: either the spec side
/// (invalid grid, unknown names) or the persistence side (store I/O).
#[derive(Debug)]
pub enum SweepError {
    /// Spec expansion or validation failed.
    Spec(SpecError),
    /// Reading from or appending to the result store failed.
    Store(StoreError),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Spec(e) => write!(f, "{e}"),
            SweepError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Spec(e) => Some(e),
            SweepError::Store(e) => Some(e),
        }
    }
}

impl From<SpecError> for SweepError {
    fn from(e: SpecError) -> Self {
        SweepError::Spec(e)
    }
}

impl From<StoreError> for SweepError {
    fn from(e: StoreError) -> Self {
        SweepError::Store(e)
    }
}

/// Aggregate result of one grid point.
#[derive(Debug, Clone)]
pub struct PointStats {
    /// The point's `"field=value"` label (empty for a gridless sweep).
    pub label: String,
    /// The fully substituted spec the point ran.
    pub spec: ScenarioSpec,
    /// The aggregate statistics, bit-identical to a serial
    /// [`BatchStats::aggregate`] over the point's seed-ordered outcomes.
    pub stats: BatchStats,
    /// Trials served from the result store without executing the engine.
    pub cached: u64,
    /// Trials executed by the engine in this run.
    pub executed: u64,
}

/// The result of a whole sweep: per-point aggregates plus cache totals.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One entry per grid point, in expansion order.
    pub points: Vec<PointStats>,
    /// First seed (inclusive).
    pub seed_start: u64,
    /// Last seed (exclusive).
    pub seed_end: u64,
}

impl SweepReport {
    /// The seed range every point ran.
    pub fn seeds(&self) -> Range<u64> {
        self.seed_start..self.seed_end
    }

    /// Total trials served from the result store across all points.
    pub fn cached_trials(&self) -> u64 {
        self.points.iter().map(|p| p.cached).sum()
    }

    /// Total trials executed by the engine across all points.
    pub fn executed_trials(&self) -> u64 {
        self.points.iter().map(|p| p.executed).sum()
    }

    /// Total trials (cached + executed).
    pub fn total_trials(&self) -> u64 {
        self.cached_trials() + self.executed_trials()
    }
}

/// Which trials of a sweep run with their spec's declared probes
/// attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeSeeds {
    /// No trial is probed.
    None,
    /// Every executed trial is probed.
    All,
    /// Only each point's first seed is probed.
    FirstOnly,
}

/// Streams sweep grids through a [`BatchRunner`] worker pool with optional
/// content-addressed persistence. See the module docs for the execution
/// model.
#[derive(Debug, Clone, Default)]
pub struct SweepRunner {
    runner: BatchRunner,
    store: Option<Arc<ResultStore>>,
    reuse: bool,
}

impl SweepRunner {
    /// A runner on the default worker pool, with no store.
    pub fn new() -> Self {
        SweepRunner {
            runner: BatchRunner::new(),
            store: None,
            reuse: false,
        }
    }

    /// A runner on an explicit worker pool.
    pub fn with_runner(runner: BatchRunner) -> Self {
        SweepRunner {
            runner,
            store: None,
            reuse: false,
        }
    }

    /// Attaches a result store: completed trials are persisted, and
    /// already-stored trials are served from the cache without executing
    /// the engine (the `--resume` behaviour).
    pub fn store(mut self, store: Arc<ResultStore>) -> Self {
        self.store = Some(store);
        self.reuse = true;
        self
    }

    /// Attaches a result store in record-only mode: completed trials are
    /// persisted but existing records are *not* reused — every trial
    /// executes (a fresh `--out` run that still leaves a resumable store
    /// behind).
    pub fn record_only(mut self, store: Arc<ResultStore>) -> Self {
        self.store = Some(store);
        self.reuse = false;
        self
    }

    /// Expands `sweep` and runs every (grid point × seed) trial.
    pub fn run(&self, sweep: &SweepSpec) -> Result<SweepReport, SweepError> {
        let seeds = sweep.seeds()?;
        let points = sweep
            .expand()?
            .into_iter()
            .map(|point| (point.label, point.spec))
            .collect();
        self.run_points(points, seeds)
    }

    /// Runs an explicit list of labelled grid points over a seed range.
    /// This is the form the experiment modules use for grids that are not
    /// an axis cross product (paired parameters, per-point protocols).
    pub fn run_points(
        &self,
        points: Vec<(String, ScenarioSpec)>,
        seeds: Range<u64>,
    ) -> Result<SweepReport, SweepError> {
        self.run_points_each(points, seeds, |_, _| {})
    }

    /// Like [`run_points`](Self::run_points), additionally invoking `each`
    /// for every outcome — in deterministic (point index, seed) order,
    /// exactly once, before the outcome is dropped. Use this for bespoke
    /// folds that need more than [`BatchStats`] without collecting
    /// outcomes. Declared probes are not run on this path; use
    /// [`run_points_probed_each`](Self::run_points_probed_each) to carry
    /// their outputs.
    pub fn run_points_each<F>(
        &self,
        points: Vec<(String, ScenarioSpec)>,
        seeds: Range<u64>,
        mut each: F,
    ) -> Result<SweepReport, SweepError>
    where
        F: FnMut(usize, &SyncOutcome),
    {
        self.run_points_inner(points, seeds, ProbeSeeds::None, |point, outcome, _| {
            each(point, outcome)
        })
    }

    /// Like [`run_points_each`](Self::run_points_each), but every executed
    /// trial runs with its spec's declared probes attached; `each`
    /// additionally receives the probes' finalized outputs. Trials served
    /// from an attached store skip the engine — and therefore the probes —
    /// and are reported with `None` (the outcome stream itself is
    /// bit-identical either way).
    pub fn run_points_probed_each<F>(
        &self,
        points: Vec<(String, ScenarioSpec)>,
        seeds: Range<u64>,
        each: F,
    ) -> Result<SweepReport, SweepError>
    where
        F: FnMut(usize, &SyncOutcome, Option<&[ProbeOutput]>),
    {
        self.run_points_inner(points, seeds, ProbeSeeds::All, each)
    }

    /// Like [`run_points_probed_each`](Self::run_points_probed_each), but
    /// only each point's first *executed* seed runs with probes attached —
    /// the cheap sampling mode for reports that show one probe output per
    /// point (the `--spec` probe table): the remaining trials skip the
    /// probe overhead entirely, and the outcome stream stays identical.
    /// With a resume store attached, the sampled seed is the first one not
    /// already cached (probes observe live executions), so a partially
    /// resumed sweep still reports probe output as long as anything
    /// executes. Caveat: two points whose specs canonicalize to the same
    /// store digest (identical cells, or cells differing only in probes)
    /// share cache entries, so with a store attached one such point's
    /// freshly persisted trial can serve the other's sampled seed from
    /// cache and cost it its probe sample — give duplicate points distinct
    /// parameters if each must report probe output.
    pub fn run_points_probed_first_each<F>(
        &self,
        points: Vec<(String, ScenarioSpec)>,
        seeds: Range<u64>,
        each: F,
    ) -> Result<SweepReport, SweepError>
    where
        F: FnMut(usize, &SyncOutcome, Option<&[ProbeOutput]>),
    {
        self.run_points_inner(points, seeds, ProbeSeeds::FirstOnly, each)
    }

    fn run_points_inner<F>(
        &self,
        points: Vec<(String, ScenarioSpec)>,
        seeds: Range<u64>,
        probed: ProbeSeeds,
        mut each: F,
    ) -> Result<SweepReport, SweepError>
    where
        F: FnMut(usize, &SyncOutcome, Option<&[ProbeOutput]>),
    {
        let sims: Vec<Sim> = points
            .iter()
            .map(|(_, spec)| Sim::from_spec(spec))
            .collect::<Result<_, SpecError>>()?;
        // Each Sim already computed its canonical spec digest at build time.
        let digests: Vec<u64> = sims.iter().map(Sim::digest).collect();
        // For first-only sampling, pick each point's probe seed up front:
        // the first seed the store cannot serve (cache hits skip the
        // engine, and probes observe live executions only). The scan sees
        // the store as it was before the run; a point sharing its digest
        // with another point can still lose its sample to the other's
        // mid-run put (see run_points_probed_first_each docs).
        let probe_seed: Vec<Option<u64>> = match probed {
            ProbeSeeds::FirstOnly => digests
                .iter()
                .map(|&digest| match (&self.store, self.reuse) {
                    (Some(store), true) => seeds.clone().find(|&s| !store.contains(digest, s)),
                    _ => Some(seeds.start),
                })
                .collect(),
            _ => Vec::new(),
        };
        let seed_count = seeds.end.saturating_sub(seeds.start);
        let total = points.len() as u64 * seed_count;
        let mut folds: Vec<BatchStatsFold> = points.iter().map(|_| BatchStatsFold::new()).collect();
        let mut cached: Vec<u64> = vec![0; points.len()];
        let mut executed: Vec<u64> = vec![0; points.len()];

        // Every (point, seed) pair is one index in a single queue drained
        // by the BatchRunner's streaming core: workers steal trials
        // globally (atomic cursor, bounded reorder window) and the
        // collector hands results back here in deterministic (point,
        // seed) order — each outcome is folded and dropped immediately,
        // so memory stays O(reorder window) regardless of sweep size.
        type Trial = (SyncOutcome, Option<Vec<ProbeOutput>>, bool);
        let chunk = seed_count.max(1);
        self.runner
            .try_map_each(
                0..total,
                |idx| -> Result<Trial, StoreError> {
                    let (point, seed) = ((idx / chunk) as usize, seeds.start + idx % chunk);
                    if self.reuse {
                        if let Some(store) = &self.store {
                            if let Some(hit) = store.get(digests[point], seed) {
                                return Ok((hit, None, true));
                            }
                        }
                    }
                    let probe_this = match probed {
                        ProbeSeeds::None => false,
                        ProbeSeeds::All => true,
                        ProbeSeeds::FirstOnly => probe_seed[point] == Some(seed),
                    };
                    let (outcome, probes) = if probe_this && sims[point].has_probes() {
                        let probed_outcome = sims[point].run_probed(seed);
                        (probed_outcome.outcome, probed_outcome.probes)
                    } else {
                        (sims[point].run_one(seed), None)
                    };
                    if let Some(store) = &self.store {
                        store.put(digests[point], seed, &outcome)?;
                    }
                    Ok((outcome, probes, false))
                },
                |idx, (outcome, probes, hit)| {
                    let point = (idx / chunk) as usize;
                    if hit {
                        cached[point] += 1;
                    } else {
                        executed[point] += 1;
                    }
                    each(point, &outcome, probes.as_deref());
                    folds[point].push(&outcome);
                },
            )
            .map_err(SweepError::Store)?;

        let points = points
            .into_iter()
            .zip(folds)
            .zip(cached.into_iter().zip(executed))
            .map(|(((label, spec), fold), (cached, executed))| PointStats {
                label,
                spec,
                stats: fold.finish(),
                cached,
                executed,
            })
            .collect();
        Ok(SweepReport {
            points,
            seed_start: seeds.start,
            seed_end: seeds.end,
        })
    }
}

/// Renders the sync-time quantile table of a seed-ordered outcome slice:
/// one row for the worst per-node rounds-to-sync, one for the global
/// completion round, with the standard quantile columns. Shared by the
/// statistical golden tests and the wrapper-equivalence tests so both pin
/// the same rendering.
pub fn sync_time_quantile_table(title: &str, outcomes: &[SyncOutcome]) -> Table {
    const PROBS: [f64; 6] = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0];
    let mut table = Table::new(
        title,
        &["metric", "trials", "q0", "q25", "q50", "q75", "q90", "q100"],
    );
    let rows: [(&str, Vec<f64>); 2] = [
        (
            "rounds to sync",
            outcomes
                .iter()
                .filter_map(|o| o.max_rounds_to_sync().map(|r| r as f64))
                .collect(),
        ),
        (
            "completion round",
            outcomes
                .iter()
                .filter_map(|o| o.completion_round().map(|r| r as f64))
                .collect(),
        ),
    ];
    for (metric, samples) in rows {
        let qs = quantiles(&samples, &PROBS);
        let mut cells = vec![metric.to_string(), samples.len().to_string()];
        cells.extend(qs.iter().map(|&q| fmt_f64(q)));
        table.push_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sweep() -> SweepSpec {
        let base = ScenarioSpec::new("trapdoor", 6, 8, 1).with_adversary("random");
        SweepSpec::new(base, 0..5).with_axis("disruption_bound", vec![1u64.into(), 3u64.into()])
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wsync-sweep-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sweep_runner_matches_per_point_run_stats() {
        let sweep = sweep();
        let report = SweepRunner::with_runner(BatchRunner::with_workers(4))
            .run(&sweep)
            .unwrap();
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.seeds(), 0..5);
        assert_eq!(report.executed_trials(), 10);
        assert_eq!(report.cached_trials(), 0);
        for (point, (label, sim)) in report.points.iter().zip(Sim::from_sweep(&sweep).unwrap()) {
            assert_eq!(point.label, label);
            assert_eq!(point.stats, sim.run_stats(&BatchRunner::serial()));
        }
    }

    #[test]
    fn parallel_and_serial_sweeps_agree_bit_for_bit() {
        let sweep = sweep();
        let serial = SweepRunner::with_runner(BatchRunner::serial())
            .run(&sweep)
            .unwrap();
        let parallel = SweepRunner::with_runner(BatchRunner::with_workers(8))
            .run(&sweep)
            .unwrap();
        for (a, b) in serial.points.iter().zip(&parallel.points) {
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn each_callback_sees_every_outcome_in_order() {
        let sweep = sweep();
        let points: Vec<(String, ScenarioSpec)> = sweep
            .expand()
            .unwrap()
            .into_iter()
            .map(|p| (p.label, p.spec))
            .collect();
        let mut seen: Vec<(usize, u64)> = Vec::new();
        SweepRunner::with_runner(BatchRunner::with_workers(4))
            .run_points_each(points, 0..5, |point, outcome| {
                seen.push((point, outcome.seed));
            })
            .unwrap();
        let expected: Vec<(usize, u64)> = (0..2usize)
            .flat_map(|p| (0..5u64).map(move |s| (p, s)))
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn resumed_sweep_executes_nothing_and_reproduces_aggregates() {
        let dir = temp_dir("resume");
        let sweep = sweep();
        let fresh = SweepRunner::new().run(&sweep).unwrap();
        let store = Arc::new(ResultStore::open(&dir).unwrap());
        let recorded = SweepRunner::new()
            .store(Arc::clone(&store))
            .run(&sweep)
            .unwrap();
        assert_eq!(recorded.executed_trials(), 10);
        // reopen: everything is served from the store, aggregates identical
        let store = Arc::new(ResultStore::open(&dir).unwrap());
        assert_eq!(store.loaded_records(), 10);
        let resumed = SweepRunner::new().store(store).run(&sweep).unwrap();
        assert_eq!(resumed.executed_trials(), 0);
        assert_eq!(resumed.cached_trials(), 10);
        for ((a, b), c) in fresh
            .points
            .iter()
            .zip(&recorded.points)
            .zip(&resumed.points)
        {
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.stats, c.stats);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_only_mode_ignores_existing_records() {
        let dir = temp_dir("record-only");
        let sweep = sweep();
        let store = Arc::new(ResultStore::open(&dir).unwrap());
        SweepRunner::new()
            .store(Arc::clone(&store))
            .run(&sweep)
            .unwrap();
        let again = SweepRunner::new().record_only(store).run(&sweep).unwrap();
        assert_eq!(again.cached_trials(), 0);
        assert_eq!(again.executed_trials(), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quantile_table_has_stable_shape() {
        let sim = Sim::from_spec(&ScenarioSpec::new("trapdoor", 6, 8, 1).with_adversary("random"))
            .unwrap();
        let outcomes: Vec<SyncOutcome> = (0..4).map(|s| sim.run_one(s)).collect();
        let table = sync_time_quantile_table("demo", &outcomes);
        assert_eq!(table.len(), 2);
        assert_eq!(table.rows()[0][0], "rounds to sync");
        assert_eq!(table.rows()[1][0], "completion round");
    }
}
