//! A minimal, dependency-free JSON value model.
//!
//! The workspace builds in environments with no crates.io access, so the
//! usual `serde`/`serde_json` pair is vendored as a no-op facade (see
//! `crates/compat/serde`). The declarative scenario layer in
//! [`crate::spec`] still needs *real* serialization — a scenario file must
//! run without recompiling — so this module provides the small JSON core
//! the spec types (de)serialize through: a [`Value`] tree, a strict
//! recursive-descent [`parse`]r with line/column errors, and a
//! pretty-printing writer whose output round-trips bit-for-bit (integers
//! stay integers, floats use Rust's shortest round-trip formatting).
//!
//! When a real `serde_json` becomes available, [`Value`] maps 1:1 onto
//! `serde_json::Value` and the spec layer can swap over without changing
//! its wire format.

use std::fmt;

/// A JSON document.
///
/// Numbers are split into [`Value::Int`] and [`Value::Float`] so that
/// integer fields (seeds, round caps, node counts) survive a round trip
/// exactly instead of passing through `f64`. Object member order is
/// preserved (serialization is deterministic); duplicate keys are a parse
/// error.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction, no exponent).
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (integers coerce losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's members, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Serializes the value as pretty-printed JSON (2-space indentation,
    /// trailing newline-free). The output parses back to an identical
    /// [`Value`] — with one carve-out: JSON cannot represent non-finite
    /// floats, so a programmatically constructed `Float(inf/NaN)` is
    /// written as `null` (the parser itself never produces one; overflow
    /// literals are rejected).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(self, 0, &mut out);
        out
    }

    /// Serializes the value as single-line JSON with no insignificant
    /// whitespace. This is the JSONL form the result store appends: one
    /// record per line, so a reader can recover from a torn final line by
    /// dropping it. Round-trips exactly like [`to_json`](Self::to_json).
    pub fn to_json_compact(&self) -> String {
        let mut out = String::new();
        write_value_compact(self, &mut out);
        out
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<u64> for Value {
    fn from(i: u64) -> Self {
        // Values beyond i64 fall back to Float rather than wrapping to a
        // negative integer — mirroring what the parser does with oversized
        // integer literals.
        match i64::try_from(i) {
            Ok(v) => Value::Int(v),
            Err(_) => Value::Float(i as f64),
        }
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::from(i as u64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

fn write_indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // Rust's Debug formatting is the shortest representation that
        // round-trips; it always contains '.' or 'e', so the reader keeps
        // classifying the literal as a float.
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no Infinity/NaN; encode as null like serde_json does.
        out.push_str("null");
    }
}

fn write_value(value: &Value, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            // Short scalar arrays print on one line (sweep axes read well).
            let scalars = items
                .iter()
                .all(|v| !matches!(v, Value::Array(_) | Value::Object(_)));
            if scalars {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_value(item, depth, out);
                }
                out.push(']');
            } else {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    write_indent(depth + 1, out);
                    write_value(item, depth + 1, out);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                write_indent(depth, out);
                out.push(']');
            }
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, v)) in members.iter().enumerate() {
                write_indent(depth + 1, out);
                write_string(key, out);
                out.push_str(": ");
                write_value(v, depth + 1, out);
                if i + 1 < members.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            write_indent(depth, out);
            out.push('}');
        }
    }
}

fn write_value_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(members) => {
            out.push('{');
            for (i, (key, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value_compact(v, out);
            }
            out.push('}');
        }
    }
}

/// A JSON parse error with a 1-based line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts. Deeper documents are
/// rejected with a parse error instead of risking a stack overflow in the
/// recursive-descent parser (every legitimate spec/store document is a few
/// levels deep).
pub const MAX_NESTING_DEPTH: usize = 128;

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_whitespace();
    let value = p.parse_value()?;
    p.skip_whitespace();
    if p.pos < p.bytes.len() {
        return Err(p.error("unexpected trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        let mut line = 1usize;
        let mut column = 1usize;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        JsonError {
            line,
            column,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(self.error(format!(
                "maximum nesting depth ({MAX_NESTING_DEPTH}) exceeded"
            )));
        }
        Ok(())
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.enter()?;
        let object = self.parse_object_inner();
        self.depth -= 1;
        object
    }

    fn parse_object_inner(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Value)> = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.error(format!("duplicate object key \"{key}\"")));
            }
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.enter()?;
        let array = self.parse_array_inner();
        self.depth -= 1;
        array
    }

    fn parse_array_inner(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                // High surrogate: require a following \uXXXX
                                // low surrogate.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.parse_hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(b) => {
                    // Consume one UTF-8 code point. The input arrived as a
                    // &str, so decoding just the leading sequence (1–4
                    // bytes, length from the lead byte) keeps string
                    // parsing linear instead of re-validating the whole
                    // remaining document per character.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let cp =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape digits"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        let int_digits = self.consume_digits();
        if int_digits == 0 {
            return Err(self.error("expected digits in number"));
        }
        // RFC 8259: the integer part is "0" or a non-zero digit followed by
        // digits — leading zeros are invalid (and serde_json rejects them,
        // so accepting them here would break the documented swap-over).
        if int_digits > 1 && self.bytes[int_start] == b'0' {
            return Err(self.error("leading zeros are not allowed in numbers"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if self.consume_digits() == 0 {
                return Err(self.error("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.consume_digits() == 0 {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        let float = |p: &Self| -> Result<Value, JsonError> {
            let f = text.parse::<f64>().map_err(|_| p.error("invalid number"))?;
            // `f64::from_str` turns overflow literals like 1e999 into
            // infinity; JSON has no representation for that, so reject it
            // (as serde_json does) instead of breaking the round trip.
            if f.is_finite() {
                Ok(Value::Float(f))
            } else {
                Err(p.error("number out of range"))
            }
        };
        if is_float {
            float(self)
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // Integers beyond i64 fall back to f64, like serde_json's
                // arbitrary-precision-off behaviour.
                Err(_) => float(self),
            }
        }
    }

    fn consume_digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("0").unwrap(), Value::Int(0));
        assert_eq!(parse("-0.5").unwrap(), Value::Float(-0.5));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Value::Str("line\nquote\"back\\slash\ttab\u{1F600}".to_string());
        let text = original.to_json();
        assert_eq!(parse(&text).unwrap(), original);
        // explicit escape forms parse too
        assert_eq!(
            parse(r#""A😀""#).unwrap(),
            Value::Str("A\u{1F600}".to_string())
        );
    }

    #[test]
    fn ints_and_floats_stay_distinct_through_round_trip() {
        let v = Value::Object(vec![
            ("i".to_string(), Value::Int(2)),
            ("f".to_string(), Value::Float(2.0)),
            ("big".to_string(), Value::Int(9_007_199_254_740_993)),
        ]);
        let text = v.to_json();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("i"), Some(&Value::Int(2)));
        assert_eq!(back.get("f"), Some(&Value::Float(2.0)));
    }

    #[test]
    fn float_formatting_round_trips_exactly() {
        for f in [0.1, 1.0 / 3.0, 6.02e23, -1.5e-8, 2.0] {
            let text = Value::Float(f).to_json();
            assert_eq!(parse(&text).unwrap(), Value::Float(f), "text was {text}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "01x",
            "{} garbage",
            "{\"a\":1,\"a\":2}",
            // RFC 8259 forbids leading zeros (serde_json rejects them too)
            "01",
            "-007",
            "00.5",
            "{\"n\": 08}",
            // overflow literals would parse to infinity, which JSON cannot
            // round-trip — rejected at the source
            "1e999",
            "-1e999",
            "1.5e400",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse("{\n  \"a\": nope\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn object_preserves_member_order() {
        let v = parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn compact_output_is_single_line_and_round_trips() {
        let v = parse(r#"{"name": "trapdoor", "params": {"c": 2.0}, "xs": [1, 2, 3]}"#).unwrap();
        let compact = v.to_json_compact();
        assert!(!compact.contains('\n'));
        assert!(!compact.contains(": "));
        assert_eq!(parse(&compact).unwrap(), v);
        assert_eq!(
            compact,
            r#"{"name":"trapdoor","params":{"c":2.0},"xs":[1,2,3]}"#
        );
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let deep_array = "[".repeat(100_000);
        let err = parse(&deep_array).unwrap_err();
        assert!(err.message.contains("nesting depth"), "{err}");
        let deep_object = "{\"k\":".repeat(100_000);
        let err = parse(&deep_object).unwrap_err();
        assert!(err.message.contains("nesting depth"), "{err}");
        // documents at or below the limit still parse
        let ok = format!(
            "{}1{}",
            "[".repeat(MAX_NESTING_DEPTH),
            "]".repeat(MAX_NESTING_DEPTH)
        );
        assert!(parse(&ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_NESTING_DEPTH + 1),
            "]".repeat(MAX_NESTING_DEPTH + 1)
        );
        assert!(parse(&too_deep).is_err());
    }

    #[test]
    fn pretty_output_is_stable() {
        let v = parse(r#"{"name": "trapdoor", "params": {"c": 2.0}, "xs": [1, 2, 3]}"#).unwrap();
        let a = v.to_json();
        let b = parse(&a).unwrap().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"xs\": [1, 2, 3]"));
    }
}
