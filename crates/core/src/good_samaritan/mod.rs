//! The Good Samaritan Protocol (Section 7).
//!
//! An optimistic, adaptive variant of the Trapdoor Protocol for oblivious
//! adversaries (and `t ≤ F/2`). Nodes proceed through `lg F` super-epochs.
//! Within a super-epoch `k`, nodes concentrate half of their attention on
//! the low `2^k` frequencies; when at most `t′` frequencies are actually
//! disrupted and all nodes wake together, the protocol elects a leader by
//! the end of super-epoch `lg 2t′` and hence terminates in `O(t′·log³N)`
//! rounds. Unlike the Trapdoor Protocol, a contender receiving another
//! contender's message is not knocked out but *downgraded* to a *good
//! samaritan*, whose job is to acknowledge the remaining contender's
//! broadcasts so the contender can tell that it has won (a node cannot
//! otherwise detect success, since the adversary might be jamming all the
//! frequencies it uses). A samaritan receiving another samaritan's message
//! is knocked out (becomes passive). Nodes that finish all super-epochs
//! unsynchronized fall back to a modified Trapdoor Protocol with epochs at
//! least four times the longest Good Samaritan epoch, interleaved (with
//! probability 1/2 per round) with "special" rounds that keep them
//! discoverable by an optimistic-portion leader.
//!
//! Theorem 18: termination within `O(F·log³N)` rounds in every execution,
//! and within `O(t′·log³N)` rounds when all `n ≥ 2` nodes wake together and
//! at most `t′ ≤ t` frequencies are disrupted per round.

mod config;

pub use config::{GoodSamaritanConfig, Phase};

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use wsync_radio::action::Action;
use wsync_radio::frequency::{Frequency, FrequencyBand};
use wsync_radio::message::Feedback;
use wsync_radio::node::ActivationInfo;
use wsync_radio::protocol::Protocol;
use wsync_radio::rng::SimRng;

use crate::params::ceil_log2;
use crate::timestamp::Timestamp;

/// A samaritan's acknowledgement that a contender has been heard
/// sufficiently often.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuccessReport {
    /// Unique identifier of the contender the report is about.
    pub contender_uid: u64,
    /// Number of successful (epoch `lg N + 1`, non-special, same-activation)
    /// rounds the samaritan has recorded for that contender in the current
    /// super-epoch.
    pub count: u64,
}

/// Messages exchanged by the Good Samaritan Protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GoodSamaritanMsg {
    /// A contender's broadcast during the optimistic portion.
    Contender {
        /// Rounds the sender has been active (used to detect that sender and
        /// receiver woke in the same round, condition (c) of Section 7.1).
        rounds_active: u64,
        /// Sender's unique identifier.
        uid: u64,
        /// Whether the sender is currently in epoch `lg N + 1` (the epoch in
        /// which samaritans record successes).
        report_epoch: bool,
        /// Whether the sender designated this round as special.
        special: bool,
    },
    /// A good samaritan's broadcast during the optimistic portion.
    Samaritan {
        /// Sender's unique identifier.
        uid: u64,
        /// Whether the sender designated this round as special.
        special: bool,
        /// The samaritan's best success report, if it has recorded any.
        report: Option<SuccessReport>,
    },
    /// A fallback (modified Trapdoor) contender's broadcast, carrying its
    /// timestamp for knockouts.
    Fallback {
        /// The sender's timestamp.
        timestamp: Timestamp,
    },
    /// The leader announcing the round numbering.
    Leader {
        /// The round number of the current round under the leader's scheme.
        announced_round: u64,
    },
}

/// The role a Good Samaritan node is currently playing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamaritanRole {
    /// Competing to become leader during the optimistic portion.
    Contender,
    /// Downgraded: helping the remaining contender detect success.
    Samaritan,
    /// Knocked out (samaritan heard another samaritan); listening only.
    Passive,
    /// Competing in the fallback modified Trapdoor Protocol.
    FallbackContender,
    /// Knocked out during the fallback; listening only.
    FallbackKnockedOut,
    /// Won the competition; disseminating the round numbering.
    Leader,
    /// Adopted the leader's numbering.
    Synchronized,
}

impl SamaritanRole {
    /// Whether the role belongs to the optimistic portion of the protocol.
    pub fn is_optimistic(self) -> bool {
        matches!(
            self,
            SamaritanRole::Contender | SamaritanRole::Samaritan | SamaritanRole::Passive
        )
    }
}

/// A node running the Good Samaritan Protocol.
#[derive(Debug, Clone)]
pub struct GoodSamaritanProtocol {
    config: GoodSamaritanConfig,
    role: SamaritanRole,
    timestamp: Timestamp,
    output: Option<u64>,
    band: FrequencyBand,
    /// Whether the node designated the current round as special (decided in
    /// `choose_action`, consumed in `on_feedback`).
    current_round_special: bool,
    /// Per-contender success counts recorded while acting as a samaritan,
    /// reset at the start of every super-epoch. An ordered map: the
    /// best-report scan iterates it, and its result feeds broadcast
    /// payloads (and through them the pinned outcome digests), so
    /// iteration order must be deterministic by construction.
    success_counts: BTreeMap<u64, u64>,
    /// Super-epoch for which `success_counts` is currently being collected.
    counts_super_epoch: u32,
}

impl GoodSamaritanProtocol {
    /// Creates a protocol instance with the given configuration. The unique
    /// identifier is drawn when the node is activated.
    pub fn new(config: GoodSamaritanConfig) -> Self {
        GoodSamaritanProtocol {
            config,
            role: SamaritanRole::Contender,
            timestamp: Timestamp::new(0, 0),
            output: None,
            band: FrequencyBand::new(config.num_frequencies.max(1)),
            current_round_special: false,
            success_counts: BTreeMap::new(),
            counts_super_epoch: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GoodSamaritanConfig {
        &self.config
    }

    /// The node's current role.
    pub fn role(&self) -> SamaritanRole {
        self.role
    }

    /// Whether this node became the leader.
    pub fn is_leader(&self) -> bool {
        self.role == SamaritanRole::Leader
    }

    /// The node's unique identifier (0 before activation).
    pub fn uid(&self) -> u64 {
        self.timestamp.uid
    }

    /// Number of distinct contenders this node has recorded successes for in
    /// the current super-epoch (only meaningful while acting as samaritan).
    pub fn recorded_contenders(&self) -> usize {
        self.success_counts.len()
    }

    /// Samples a frequency uniformly from `[1..limit]` (clamped to the
    /// band).
    fn sample_prefix(&self, limit: u32, rng: &mut SimRng) -> Frequency {
        self.band.sample_prefix(limit.max(1), rng)
    }

    /// Samples a frequency from the special-round distribution: `d` uniform
    /// in `[1..lg F]`, then uniform in `[1..2^d]`.
    fn sample_special(&self, rng: &mut SimRng) -> Frequency {
        let lg_f = self.config.lg_f().max(1);
        let d = rng.gen_range(1..=lg_f);
        let limit = 1u32.checked_shl(d).unwrap_or(u32::MAX);
        self.sample_prefix(limit, rng)
    }

    /// The best success report currently held, if any.
    fn best_report(&self) -> Option<SuccessReport> {
        self.success_counts
            .iter()
            .max_by_key(|(uid, count)| (**count, **uid))
            .map(|(uid, count)| SuccessReport {
                contender_uid: *uid,
                count: *count,
            })
    }

    /// Builds the message this node would broadcast in its current role.
    fn own_message(&self, report_epoch: bool, special: bool) -> GoodSamaritanMsg {
        match self.role {
            SamaritanRole::Contender => GoodSamaritanMsg::Contender {
                rounds_active: self.timestamp.rounds_active,
                uid: self.timestamp.uid,
                report_epoch,
                special,
            },
            SamaritanRole::Samaritan => GoodSamaritanMsg::Samaritan {
                uid: self.timestamp.uid,
                special,
                report: self.best_report(),
            },
            SamaritanRole::FallbackContender => GoodSamaritanMsg::Fallback {
                timestamp: self.timestamp,
            },
            SamaritanRole::Leader => GoodSamaritanMsg::Leader {
                announced_round: self.output.unwrap_or(0) + 1,
            },
            // Passive, knocked out and synchronized nodes never broadcast.
            _ => GoodSamaritanMsg::Samaritan {
                uid: self.timestamp.uid,
                special,
                report: None,
            },
        }
    }

    /// Action of a contender or samaritan during the optimistic portion.
    fn optimistic_action(
        &mut self,
        super_epoch: u32,
        epoch: u32,
        rng: &mut SimRng,
    ) -> Action<GoodSamaritanMsg> {
        let lg_n = self.config.lg_n();
        let prefix = 1u32.checked_shl(super_epoch).unwrap_or(u32::MAX);
        let p_e = self.config.broadcast_probability(epoch);
        if epoch <= lg_n {
            // Regular epoch: half the time the low prefix, half the time the
            // whole band; broadcast with probability p_e.
            self.current_round_special = false;
            let frequency = if rng.gen_bool(0.5) {
                self.sample_prefix(prefix, rng)
            } else {
                self.band.sample_uniform(rng)
            };
            if rng.gen_bool(p_e) {
                Action::broadcast(frequency, self.own_message(false, false))
            } else {
                Action::listen(frequency)
            }
        } else {
            // Last two epochs: half the rounds are special.
            let report_epoch = epoch == lg_n + 1;
            if rng.gen_bool(0.5) {
                self.current_round_special = false;
                let frequency = self.sample_prefix(prefix, rng);
                if rng.gen_bool(p_e) {
                    Action::broadcast(frequency, self.own_message(report_epoch, false))
                } else {
                    Action::listen(frequency)
                }
            } else {
                self.current_round_special = true;
                let frequency = self.sample_special(rng);
                if rng.gen_bool(0.5) {
                    Action::broadcast(frequency, self.own_message(report_epoch, true))
                } else {
                    Action::listen(frequency)
                }
            }
        }
    }

    /// Action of a fallback contender: with probability 1/2 a Trapdoor-style
    /// round on `[1..F′]`, otherwise a special Good Samaritan round.
    fn fallback_action(&mut self, epoch: u32, rng: &mut SimRng) -> Action<GoodSamaritanMsg> {
        if rng.gen_bool(0.5) {
            self.current_round_special = false;
            let frequency = self.sample_prefix(self.config.f_prime(), rng);
            let p = self
                .config
                .broadcast_probability(epoch.min(self.config.lg_n()));
            if rng.gen_bool(p) {
                Action::broadcast(frequency, self.own_message(false, false))
            } else {
                Action::listen(frequency)
            }
        } else {
            self.current_round_special = true;
            let frequency = self.sample_special(rng);
            if rng.gen_bool(0.5) {
                Action::broadcast(frequency, self.own_message(false, true))
            } else {
                Action::listen(frequency)
            }
        }
    }
}

impl Protocol for GoodSamaritanProtocol {
    type Msg = GoodSamaritanMsg;

    fn on_activate(&mut self, info: ActivationInfo, rng: &mut SimRng) {
        debug_assert_eq!(info.num_frequencies, self.config.num_frequencies);
        self.band = FrequencyBand::new(info.num_frequencies.max(1));
        self.timestamp = Timestamp::new(0, Timestamp::draw_uid(self.config.upper_bound_n, rng));
    }

    fn choose_action(&mut self, local_round: u64, rng: &mut SimRng) -> Action<GoodSamaritanMsg> {
        self.timestamp.rounds_active = local_round + 1;
        self.current_round_special = false;
        let phase = self.config.phase_at(local_round);

        // Reset samaritan bookkeeping at each new super-epoch.
        if let Phase::Optimistic { super_epoch, .. } = phase {
            if super_epoch != self.counts_super_epoch {
                self.counts_super_epoch = super_epoch;
                self.success_counts.clear();
            }
        }

        match self.role {
            SamaritanRole::Contender | SamaritanRole::Samaritan => match phase {
                Phase::Optimistic {
                    super_epoch, epoch, ..
                } => self.optimistic_action(super_epoch, epoch, rng),
                // The role transition to fallback happens in `on_feedback`;
                // if we are still optimistic while the schedule says
                // fallback (first fallback round), behave as a fallback
                // contender already.
                Phase::Fallback { epoch, .. } => self.fallback_action(epoch, rng),
                Phase::Exhausted => self.fallback_action(self.config.lg_n(), rng),
            },
            SamaritanRole::Passive | SamaritanRole::FallbackKnockedOut => {
                // Knocked-out nodes listen: half the time on the low-band
                // special distribution (where leaders broadcast), half the
                // time uniformly.
                let frequency = if rng.gen_bool(0.5) {
                    self.sample_special(rng)
                } else {
                    self.band.sample_uniform(rng)
                };
                Action::listen(frequency)
            }
            SamaritanRole::FallbackContender => match phase {
                Phase::Fallback { epoch, .. } => self.fallback_action(epoch, rng),
                Phase::Exhausted => self.fallback_action(self.config.lg_n(), rng),
                // Can only happen if a node was downgraded into the fallback
                // role early (never the case in the current rules); behave
                // like the first fallback epoch.
                Phase::Optimistic { .. } => self.fallback_action(1, rng),
            },
            SamaritanRole::Leader => {
                let frequency = self.sample_special(rng);
                if rng.gen_bool(self.config.leader_broadcast_probability) {
                    Action::broadcast(
                        frequency,
                        GoodSamaritanMsg::Leader {
                            announced_round: self.output.unwrap_or(0) + 1,
                        },
                    )
                } else {
                    Action::listen(frequency)
                }
            }
            SamaritanRole::Synchronized => Action::listen(self.band.sample_uniform(rng)),
        }
    }

    fn on_feedback(
        &mut self,
        local_round: u64,
        feedback: Feedback<GoodSamaritanMsg>,
        _rng: &mut SimRng,
    ) {
        let was_synced = self.output.is_some();
        let phase = self.config.phase_at(local_round);

        if let Feedback::Received(received) = &feedback {
            match received.payload {
                GoodSamaritanMsg::Leader { announced_round } => {
                    if self.role != SamaritanRole::Leader && !was_synced {
                        self.role = SamaritanRole::Synchronized;
                        self.output = Some(announced_round);
                    }
                }
                GoodSamaritanMsg::Contender {
                    rounds_active,
                    uid,
                    report_epoch,
                    special,
                } => {
                    if uid != self.timestamp.uid {
                        match self.role {
                            SamaritanRole::Contender => {
                                // Downgrade, ignoring timestamps (Section 7.1).
                                self.role = SamaritanRole::Samaritan;
                            }
                            SamaritanRole::Samaritan => {
                                // Record a success when all three conditions of
                                // Section 7.1 hold: (a) we are in epoch lg N + 1,
                                // (b) neither party designated the round special,
                                // (c) both woke in the same round.
                                let in_report_epoch = matches!(
                                    phase,
                                    Phase::Optimistic { epoch, .. }
                                        if epoch == self.config.lg_n() + 1
                                );
                                if in_report_epoch
                                    && report_epoch
                                    && !special
                                    && !self.current_round_special
                                    && rounds_active == self.timestamp.rounds_active
                                {
                                    *self.success_counts.entry(uid).or_insert(0) += 1;
                                }
                            }
                            _ => {}
                        }
                    }
                }
                GoodSamaritanMsg::Samaritan { uid, report, .. } => {
                    if uid != self.timestamp.uid {
                        match self.role {
                            SamaritanRole::Samaritan => {
                                // A samaritan hearing another samaritan is
                                // knocked out.
                                self.role = SamaritanRole::Passive;
                            }
                            SamaritanRole::Contender => {
                                // A contender learns from the samaritan whether
                                // it has been successful often enough.
                                if let Some(rep) = report {
                                    if rep.contender_uid == self.timestamp.uid {
                                        if let Phase::Optimistic { super_epoch, .. } = phase {
                                            if rep.count
                                                >= self.config.success_threshold(super_epoch)
                                            {
                                                self.role = SamaritanRole::Leader;
                                                if !was_synced {
                                                    self.output = Some(local_round + 1);
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                }
                GoodSamaritanMsg::Fallback { timestamp } => match self.role {
                    SamaritanRole::Contender => {
                        // "Any contender that has not yet begun the modified
                        // Trapdoor protocol that receives a message is
                        // downgraded."
                        self.role = SamaritanRole::Samaritan;
                    }
                    SamaritanRole::FallbackContender if timestamp > self.timestamp => {
                        self.role = SamaritanRole::FallbackKnockedOut;
                    }
                    _ => {}
                },
            }
        }

        // Transition into the fallback portion: every unsynchronized
        // optimistic node that has finished the last super-epoch becomes a
        // fallback contender.
        if self.role.is_optimistic() && local_round + 1 >= self.config.fallback_start() {
            self.role = SamaritanRole::FallbackContender;
        }

        // A fallback contender that survives all fallback epochs becomes the
        // leader.
        if self.role == SamaritanRole::FallbackContender
            && local_round + 1 >= self.config.fallback_start() + self.config.fallback_total()
        {
            self.role = SamaritanRole::Leader;
            if !was_synced {
                self.output = Some(local_round + 1);
            }
        }

        // Correctness: a node that already had a round number increments it.
        if was_synced {
            self.output = Some(self.output.expect("synced node has an output") + 1);
        }
    }

    fn output(&self) -> Option<u64> {
        self.output
    }
}

/// Convenience: the largest power of two `2^k ≤ x` (used in experiments to
/// find the super-epoch `lg 2t′` at which good executions should finish).
pub fn super_epoch_for_disruption(t_actual: u32) -> u32 {
    ceil_log2(u64::from(2 * t_actual.max(1))).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsync_radio::message::Received;
    use wsync_radio::node::NodeId;

    fn activated(seed: u64) -> (GoodSamaritanProtocol, SimRng) {
        let config = GoodSamaritanConfig::new(16, 8, 2);
        let mut p = GoodSamaritanProtocol::new(config);
        let mut rng = SimRng::from_seed(seed);
        p.on_activate(ActivationInfo::new(16, 8, 2), &mut rng);
        (p, rng)
    }

    fn silence() -> Feedback<GoodSamaritanMsg> {
        Feedback::Silence {
            frequency: Frequency::new(1),
        }
    }

    fn received(payload: GoodSamaritanMsg) -> Feedback<GoodSamaritanMsg> {
        Feedback::Received(Received {
            sender: NodeId::new(7),
            frequency: Frequency::new(1),
            payload,
        })
    }

    #[test]
    fn starts_as_contender() {
        let (p, _) = activated(1);
        assert_eq!(p.role(), SamaritanRole::Contender);
        assert_eq!(p.output(), None);
        assert!(p.uid() >= 1);
        assert!(!p.is_leader());
    }

    #[test]
    fn contender_downgraded_by_other_contender_regardless_of_timestamp() {
        let (mut p, mut rng) = activated(2);
        p.choose_action(0, &mut rng);
        // Another contender with a *smaller* rounds_active still downgrades
        // (the Good Samaritan protocol ignores timestamps).
        p.on_feedback(
            0,
            received(GoodSamaritanMsg::Contender {
                rounds_active: 0,
                uid: 42,
                report_epoch: false,
                special: false,
            }),
            &mut rng,
        );
        assert_eq!(p.role(), SamaritanRole::Samaritan);
    }

    #[test]
    fn own_uid_does_not_downgrade() {
        let (mut p, mut rng) = activated(3);
        let uid = p.uid();
        p.choose_action(0, &mut rng);
        p.on_feedback(
            0,
            received(GoodSamaritanMsg::Contender {
                rounds_active: 1,
                uid,
                report_epoch: false,
                special: false,
            }),
            &mut rng,
        );
        assert_eq!(p.role(), SamaritanRole::Contender);
    }

    #[test]
    fn samaritan_knocked_out_by_other_samaritan() {
        let (mut p, mut rng) = activated(4);
        p.choose_action(0, &mut rng);
        p.on_feedback(
            0,
            received(GoodSamaritanMsg::Contender {
                rounds_active: 1,
                uid: 42,
                report_epoch: false,
                special: false,
            }),
            &mut rng,
        );
        assert_eq!(p.role(), SamaritanRole::Samaritan);
        p.choose_action(1, &mut rng);
        p.on_feedback(
            1,
            received(GoodSamaritanMsg::Samaritan {
                uid: 43,
                special: false,
                report: None,
            }),
            &mut rng,
        );
        assert_eq!(p.role(), SamaritanRole::Passive);
        // Passive nodes only listen.
        let action = p.choose_action(2, &mut rng);
        assert!(action.is_listen());
    }

    #[test]
    fn samaritan_records_success_only_under_all_conditions() {
        let (mut p, mut rng) = activated(5);
        let config = *p.config();
        // Downgrade to samaritan first.
        p.choose_action(0, &mut rng);
        p.on_feedback(
            0,
            received(GoodSamaritanMsg::Contender {
                rounds_active: 1,
                uid: 42,
                report_epoch: false,
                special: false,
            }),
            &mut rng,
        );
        assert_eq!(p.role(), SamaritanRole::Samaritan);

        // Find a round inside epoch lg N + 1 of super-epoch 1.
        let report_epoch_round = (0..config.super_epoch_length(1))
            .find(|&r| {
                matches!(
                    config.phase_at(r),
                    Phase::Optimistic { epoch, .. } if epoch == config.lg_n() + 1
                )
            })
            .expect("epoch lg N + 1 exists");

        // Keep calling choose_action until the samaritan picks a non-special
        // round at that local round, then feed it a matching contender
        // message: the success must be recorded.
        let mut recorded = false;
        for _ in 0..200 {
            p.choose_action(report_epoch_round, &mut rng);
            if p.current_round_special {
                continue;
            }
            p.on_feedback(
                report_epoch_round,
                received(GoodSamaritanMsg::Contender {
                    rounds_active: report_epoch_round + 1,
                    uid: 42,
                    report_epoch: true,
                    special: false,
                }),
                &mut rng,
            );
            recorded = true;
            break;
        }
        assert!(recorded);
        assert_eq!(p.recorded_contenders(), 1);
        assert_eq!(
            p.best_report(),
            Some(SuccessReport {
                contender_uid: 42,
                count: 1
            })
        );

        // A message with a different activation time is not recorded.
        p.choose_action(report_epoch_round, &mut rng);
        if !p.current_round_special {
            p.on_feedback(
                report_epoch_round,
                received(GoodSamaritanMsg::Contender {
                    rounds_active: 5, // different wake-up round
                    uid: 99,
                    report_epoch: true,
                    special: false,
                }),
                &mut rng,
            );
        }
        assert!(!p.success_counts.contains_key(&99));
    }

    #[test]
    fn contender_becomes_leader_on_sufficient_report() {
        let (mut p, mut rng) = activated(6);
        let threshold = p.config().success_threshold(1);
        p.choose_action(0, &mut rng);
        p.on_feedback(
            0,
            received(GoodSamaritanMsg::Samaritan {
                uid: 43,
                special: false,
                report: Some(SuccessReport {
                    contender_uid: p.uid(),
                    count: threshold,
                }),
            }),
            &mut rng,
        );
        assert!(p.is_leader());
        assert!(p.output().is_some());
    }

    #[test]
    fn insufficient_or_foreign_report_does_not_elect() {
        let (mut p, mut rng) = activated(7);
        let threshold = p.config().success_threshold(1);
        p.choose_action(0, &mut rng);
        p.on_feedback(
            0,
            received(GoodSamaritanMsg::Samaritan {
                uid: 43,
                special: false,
                report: Some(SuccessReport {
                    contender_uid: p.uid(),
                    count: threshold.saturating_sub(1),
                }),
            }),
            &mut rng,
        );
        // below threshold: still contender (threshold is at least 1, and a
        // report of threshold-1 < threshold)
        if threshold > 1 {
            assert_eq!(p.role(), SamaritanRole::Contender);
        }
        p.choose_action(1, &mut rng);
        p.on_feedback(
            1,
            received(GoodSamaritanMsg::Samaritan {
                uid: 43,
                special: false,
                report: Some(SuccessReport {
                    contender_uid: p.uid() + 1,
                    count: 1_000_000,
                }),
            }),
            &mut rng,
        );
        assert_ne!(p.role(), SamaritanRole::Leader);
    }

    #[test]
    fn adopts_leader_numbering_and_increments() {
        let (mut p, mut rng) = activated(8);
        p.choose_action(0, &mut rng);
        p.on_feedback(
            0,
            received(GoodSamaritanMsg::Leader {
                announced_round: 99,
            }),
            &mut rng,
        );
        assert_eq!(p.role(), SamaritanRole::Synchronized);
        assert_eq!(p.output(), Some(99));
        for r in 1..4 {
            p.choose_action(r, &mut rng);
            p.on_feedback(r, silence(), &mut rng);
            assert_eq!(p.output(), Some(99 + r));
        }
    }

    #[test]
    fn unsynchronized_node_enters_fallback_after_last_super_epoch() {
        let (mut p, mut rng) = activated(9);
        let fb_start = p.config().fallback_start();
        // Jump to the last optimistic round without ever hearing anything.
        p.choose_action(fb_start - 1, &mut rng);
        p.on_feedback(fb_start - 1, silence(), &mut rng);
        assert_eq!(p.role(), SamaritanRole::FallbackContender);
    }

    #[test]
    fn fallback_contender_knocked_out_by_larger_timestamp() {
        let (mut p, mut rng) = activated(10);
        let fb_start = p.config().fallback_start();
        p.choose_action(fb_start - 1, &mut rng);
        p.on_feedback(fb_start - 1, silence(), &mut rng);
        assert_eq!(p.role(), SamaritanRole::FallbackContender);
        p.choose_action(fb_start, &mut rng);
        p.on_feedback(
            fb_start,
            received(GoodSamaritanMsg::Fallback {
                timestamp: Timestamp::new(u64::MAX, u64::MAX),
            }),
            &mut rng,
        );
        assert_eq!(p.role(), SamaritanRole::FallbackKnockedOut);
        // Knocked-out fallback nodes only listen.
        assert!(p.choose_action(fb_start + 1, &mut rng).is_listen());
    }

    #[test]
    fn lone_node_eventually_becomes_leader_via_fallback() {
        let (mut p, mut rng) = activated(11);
        let total = p.config().fallback_start() + p.config().fallback_total();
        // Run the full schedule with nothing but silence. To keep the test
        // fast we only exercise the boundary rounds plus a sparse sample.
        let mut r = 0u64;
        while r < total {
            p.choose_action(r, &mut rng);
            p.on_feedback(r, silence(), &mut rng);
            // sample sparsely in the middle of long epochs
            let step = if total > 10_000 { 97 } else { 1 };
            r += step;
        }
        // Make sure the final round is processed exactly.
        p.choose_action(total - 1, &mut rng);
        p.on_feedback(total - 1, silence(), &mut rng);
        assert!(p.is_leader());
        assert!(p.output().is_some());
    }

    #[test]
    fn leader_announcement_is_consistent_with_output() {
        let (mut p, mut rng) = activated(12);
        // Make it a leader via a report.
        let threshold = p.config().success_threshold(1);
        p.choose_action(0, &mut rng);
        p.on_feedback(
            0,
            received(GoodSamaritanMsg::Samaritan {
                uid: 43,
                special: false,
                report: Some(SuccessReport {
                    contender_uid: p.uid(),
                    count: threshold,
                }),
            }),
            &mut rng,
        );
        assert!(p.is_leader());
        let out = p.output().unwrap();
        // Find a broadcast round and check the announced value is out + k + 1
        // at the k-th following round.
        let mut announced_checked = false;
        for k in 0..200u64 {
            let action = p.choose_action(1 + k, &mut rng);
            if let Action::Broadcast {
                message: GoodSamaritanMsg::Leader { announced_round },
                ..
            } = action
            {
                assert_eq!(announced_round, out + k + 1);
                announced_checked = true;
            }
            p.on_feedback(1 + k, silence(), &mut rng);
            if announced_checked {
                break;
            }
        }
        assert!(
            announced_checked,
            "leader should broadcast within 200 rounds"
        );
    }

    #[test]
    fn super_epoch_for_disruption_values() {
        assert_eq!(super_epoch_for_disruption(1), 1);
        assert_eq!(super_epoch_for_disruption(2), 2);
        assert_eq!(super_epoch_for_disruption(4), 3);
        assert_eq!(super_epoch_for_disruption(0), 1);
    }
}
