//! Parameters of the Good Samaritan Protocol (Section 7.1, Figure 2).
//!
//! A node proceeds through `lg F` *super-epochs*; super-epoch `k` consists
//! of `lg N + 2` epochs, each of `s(k)` rounds. In epoch `e ≤ lg N` a node
//! broadcasts with probability `2^e/(2N)`; in the last two epochs it
//! broadcasts with probability 1/2. During the last two epochs half of the
//! rounds are *special*: the node picks `d` uniformly from `[1..lg F]` and a
//! frequency uniformly from `[1..2^d]` (Figure 2's log-weighted
//! distribution). After the last super-epoch the node falls back to a
//! modified Trapdoor Protocol whose epochs are at least four times as long
//! as the longest Good Samaritan epoch.
//!
//! ## Epoch-length interpretation
//!
//! The paper's prose states `s(k) = Θ(2^k·log³N)` per epoch, but its own
//! analysis only requires `s(k) = Ω(2^k·log²N)` (Lemma 11/12 discussion) and
//! the stated bounds of Theorem 18 — `O(t′·log³N)` optimistic and
//! `O(F·log³N)` overall — only come out if an *epoch* is `Θ(2^k·log²N)`
//! (so a super-epoch, having `lg N + 2` epochs, is `Θ(2^k·log³N)`). We use
//! `s(k) = ⌈c·2^k·lg²N⌉` and a fallback epoch of `⌈4c·F·lg²N⌉`, which makes
//! the super-epoch and the total match the paper's stated bounds. See
//! DESIGN.md §5 for the full discussion.

use serde::{Deserialize, Serialize};

use crate::params::{ceil_log2, effective_frequencies, next_power_of_two};
use crate::problem::ProblemInstance;

/// Where a local round falls within the Good Samaritan schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Within super-epoch `super_epoch` (1-based), epoch `epoch` (1-based,
    /// up to `lg N + 2`), at round `round_in_epoch` within the epoch.
    Optimistic {
        /// 1-based super-epoch number `k ∈ [1, lg F]`.
        super_epoch: u32,
        /// 1-based epoch number within the super-epoch, `∈ [1, lg N + 2]`.
        epoch: u32,
        /// 0-based round within the epoch.
        round_in_epoch: u64,
    },
    /// Within the fallback modified Trapdoor Protocol.
    Fallback {
        /// 1-based fallback epoch number, `∈ [1, lg N]`.
        epoch: u32,
        /// 0-based round within the fallback epoch.
        round_in_epoch: u64,
    },
    /// Past the end of the fallback schedule (a node reaching this point
    /// uninterrupted has already become leader).
    Exhausted,
}

/// Configuration of the Good Samaritan Protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoodSamaritanConfig {
    /// Bound `N` on the number of participants (rounded up to a power of
    /// two).
    pub upper_bound_n: u64,
    /// Number of frequencies `F`.
    pub num_frequencies: u32,
    /// Disruption bound `t < F`. The paper's optimistic analysis assumes
    /// `t ≤ F/2`.
    pub disruption_bound: u32,
    /// Constant `c` in the epoch length `s(k) = ⌈c·2^k·lg²N⌉`.
    pub epoch_constant: f64,
    /// The leader-election threshold is `s(k)/2^{k+threshold_shift}`
    /// successful rounds (the paper uses shift 6).
    pub threshold_shift: u32,
    /// The fallback epoch length is `⌈fallback_multiplier·c·F·lg²N⌉`
    /// (the paper requires at least 4).
    pub fallback_multiplier: f64,
    /// Probability with which an elected leader broadcasts its numbering
    /// each round (the paper uses 1/2).
    pub leader_broadcast_probability: f64,
}

impl GoodSamaritanConfig {
    /// Creates a configuration with the default constants (`c = 6`,
    /// threshold shift 6, fallback multiplier 4, leader broadcast 1/2).
    pub fn new(upper_bound_n: u64, num_frequencies: u32, disruption_bound: u32) -> Self {
        GoodSamaritanConfig {
            upper_bound_n: next_power_of_two(upper_bound_n),
            num_frequencies,
            disruption_bound,
            epoch_constant: 6.0,
            threshold_shift: 6,
            fallback_multiplier: 4.0,
            leader_broadcast_probability: 0.5,
        }
    }

    /// Creates a configuration from a [`ProblemInstance`].
    pub fn from_instance(instance: ProblemInstance) -> Self {
        GoodSamaritanConfig::new(
            instance.upper_bound_n,
            instance.num_frequencies,
            instance.disruption_bound,
        )
    }

    /// Overrides the epoch-length constant `c`.
    pub fn with_epoch_constant(mut self, c: f64) -> Self {
        self.epoch_constant = c.max(0.5);
        self
    }

    /// Overrides the threshold shift.
    pub fn with_threshold_shift(mut self, shift: u32) -> Self {
        self.threshold_shift = shift;
        self
    }

    /// Overrides the fallback epoch-length multiplier.
    pub fn with_fallback_multiplier(mut self, m: f64) -> Self {
        self.fallback_multiplier = m.max(1.0);
        self
    }

    /// `lg N` (at least 1).
    pub fn lg_n(&self) -> u32 {
        ceil_log2(self.upper_bound_n).max(1)
    }

    /// `lg F`: the number of super-epochs (0 when `F = 1`, in which case the
    /// protocol goes straight to the fallback).
    pub fn lg_f(&self) -> u32 {
        ceil_log2(u64::from(self.num_frequencies))
    }

    /// Number of epochs per super-epoch, `lg N + 2`.
    pub fn epochs_per_super_epoch(&self) -> u32 {
        self.lg_n() + 2
    }

    /// `F′ = min(F, 2t)` (clamped to at least 1), used by the fallback
    /// Trapdoor rounds.
    pub fn f_prime(&self) -> u32 {
        effective_frequencies(self.num_frequencies, self.disruption_bound)
    }

    /// Epoch length `s(k) = ⌈c·2^k·lg²N⌉` in super-epoch `k` (1-based).
    pub fn epoch_length(&self, super_epoch: u32) -> u64 {
        let lg_n = f64::from(self.lg_n());
        let len = self.epoch_constant * 2f64.powi(super_epoch as i32) * lg_n * lg_n;
        (len.ceil() as u64).max(1)
    }

    /// Length of super-epoch `k`: `(lg N + 2) · s(k)` rounds.
    pub fn super_epoch_length(&self, super_epoch: u32) -> u64 {
        u64::from(self.epochs_per_super_epoch()) * self.epoch_length(super_epoch)
    }

    /// Total length of the optimistic portion (all `lg F` super-epochs).
    pub fn optimistic_total(&self) -> u64 {
        (1..=self.lg_f()).map(|k| self.super_epoch_length(k)).sum()
    }

    /// Per-round broadcast probability in epoch `e` (1-based): `2^e/(2N)`
    /// for `e ≤ lg N`, and 1/2 in the final two epochs.
    pub fn broadcast_probability(&self, epoch: u32) -> f64 {
        if epoch > self.lg_n() {
            0.5
        } else {
            (2f64.powi(epoch as i32) / (2.0 * self.upper_bound_n as f64)).min(0.5)
        }
    }

    /// Number of recorded successes in epoch `lg N + 1` of super-epoch `k`
    /// that a contender must be told about to become leader:
    /// `max(1, ⌊s(k)/2^{k+shift}⌋)`.
    pub fn success_threshold(&self, super_epoch: u32) -> u64 {
        let denom = 2f64.powi((super_epoch + self.threshold_shift) as i32);
        ((self.epoch_length(super_epoch) as f64 / denom).floor() as u64).max(1)
    }

    /// Length of one fallback (modified Trapdoor) epoch:
    /// `⌈fallback_multiplier·c·F·lg²N⌉`.
    pub fn fallback_epoch_length(&self) -> u64 {
        let lg_n = f64::from(self.lg_n());
        let len = self.fallback_multiplier
            * self.epoch_constant
            * f64::from(self.num_frequencies)
            * lg_n
            * lg_n;
        (len.ceil() as u64).max(1)
    }

    /// Number of fallback epochs (`lg N`).
    pub fn fallback_epochs(&self) -> u32 {
        self.lg_n()
    }

    /// Total length of the fallback portion.
    pub fn fallback_total(&self) -> u64 {
        u64::from(self.fallback_epochs()) * self.fallback_epoch_length()
    }

    /// Locates a local round (0-based, from activation) in the schedule.
    pub fn phase_at(&self, local_round: u64) -> Phase {
        let mut start = 0u64;
        for k in 1..=self.lg_f() {
            let se_len = self.super_epoch_length(k);
            if local_round < start + se_len {
                let within = local_round - start;
                let epoch_len = self.epoch_length(k);
                let epoch = (within / epoch_len) as u32 + 1;
                let round_in_epoch = within % epoch_len;
                return Phase::Optimistic {
                    super_epoch: k,
                    epoch,
                    round_in_epoch,
                };
            }
            start += se_len;
        }
        let fallback_round = local_round - start;
        let fb_len = self.fallback_epoch_length();
        let epoch = (fallback_round / fb_len) as u32 + 1;
        if epoch > self.fallback_epochs() {
            return Phase::Exhausted;
        }
        Phase::Fallback {
            epoch,
            round_in_epoch: fallback_round % fb_len,
        }
    }

    /// Round (local, 0-based) at which the optimistic portion ends and the
    /// fallback begins.
    pub fn fallback_start(&self) -> u64 {
        self.optimistic_total()
    }

    /// The per-frequency selection distribution of a *regular* round of
    /// epoch `e ≤ lg N` in super-epoch `k` (Figure 2, left column):
    /// `P[f] = 1/2^{k+1} + 1/(2F)` for `f ≤ 2^k` and `1/(2F)` otherwise.
    /// Returned as a vector indexed by 0-based frequency.
    pub fn regular_frequency_distribution(&self, super_epoch: u32) -> Vec<f64> {
        let f = self.num_frequencies as usize;
        let prefix = (1usize << super_epoch.min(30)).min(f);
        (0..f)
            .map(|i| {
                let uniform_part = 0.5 / f as f64;
                let prefix_part = if i < prefix { 0.5 / prefix as f64 } else { 0.0 };
                uniform_part + prefix_part
            })
            .collect()
    }

    /// The per-frequency selection distribution of a *special* round
    /// (Figure 2, right column): pick `d` uniformly from `[1..lg F]`, then a
    /// frequency uniformly from `[1..min(2^d, F)]`. Returned as a vector
    /// indexed by 0-based frequency; sums to 1.
    pub fn special_frequency_distribution(&self) -> Vec<f64> {
        let f = self.num_frequencies as usize;
        let lg_f = self.lg_f().max(1);
        let mut dist = vec![0.0; f];
        for d in 1..=lg_f {
            let limit = (1usize << d.min(30)).min(f);
            for slot in dist.iter_mut().take(limit) {
                *slot += 1.0 / (f64::from(lg_f) * limit as f64);
            }
        }
        dist
    }

    /// The per-frequency selection distribution of the last two epochs of
    /// super-epoch `k` (Figure 2): with probability 1/2 a regular prefix
    /// choice from `[1..2^k]`, with probability 1/2 a special choice.
    pub fn last_epochs_frequency_distribution(&self, super_epoch: u32) -> Vec<f64> {
        let f = self.num_frequencies as usize;
        let prefix = (1usize << super_epoch.min(30)).min(f);
        let special = self.special_frequency_distribution();
        (0..f)
            .map(|i| {
                let prefix_part = if i < prefix { 0.5 / prefix as f64 } else { 0.0 };
                prefix_part + 0.5 * special[i]
            })
            .collect()
    }

    /// The optimistic bound of Theorem 18, `t′·log³N`, without constants.
    pub fn theorem18_optimistic_bound(&self, t_actual: u32) -> f64 {
        let lg_n = f64::from(self.lg_n());
        f64::from(t_actual.max(1)) * lg_n * lg_n * lg_n
    }

    /// The fallback bound of Theorem 18, `F·log³N`, without constants.
    pub fn theorem18_fallback_bound(&self) -> f64 {
        let lg_n = f64::from(self.lg_n());
        f64::from(self.num_frequencies) * lg_n * lg_n * lg_n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn config() -> GoodSamaritanConfig {
        GoodSamaritanConfig::new(64, 16, 4)
    }

    #[test]
    fn basic_derived_quantities() {
        let c = config();
        assert_eq!(c.lg_n(), 6);
        assert_eq!(c.lg_f(), 4);
        assert_eq!(c.epochs_per_super_epoch(), 8);
        assert_eq!(c.f_prime(), 8);
        assert_eq!(c.fallback_epochs(), 6);
    }

    #[test]
    fn epoch_lengths_double_per_super_epoch() {
        let c = config();
        for k in 1..c.lg_f() {
            let ratio = c.epoch_length(k + 1) as f64 / c.epoch_length(k) as f64;
            assert!((ratio - 2.0).abs() < 0.05, "ratio was {ratio}");
        }
    }

    #[test]
    fn totals_are_consistent() {
        let c = config();
        let sum: u64 = (1..=c.lg_f()).map(|k| c.super_epoch_length(k)).sum();
        assert_eq!(sum, c.optimistic_total());
        assert_eq!(c.fallback_start(), c.optimistic_total());
        assert_eq!(
            c.fallback_total(),
            u64::from(c.fallback_epochs()) * c.fallback_epoch_length()
        );
    }

    #[test]
    fn fallback_epoch_at_least_four_times_longest_optimistic_epoch() {
        let c = config();
        let longest = c.epoch_length(c.lg_f());
        assert!(c.fallback_epoch_length() >= 4 * longest);
    }

    #[test]
    fn broadcast_probability_matches_figure_two() {
        let c = config();
        assert!((c.broadcast_probability(1) - 1.0 / 64.0).abs() < 1e-12);
        assert!((c.broadcast_probability(c.lg_n()) - 0.5).abs() < 1e-12);
        assert_eq!(c.broadcast_probability(c.lg_n() + 1), 0.5);
        assert_eq!(c.broadcast_probability(c.lg_n() + 2), 0.5);
    }

    #[test]
    fn phase_at_walks_through_schedule() {
        let c = config();
        // first round of execution
        assert_eq!(
            c.phase_at(0),
            Phase::Optimistic {
                super_epoch: 1,
                epoch: 1,
                round_in_epoch: 0
            }
        );
        // last round of super-epoch 1
        let se1 = c.super_epoch_length(1);
        assert!(matches!(
            c.phase_at(se1 - 1),
            Phase::Optimistic { super_epoch: 1, epoch, .. } if epoch == c.epochs_per_super_epoch()
        ));
        // first round of super-epoch 2
        assert_eq!(
            c.phase_at(se1),
            Phase::Optimistic {
                super_epoch: 2,
                epoch: 1,
                round_in_epoch: 0
            }
        );
        // first fallback round
        assert_eq!(
            c.phase_at(c.optimistic_total()),
            Phase::Fallback {
                epoch: 1,
                round_in_epoch: 0
            }
        );
        // past everything
        assert_eq!(
            c.phase_at(c.optimistic_total() + c.fallback_total()),
            Phase::Exhausted
        );
    }

    #[test]
    fn success_threshold_positive_and_scaled() {
        let c = config();
        for k in 1..=c.lg_f() {
            let th = c.success_threshold(k);
            assert!(th >= 1);
            // threshold should not exceed the epoch length
            assert!(th <= c.epoch_length(k));
        }
        // the threshold is (approximately) independent of k because both the
        // epoch length and the divisor scale with 2^k
        assert!((c.success_threshold(1) as i64 - c.success_threshold(c.lg_f()) as i64).abs() <= 1);
    }

    #[test]
    fn distributions_sum_to_one() {
        let c = config();
        for k in 1..=c.lg_f() {
            let reg: f64 = c.regular_frequency_distribution(k).iter().sum();
            assert!((reg - 1.0).abs() < 1e-9, "regular k={k} sums to {reg}");
            let last: f64 = c.last_epochs_frequency_distribution(k).iter().sum();
            assert!((last - 1.0).abs() < 1e-9, "last k={k} sums to {last}");
        }
        let special: f64 = c.special_frequency_distribution().iter().sum();
        assert!((special - 1.0).abs() < 1e-9);
    }

    #[test]
    fn special_distribution_biases_low_frequencies() {
        let c = config();
        let special = c.special_frequency_distribution();
        assert!(special[0] > special[c.num_frequencies as usize - 1]);
        assert!(special[0] > 1.0 / c.num_frequencies as f64);
    }

    #[test]
    fn regular_distribution_matches_figure_formula() {
        let c = config();
        let k = 2;
        let dist = c.regular_frequency_distribution(k);
        let f = c.num_frequencies as f64;
        // f ≤ 2^k: 1/2^{k+1} + 1/(2F)
        assert!((dist[0] - (1.0 / 8.0 + 1.0 / (2.0 * f))).abs() < 1e-12);
        // f > 2^k: 1/(2F)
        assert!((dist[10] - 1.0 / (2.0 * f)).abs() < 1e-12);
    }

    #[test]
    fn theorem18_bounds_shape() {
        let c = config();
        assert!(c.theorem18_optimistic_bound(2) < c.theorem18_optimistic_bound(8));
        assert!(c.theorem18_fallback_bound() >= c.theorem18_optimistic_bound(c.disruption_bound));
    }

    #[test]
    fn f_equal_one_has_no_super_epochs() {
        let c = GoodSamaritanConfig::new(16, 1, 0);
        assert_eq!(c.lg_f(), 0);
        assert_eq!(c.optimistic_total(), 0);
        assert!(matches!(
            c.phase_at(0),
            Phase::Fallback {
                epoch: 1,
                round_in_epoch: 0
            }
        ));
    }

    proptest! {
        #[test]
        fn phase_at_is_total_and_monotone(
            n in 2u64..2000, f in 2u32..64, t in 0u32..31, r in 0u64..100_000
        ) {
            prop_assume!(t < f);
            let c = GoodSamaritanConfig::new(n, f, t);
            // must not panic for any round
            let _ = c.phase_at(r);
            // fallback start is exactly the end of the optimistic portion
            let at_start = c.phase_at(c.fallback_start());
            let ok = matches!(
                at_start,
                Phase::Fallback { epoch: 1, round_in_epoch: 0 } | Phase::Exhausted
            );
            prop_assert!(ok, "unexpected phase at fallback start: {:?}", at_start);
        }

        #[test]
        fn epoch_length_monotone_in_k(n in 2u64..2000, k in 1u32..6) {
            let c = GoodSamaritanConfig::new(n, 64, 16);
            prop_assert!(c.epoch_length(k + 1) >= c.epoch_length(k));
        }
    }
}
