//! Parallel Monte-Carlo trial execution.
//!
//! Every experiment behind the paper's figures and theorem checks boils
//! down to the same shape: run many *independent* executions of a
//! scenario — one per seed — and fold the per-trial [`SyncOutcome`]s
//! into aggregate statistics. In the round-synchronous model each trial is
//! a pure function of `(spec, seed)` (every randomness consumer draws
//! from its own [`SimRng`](wsync_radio::rng::SimRng) stream derived from
//! the master seed), so the trials are embarrassingly parallel.
//!
//! [`BatchRunner`] fans trials across a pool of OS threads and returns the
//! results **in seed order**, which makes parallel execution
//! indistinguishable from serial execution:
//!
//! * determinism — trial `i`'s result depends only on `(spec, seed_i)`,
//!   never on scheduling, and
//! * fold stability — aggregation happens *after* the results are back in
//!   seed order, so every downstream statistic is bit-identical to what a
//!   `for seed in seeds` loop would have produced.
//!
//! [`BatchStats`] provides the folds the experiments share (sync rate,
//! single-leader rate, clean rate, violation counts, rounds-to-sync and
//! completion-round summaries); bespoke folds can iterate the returned
//! outcome vector directly.
//!
//! # Example
//!
//! ```
//! use wsync_core::batch::{BatchRunner, BatchStats};
//! use wsync_core::sim::Sim;
//! use wsync_core::spec::ScenarioSpec;
//!
//! let spec = ScenarioSpec::new("trapdoor", 8, 8, 2).with_adversary("random");
//! let stats = Sim::from_spec(&spec)?
//!     .seeds(0..8)
//!     .run_stats(&BatchRunner::new());
//! assert_eq!(stats.trials, 8);
//! assert!(stats.sync_rate() > 0.9);
//! # Ok::<(), wsync_core::spec::SpecError>(())
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::thread;

use wsync_stats::Summary;

use crate::good_samaritan::GoodSamaritanConfig;
use crate::report::SyncOutcome;
use crate::runner::{good_samaritan_component, trapdoor_component, Scenario};
use crate::sim::Sim;
use crate::spec::ComponentSpec;
use crate::trapdoor::TrapdoorConfig;

/// Typed shorthand for the built-in protocols, optionally with an explicit
/// configuration.
///
/// Like [`AdversaryKind`](crate::runner::AdversaryKind), this enum predates
/// the open [`registry`](crate::registry): it remains as a typo-proof way
/// to name a built-in protocol and converts into the registry's
/// [`ComponentSpec`] form via [`Into`]. Protocols added by downstream
/// crates have no variant here — address them by name through
/// [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ProtocolKind {
    /// The Trapdoor Protocol with default constants.
    #[default]
    Trapdoor,
    /// The Trapdoor Protocol with an explicit configuration.
    TrapdoorWith(TrapdoorConfig),
    /// The Good Samaritan Protocol with default constants.
    GoodSamaritan,
    /// The Good Samaritan Protocol with an explicit configuration.
    GoodSamaritanWith(GoodSamaritanConfig),
    /// The multi-frequency wake-up-style baseline.
    Wakeup,
    /// The deterministic round-robin hopping baseline.
    RoundRobin,
    /// The single-frequency Trapdoor baseline.
    SingleFrequency,
}

impl ProtocolKind {
    /// The registry component this variant denotes.
    pub fn to_component(&self) -> ComponentSpec {
        match self {
            ProtocolKind::Trapdoor => ComponentSpec::named("trapdoor"),
            ProtocolKind::TrapdoorWith(config) => trapdoor_component(config),
            ProtocolKind::GoodSamaritan => ComponentSpec::named("good-samaritan"),
            ProtocolKind::GoodSamaritanWith(config) => good_samaritan_component(config),
            ProtocolKind::Wakeup => ComponentSpec::named("wakeup"),
            ProtocolKind::RoundRobin => ComponentSpec::named("round-robin"),
            ProtocolKind::SingleFrequency => ComponentSpec::named("single-frequency"),
        }
    }

    /// Runs one trial of this protocol on `scenario` with `seed`.
    #[deprecated(
        since = "0.2.0",
        note = "use `Sim::from_scenario(scenario, kind.to_component())?.run_one(seed)`"
    )]
    pub fn run_trial(&self, scenario: &Scenario, seed: u64) -> SyncOutcome {
        Sim::from_scenario(scenario, self.to_component())
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"))
            .run_one(seed)
    }

    /// A short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Trapdoor | ProtocolKind::TrapdoorWith(_) => "trapdoor",
            ProtocolKind::GoodSamaritan | ProtocolKind::GoodSamaritanWith(_) => "good-samaritan",
            ProtocolKind::Wakeup => "wakeup",
            ProtocolKind::RoundRobin => "round-robin",
            ProtocolKind::SingleFrequency => "single-frequency",
        }
    }
}

impl From<ProtocolKind> for ComponentSpec {
    fn from(kind: ProtocolKind) -> Self {
        kind.to_component()
    }
}

impl From<&ProtocolKind> for ComponentSpec {
    fn from(kind: &ProtocolKind) -> Self {
        kind.to_component()
    }
}

/// Executes batches of independent seeded trials on a worker pool.
///
/// The worker count defaults to the machine's available parallelism and can
/// be overridden with [`BatchRunner::with_workers`] or the `WSYNC_THREADS`
/// environment variable (useful to pin CI runs or A/B serial vs parallel).
/// Results never depend on the worker count — see the module docs.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    workers: usize,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

impl BatchRunner {
    /// A runner using every available core (or `WSYNC_THREADS` if set).
    pub fn new() -> Self {
        let workers = std::env::var("WSYNC_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        BatchRunner { workers }
    }

    /// A runner that executes trials one after another on the calling
    /// thread. Useful as the reference side of determinism checks.
    pub fn serial() -> Self {
        BatchRunner { workers: 1 }
    }

    /// A runner with an explicit worker count (at least 1).
    pub fn with_workers(workers: usize) -> Self {
        BatchRunner {
            workers: workers.max(1),
        }
    }

    /// The number of worker threads this runner fans trials across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `trial` to every seed in `seeds` and returns the results in
    /// seed order.
    ///
    /// This is the generic core: `trial` may produce any `Send` value, so
    /// experiments whose per-trial result is not a [`SyncOutcome`] (the
    /// broadcast-weight scan, the two-node rendezvous game) parallelize
    /// through the same pool. Work is handed out dynamically (an atomic
    /// cursor), so uneven trial costs don't leave workers idle.
    pub fn map<T, F>(&self, seeds: Range<u64>, trial: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        let count = usize::try_from(seeds.end.saturating_sub(seeds.start))
            .expect("seed range length exceeds addressable memory");
        let workers = self.workers.min(count);
        if workers <= 1 {
            return seeds.map(trial).collect();
        }

        let next = AtomicU64::new(seeds.start);
        let (tx, rx) = mpsc::channel::<(u64, T)>();
        thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let trial = &trial;
                let end = seeds.end;
                scope.spawn(move || loop {
                    let seed = next.fetch_add(1, Ordering::Relaxed);
                    if seed >= end {
                        break;
                    }
                    if tx.send((seed, trial(seed))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
            for (seed, value) in rx {
                slots[(seed - seeds.start) as usize] = Some(value);
            }
            slots
                .into_iter()
                .map(|slot| slot.expect("every seed produces exactly one result"))
                .collect()
        })
    }

    /// Runs `trial(scenario, seed)` for every seed and returns the outcomes
    /// in seed order. Use this for bespoke trials (custom protocol
    /// factories, wrappers such as the fault-tolerance crash harness).
    pub fn run_with<F>(&self, scenario: &Scenario, seeds: Range<u64>, trial: F) -> Vec<SyncOutcome>
    where
        F: Fn(&Scenario, u64) -> SyncOutcome + Sync,
    {
        self.map(seeds, |seed| trial(scenario, seed))
    }

    /// Runs `protocol` on `scenario` for every seed and returns the
    /// outcomes in seed order.
    #[deprecated(
        since = "0.2.0",
        note = "use `Sim::from_scenario(scenario, protocol.to_component())?.seeds(seeds).run(&runner)`"
    )]
    pub fn run(
        &self,
        scenario: &Scenario,
        protocol: &ProtocolKind,
        seeds: Range<u64>,
    ) -> Vec<SyncOutcome> {
        Sim::from_scenario(scenario, protocol.to_component())
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"))
            .seeds(seeds)
            .run(self)
    }

    /// Runs `protocol` on `scenario` for every seed and folds the outcomes
    /// directly into [`BatchStats`].
    #[deprecated(
        since = "0.2.0",
        note = "use `Sim::from_scenario(scenario, protocol.to_component())?.seeds(seeds).run_stats(&runner)`"
    )]
    pub fn run_stats(
        &self,
        scenario: &Scenario,
        protocol: &ProtocolKind,
        seeds: Range<u64>,
    ) -> BatchStats {
        #[allow(deprecated)]
        BatchStats::aggregate(&self.run(scenario, protocol, seeds))
    }
}

/// Aggregate statistics over a batch of [`SyncOutcome`]s.
///
/// The folds are performed serially over the seed-ordered outcome vector,
/// so a parallel batch produces bit-identical statistics to a serial loop.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// Number of trials aggregated.
    pub trials: u64,
    /// Trials in which every node synchronized.
    pub synced: u64,
    /// Trials that ended with exactly one leader.
    pub single_leader: u64,
    /// Trials that were clean: all synced, one leader, no safety violation.
    pub clean: u64,
    /// Total number of property violations across all trials.
    pub total_violations: u64,
    /// Trials in which every property (including liveness) held.
    pub all_hold: u64,
    /// Summary of the worst per-node rounds-to-synchronization, over the
    /// trials where every node synchronized (the Theorem 10 quantity).
    pub rounds_to_sync: Summary,
    /// Summary of the global completion round, over the trials where every
    /// node synchronized.
    pub completion_rounds: Summary,
}

impl BatchStats {
    /// Folds a slice of outcomes (in seed order) into aggregate statistics.
    pub fn aggregate(outcomes: &[SyncOutcome]) -> Self {
        let mut rounds = Vec::new();
        let mut completions = Vec::new();
        let mut synced = 0u64;
        let mut single_leader = 0u64;
        let mut clean = 0u64;
        let mut all_hold = 0u64;
        let mut total_violations = 0u64;
        for outcome in outcomes {
            if outcome.result.all_synchronized {
                synced += 1;
            }
            if outcome.leaders == 1 {
                single_leader += 1;
            }
            if outcome.is_clean() {
                clean += 1;
            }
            if outcome.properties.all_hold() {
                all_hold += 1;
            }
            total_violations += outcome.properties.total_violations;
            if let Some(r) = outcome.max_rounds_to_sync() {
                rounds.push(r as f64);
            }
            if let Some(r) = outcome.completion_round() {
                completions.push(r as f64);
            }
        }
        BatchStats {
            trials: outcomes.len() as u64,
            synced,
            single_leader,
            clean,
            total_violations,
            all_hold,
            rounds_to_sync: Summary::from_slice(&rounds),
            completion_rounds: Summary::from_slice(&completions),
        }
    }

    /// Fraction of trials in which every node synchronized.
    pub fn sync_rate(&self) -> f64 {
        self.rate(self.synced)
    }

    /// Fraction of trials that ended with exactly one leader.
    pub fn single_leader_rate(&self) -> f64 {
        self.rate(self.single_leader)
    }

    /// Fraction of clean trials.
    pub fn clean_rate(&self) -> f64 {
        self.rate(self.clean)
    }

    fn rate(&self, numerator: u64) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            numerator as f64 / self.trials as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new("trapdoor", 8, 8, 2).with_adversary("random")
    }

    #[test]
    fn parallel_results_equal_serial_results() {
        let sim = Sim::from_spec(&spec()).unwrap().seeds(0..12);
        let serial = sim.run(&BatchRunner::serial());
        let parallel = sim.run(&BatchRunner::with_workers(4));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn batch_matches_direct_sim_calls() {
        let sim = Sim::from_spec(&spec()).unwrap().seeds(5..9);
        let batch = sim.run(&BatchRunner::with_workers(3));
        let direct: Vec<_> = (5..9).map(|seed| sim.run_one(seed)).collect();
        assert_eq!(batch, direct);
    }

    #[test]
    fn map_returns_results_in_seed_order() {
        let runner = BatchRunner::with_workers(8);
        let values = runner.map(10..200, |seed| seed * seed);
        assert_eq!(values.len(), 190);
        for (i, v) in values.iter().enumerate() {
            let seed = 10 + i as u64;
            assert_eq!(*v, seed * seed);
        }
    }

    #[test]
    fn empty_seed_range_yields_empty_batch() {
        let outcomes = Sim::from_spec(&spec())
            .unwrap()
            .seeds(7..7)
            .run(&BatchRunner::new());
        assert!(outcomes.is_empty());
        let stats = BatchStats::aggregate(&outcomes);
        assert_eq!(stats.trials, 0);
        assert_eq!(stats.sync_rate(), 0.0);
        assert_eq!(stats.rounds_to_sync.count, 0);
    }

    #[test]
    fn stats_fold_counts_clean_runs() {
        let stats = Sim::from_spec(&spec())
            .unwrap()
            .seeds(0..8)
            .run_stats(&BatchRunner::new());
        assert_eq!(stats.trials, 8);
        assert!(stats.synced >= stats.clean);
        assert!(stats.single_leader >= stats.clean);
        assert!(stats.rounds_to_sync.count as u64 <= stats.trials);
        assert!(stats.sync_rate() > 0.5);
        // completion round is never later than observed rounds, and the
        // per-node worst never exceeds the completion round
        assert!(stats.rounds_to_sync.max <= stats.completion_rounds.max);
    }

    #[test]
    fn every_protocol_kind_maps_onto_the_registry() {
        let scenario = Scenario::new(4, 8, 1).with_adversary("random");
        let kinds = [
            ProtocolKind::Trapdoor,
            ProtocolKind::TrapdoorWith(TrapdoorConfig::new(4, 8, 1)),
            ProtocolKind::GoodSamaritan,
            ProtocolKind::GoodSamaritanWith(GoodSamaritanConfig::new(4, 8, 1)),
            ProtocolKind::Wakeup,
            ProtocolKind::RoundRobin,
            ProtocolKind::SingleFrequency,
        ];
        for kind in &kinds {
            let sim = Sim::from_scenario(&scenario, kind.to_component()).unwrap();
            let outcomes = sim.seeds(0..2).run(&BatchRunner::with_workers(2));
            assert_eq!(outcomes.len(), 2);
            assert!(!kind.name().is_empty());
            assert_eq!(kind.to_component().name(), kind.name());
            // the deprecated wrappers produce identical outcomes
            #[allow(deprecated)]
            let legacy = kind.run_trial(&scenario, 0);
            assert_eq!(outcomes[0], legacy);
            #[allow(deprecated)]
            let legacy_batch = BatchRunner::with_workers(2).run(&scenario, kind, 0..2);
            assert_eq!(outcomes, legacy_batch);
        }
    }

    #[test]
    fn worker_count_clamps_and_env_is_optional() {
        assert_eq!(BatchRunner::with_workers(0).workers(), 1);
        assert_eq!(BatchRunner::serial().workers(), 1);
        assert!(BatchRunner::new().workers() >= 1);
    }
}
