//! Parallel Monte-Carlo trial execution.
//!
//! Every experiment behind the paper's figures and theorem checks boils
//! down to the same shape: run many *independent* executions of a
//! scenario — one per seed — and fold the per-trial [`SyncOutcome`]s
//! into aggregate statistics. In the round-synchronous model each trial is
//! a pure function of `(spec, seed)` (every randomness consumer draws
//! from its own [`SimRng`](wsync_radio::rng::SimRng) stream derived from
//! the master seed), so the trials are embarrassingly parallel.
//!
//! [`BatchRunner`] fans trials across a pool of OS threads and returns the
//! results **in seed order**, which makes parallel execution
//! indistinguishable from serial execution:
//!
//! * determinism — trial `i`'s result depends only on `(spec, seed_i)`,
//!   never on scheduling, and
//! * fold stability — aggregation happens *after* the results are back in
//!   seed order, so every downstream statistic is bit-identical to what a
//!   `for seed in seeds` loop would have produced.
//!
//! [`BatchStats`] provides the folds the experiments share (sync rate,
//! single-leader rate, clean rate, violation counts, rounds-to-sync and
//! completion-round summaries); bespoke folds can iterate the returned
//! outcome vector directly.
//!
//! # Example
//!
//! ```
//! use wsync_core::batch::{BatchRunner, BatchStats};
//! use wsync_core::sim::Sim;
//! use wsync_core::spec::ScenarioSpec;
//!
//! let spec = ScenarioSpec::new("trapdoor", 8, 8, 2).with_adversary("random");
//! let stats = Sim::from_spec(&spec)?
//!     .seeds(0..8)
//!     .run_stats(&BatchRunner::new());
//! assert_eq!(stats.trials, 8);
//! assert!(stats.sync_rate() > 0.9);
//! # Ok::<(), wsync_core::spec::SpecError>(())
//! ```

// lint:allow(nondeterministic-iteration): the reorder buffer below is drained by keyed remove(&expected) in ascending seed order; its iteration order is never observed
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::thread;

use wsync_stats::{OnlineStats, Summary};

use crate::good_samaritan::GoodSamaritanConfig;
use crate::report::SyncOutcome;
use crate::runner::{good_samaritan_component, trapdoor_component, Scenario};
use crate::sim::Sim;
use crate::spec::ComponentSpec;
use crate::trapdoor::TrapdoorConfig;

/// Typed shorthand for the built-in protocols, optionally with an explicit
/// configuration.
///
/// Like [`AdversaryKind`](crate::runner::AdversaryKind), this enum predates
/// the open [`registry`](crate::registry): it remains as a typo-proof way
/// to name a built-in protocol and converts into the registry's
/// [`ComponentSpec`] form via [`Into`]. Protocols added by downstream
/// crates have no variant here — address them by name through
/// [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ProtocolKind {
    /// The Trapdoor Protocol with default constants.
    #[default]
    Trapdoor,
    /// The Trapdoor Protocol with an explicit configuration.
    TrapdoorWith(TrapdoorConfig),
    /// The Good Samaritan Protocol with default constants.
    GoodSamaritan,
    /// The Good Samaritan Protocol with an explicit configuration.
    GoodSamaritanWith(GoodSamaritanConfig),
    /// The multi-frequency wake-up-style baseline.
    Wakeup,
    /// The deterministic round-robin hopping baseline.
    RoundRobin,
    /// The single-frequency Trapdoor baseline.
    SingleFrequency,
}

impl ProtocolKind {
    /// The registry component this variant denotes.
    pub fn to_component(&self) -> ComponentSpec {
        match self {
            ProtocolKind::Trapdoor => ComponentSpec::named("trapdoor"),
            ProtocolKind::TrapdoorWith(config) => trapdoor_component(config),
            ProtocolKind::GoodSamaritan => ComponentSpec::named("good-samaritan"),
            ProtocolKind::GoodSamaritanWith(config) => good_samaritan_component(config),
            ProtocolKind::Wakeup => ComponentSpec::named("wakeup"),
            ProtocolKind::RoundRobin => ComponentSpec::named("round-robin"),
            ProtocolKind::SingleFrequency => ComponentSpec::named("single-frequency"),
        }
    }

    /// Runs one trial of this protocol on `scenario` with `seed`.
    #[deprecated(
        since = "0.2.0",
        note = "use `Sim::from_scenario(scenario, kind.to_component())?.run_one(seed)`"
    )]
    pub fn run_trial(&self, scenario: &Scenario, seed: u64) -> SyncOutcome {
        Sim::from_scenario(scenario, self.to_component())
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"))
            .run_one(seed)
    }

    /// A short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Trapdoor | ProtocolKind::TrapdoorWith(_) => "trapdoor",
            ProtocolKind::GoodSamaritan | ProtocolKind::GoodSamaritanWith(_) => "good-samaritan",
            ProtocolKind::Wakeup => "wakeup",
            ProtocolKind::RoundRobin => "round-robin",
            ProtocolKind::SingleFrequency => "single-frequency",
        }
    }
}

impl From<ProtocolKind> for ComponentSpec {
    fn from(kind: ProtocolKind) -> Self {
        kind.to_component()
    }
}

impl From<&ProtocolKind> for ComponentSpec {
    fn from(kind: &ProtocolKind) -> Self {
        kind.to_component()
    }
}

/// How many seeds a worker may run ahead of the in-order fold cursor in
/// [`BatchRunner::try_map_each`] before stalling. Bounds the collector's
/// reorder buffer (and therefore streaming memory) at `O(window)` results
/// while staying far wider than any realistic cost imbalance needs.
pub const REORDER_WINDOW: u64 = 1024;

/// Executes batches of independent seeded trials on a worker pool.
///
/// The worker count defaults to the machine's available parallelism and can
/// be overridden with [`BatchRunner::with_workers`] or the `WSYNC_THREADS`
/// environment variable (useful to pin CI runs or A/B serial vs parallel).
/// Results never depend on the worker count — see the module docs.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    workers: usize,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

impl BatchRunner {
    /// A runner using every available core (or `WSYNC_THREADS` if set).
    pub fn new() -> Self {
        let workers = std::env::var("WSYNC_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        BatchRunner { workers }
    }

    /// A runner that executes trials one after another on the calling
    /// thread. Useful as the reference side of determinism checks.
    pub fn serial() -> Self {
        BatchRunner { workers: 1 }
    }

    /// A runner with an explicit worker count (at least 1).
    pub fn with_workers(workers: usize) -> Self {
        BatchRunner {
            workers: workers.max(1),
        }
    }

    /// The number of worker threads this runner fans trials across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `trial` to every seed in `seeds` and returns the results in
    /// seed order.
    ///
    /// This is the collecting form of [`try_map_each`](Self::try_map_each)
    /// (and is implemented on it): `trial` may produce any `Send` value, so
    /// experiments whose per-trial result is not a [`SyncOutcome`] (the
    /// broadcast-weight scan, the two-node rendezvous game) parallelize
    /// through the same pool. Work is handed out dynamically (an atomic
    /// cursor), so uneven trial costs don't leave workers idle.
    pub fn map<T, F>(&self, seeds: Range<u64>, trial: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        let count = usize::try_from(seeds.end.saturating_sub(seeds.start))
            // lint:allow(panicky-library): a seed range longer than the address space cannot be collected into a Vec anyway; failing at the cast beats a capacity overflow later
            .expect("seed range length exceeds addressable memory");
        let mut out: Vec<T> = Vec::with_capacity(count);
        let result: Result<(), std::convert::Infallible> =
            self.try_map_each(seeds, |seed| Ok(trial(seed)), |_, value| out.push(value));
        match result {
            Ok(()) => out,
            Err(never) => match never {},
        }
    }

    /// The streaming worker-pool core shared by [`map`](Self::map) and the
    /// sweep layer: applies `trial` to every seed in `seeds` on the pool
    /// and invokes `each` with the results **in seed order**, each exactly
    /// once, as soon as its turn arrives.
    ///
    /// Two properties make this the substrate for arbitrarily large
    /// batches:
    ///
    /// * **Bounded reordering.** Finished trials waiting for an earlier,
    ///   slower seed are the only results held; workers that run more than
    ///   [`REORDER_WINDOW`] seeds ahead of the in-order
    ///   cursor stall (yielding) until it catches up, so memory stays
    ///   `O(window)` even when later seeds are much cheaper than an early
    ///   one — e.g. a resumed sweep whose only missing trial is the first.
    /// * **Fail fast.** The first `Err` a trial returns stops the pool
    ///   (remaining workers exit at the next seed claim or stall check)
    ///   and is returned; `each` is never called past the last in-order
    ///   success.
    pub fn try_map_each<T, E, F, G>(
        &self,
        seeds: Range<u64>,
        trial: F,
        mut each: G,
    ) -> Result<(), E>
    where
        T: Send,
        E: Send,
        F: Fn(u64) -> Result<T, E> + Sync,
        G: FnMut(u64, T),
    {
        let count = usize::try_from(seeds.end.saturating_sub(seeds.start))
            // lint:allow(panicky-library): on 64-bit targets this cast cannot fail, and a >usize::MAX trial count could never finish; a precise panic beats silent truncation
            .expect("seed range length exceeds addressable memory");
        let workers = self.workers.min(count);
        if workers <= 1 {
            for seed in seeds {
                each(seed, trial(seed)?);
            }
            return Ok(());
        }

        let next = AtomicU64::new(seeds.start);
        // The next seed the collector will fold, published for backpressure.
        let cursor = AtomicU64::new(seeds.start);
        let stop = AtomicBool::new(false);
        // Stalled workers sleep on this condvar instead of spinning; the
        // collector pings it whenever the cursor advances (and the error
        // path on stop). `wait_timeout` guards against any missed wakeup.
        let stall = (Mutex::new(()), Condvar::new());
        let first_error: Mutex<Option<E>> = Mutex::new(None);
        let (tx, rx) = mpsc::channel::<(u64, T)>();
        thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let cursor = &cursor;
                let stop = &stop;
                let stall = &stall;
                let first_error = &first_error;
                let trial = &trial;
                let end = seeds.end;
                scope.spawn(move || {
                    // If this worker panics (a trial's .expect fires), the
                    // guard flips `stop` and wakes the stalled workers so
                    // the pool drains, the scope joins, and the panic
                    // propagates — instead of the cursor freezing and
                    // every other worker waiting on it forever.
                    struct PanicGuard<'a> {
                        stop: &'a AtomicBool,
                        stall: &'a (Mutex<()>, Condvar),
                    }
                    impl Drop for PanicGuard<'_> {
                        fn drop(&mut self) {
                            if thread::panicking() {
                                self.stop.store(true, Ordering::Relaxed);
                                let _guard = self.stall.0.lock().unwrap_or_else(|e| e.into_inner());
                                self.stall.1.notify_all();
                            }
                        }
                    }
                    let _panic_guard = PanicGuard { stop, stall };
                    // `seed - cursor` instead of `cursor + WINDOW`: the
                    // cursor never passes an unfolded seed, and the
                    // subtraction cannot overflow the way the addition
                    // does for seed ranges near u64::MAX.
                    let behind = |seed: u64| seed.saturating_sub(cursor.load(Ordering::Acquire));
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        // Checked claim, not fetch_add: a plain increment
                        // wraps past u64::MAX when `end == u64::MAX`, after
                        // which workers would claim seeds from 0 again and
                        // never terminate.
                        let claim = next.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                            (n < end).then(|| n + 1)
                        });
                        let Ok(seed) = claim else {
                            break;
                        };
                        // Backpressure: don't run far ahead of the in-order
                        // cursor. The worker holding the cursor's own seed
                        // never stalls, so progress is guaranteed.
                        while behind(seed) >= REORDER_WINDOW {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            // The gate guards `()` — a panicking holder
                            // cannot leave it inconsistent, so poisoning
                            // is recovered rather than propagated (the
                            // PanicGuard already re-raises the panic).
                            let guard = stall.0.lock().unwrap_or_else(|e| e.into_inner());
                            // re-check under the lock so a cursor advance
                            // between the check and the wait is not missed
                            if behind(seed) < REORDER_WINDOW || stop.load(Ordering::Relaxed) {
                                continue;
                            }
                            let _ = stall
                                .1
                                .wait_timeout(guard, std::time::Duration::from_millis(20))
                                .unwrap_or_else(|e| e.into_inner());
                        }
                        match trial(seed) {
                            Ok(value) => {
                                if tx.send((seed, value)).is_err() {
                                    break;
                                }
                            }
                            Err(e) => {
                                stop.store(true, Ordering::Relaxed);
                                {
                                    // The slot write is a single assignment;
                                    // a poisoned lock cannot hide a torn one.
                                    let mut slot =
                                        first_error.lock().unwrap_or_else(|e| e.into_inner());
                                    if slot.is_none() {
                                        *slot = Some(e);
                                    }
                                }
                                // wake any stalled workers so they observe stop
                                let _guard = stall.0.lock().unwrap_or_else(|e| e.into_inner());
                                stall.1.notify_all();
                                break;
                            }
                        }
                    }
                });
            }
            drop(tx);

            // Re-order results back into seed order, handing each to the
            // caller the moment its turn comes; only the out-of-order
            // window is ever held. The map is drained strictly by
            // `remove(&expected)` with `expected` counting up, so hashing
            // gives O(1) hot-loop ops without any order ever leaking out.
            // lint:allow(nondeterministic-iteration): drained by keyed remove(&expected) in ascending seed order; iteration order is never observed
            let mut pending: HashMap<u64, T> = HashMap::new();
            let mut expected = seeds.start;
            for (seed, value) in rx {
                if seed == expected {
                    each(seed, value);
                    expected += 1;
                    while let Some(value) = pending.remove(&(expected)) {
                        each(expected, value);
                        expected += 1;
                    }
                    cursor.store(expected, Ordering::Release);
                    // wake workers stalled on the window
                    let _guard = stall.0.lock().unwrap_or_else(|e| e.into_inner());
                    stall.1.notify_all();
                } else {
                    pending.insert(seed, value);
                }
            }
        });
        match first_error.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Runs `trial(scenario, seed)` for every seed and returns the outcomes
    /// in seed order. Use this for bespoke trials (custom protocol
    /// factories, wrappers such as the fault-tolerance crash harness).
    pub fn run_with<F>(&self, scenario: &Scenario, seeds: Range<u64>, trial: F) -> Vec<SyncOutcome>
    where
        F: Fn(&Scenario, u64) -> SyncOutcome + Sync,
    {
        self.map(seeds, |seed| trial(scenario, seed))
    }

    /// Runs `protocol` on `scenario` for every seed and returns the
    /// outcomes in seed order.
    #[deprecated(
        since = "0.2.0",
        note = "use `Sim::from_scenario(scenario, protocol.to_component())?.seeds(seeds).run(&runner)`"
    )]
    pub fn run(
        &self,
        scenario: &Scenario,
        protocol: &ProtocolKind,
        seeds: Range<u64>,
    ) -> Vec<SyncOutcome> {
        Sim::from_scenario(scenario, protocol.to_component())
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"))
            .seeds(seeds)
            .run(self)
    }

    /// Runs `protocol` on `scenario` for every seed and folds the outcomes
    /// directly into [`BatchStats`].
    #[deprecated(
        since = "0.2.0",
        note = "use `Sim::from_scenario(scenario, protocol.to_component())?.seeds(seeds).run_stats(&runner)`"
    )]
    pub fn run_stats(
        &self,
        scenario: &Scenario,
        protocol: &ProtocolKind,
        seeds: Range<u64>,
    ) -> BatchStats {
        #[allow(deprecated)]
        BatchStats::aggregate(&self.run(scenario, protocol, seeds))
    }
}

/// Aggregate statistics over a batch of [`SyncOutcome`]s.
///
/// The folds are performed serially over the seed-ordered outcome vector,
/// so a parallel batch produces bit-identical statistics to a serial loop.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// Number of trials aggregated.
    pub trials: u64,
    /// Trials in which every node synchronized.
    pub synced: u64,
    /// Trials that ended with exactly one leader.
    pub single_leader: u64,
    /// Trials that were clean: all synced, one leader, no safety violation.
    pub clean: u64,
    /// Total number of property violations across all trials.
    pub total_violations: u64,
    /// Trials in which every property (including liveness) held.
    pub all_hold: u64,
    /// Summary of the worst per-node rounds-to-synchronization, over the
    /// trials where every node synchronized (the Theorem 10 quantity).
    pub rounds_to_sync: Summary,
    /// Summary of the global completion round, over the trials where every
    /// node synchronized.
    pub completion_rounds: Summary,
}

impl BatchStats {
    /// Folds a slice of outcomes (in seed order) into aggregate statistics.
    pub fn aggregate(outcomes: &[SyncOutcome]) -> Self {
        let mut fold = BatchStatsFold::new();
        for outcome in outcomes {
            fold.push(outcome);
        }
        fold.finish()
    }

    /// Fraction of trials in which every node synchronized.
    pub fn sync_rate(&self) -> f64 {
        self.rate(self.synced)
    }

    /// Fraction of trials that ended with exactly one leader.
    pub fn single_leader_rate(&self) -> f64 {
        self.rate(self.single_leader)
    }

    /// Fraction of clean trials.
    pub fn clean_rate(&self) -> f64 {
        self.rate(self.clean)
    }

    fn rate(&self, numerator: u64) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            numerator as f64 / self.trials as f64
        }
    }
}

/// Incremental, constant-memory accumulator for [`BatchStats`].
///
/// Pushing outcomes **in seed order** and calling [`finish`](Self::finish)
/// produces statistics bit-identical to
/// [`BatchStats::aggregate`] over the same slice (which is implemented as
/// exactly this fold): the summaries run on the same online Welford
/// accumulator in the same order, so no intermediate vector of outcomes is
/// ever required. This is what lets the sweep layer aggregate arbitrarily
/// large Monte-Carlo runs while holding only one outcome at a time.
#[derive(Debug, Clone)]
pub struct BatchStatsFold {
    trials: u64,
    synced: u64,
    single_leader: u64,
    clean: u64,
    total_violations: u64,
    all_hold: u64,
    rounds_to_sync: OnlineStats,
    completion_rounds: OnlineStats,
}

impl Default for BatchStatsFold {
    fn default() -> Self {
        BatchStatsFold::new()
    }
}

impl BatchStatsFold {
    /// An empty accumulator.
    pub fn new() -> Self {
        BatchStatsFold {
            trials: 0,
            synced: 0,
            single_leader: 0,
            clean: 0,
            total_violations: 0,
            all_hold: 0,
            // `OnlineStats::new()`, not `default()`: the summaries of an
            // empty fold must match `Summary::from_slice(&[])` (min = +inf,
            // max = -inf), which the derived zeroed Default would not.
            rounds_to_sync: OnlineStats::new(),
            completion_rounds: OnlineStats::new(),
        }
    }

    /// Folds one outcome. Call in seed order for bit-identical equivalence
    /// with [`BatchStats::aggregate`].
    pub fn push(&mut self, outcome: &SyncOutcome) {
        self.trials += 1;
        if outcome.result.all_synchronized {
            self.synced += 1;
        }
        if outcome.leaders == 1 {
            self.single_leader += 1;
        }
        if outcome.is_clean() {
            self.clean += 1;
        }
        if outcome.properties.all_hold() {
            self.all_hold += 1;
        }
        self.total_violations += outcome.properties.total_violations;
        if let Some(r) = outcome.max_rounds_to_sync() {
            self.rounds_to_sync.push(r as f64);
        }
        if let Some(r) = outcome.completion_round() {
            self.completion_rounds.push(r as f64);
        }
    }

    /// Number of outcomes folded so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The aggregate statistics over everything pushed so far.
    pub fn finish(&self) -> BatchStats {
        BatchStats {
            trials: self.trials,
            synced: self.synced,
            single_leader: self.single_leader,
            clean: self.clean,
            total_violations: self.total_violations,
            all_hold: self.all_hold,
            rounds_to_sync: self.rounds_to_sync.summary(),
            completion_rounds: self.completion_rounds.summary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new("trapdoor", 8, 8, 2).with_adversary("random")
    }

    #[test]
    fn parallel_results_equal_serial_results() {
        let sim = Sim::from_spec(&spec()).unwrap().seeds(0..12);
        let serial = sim.run(&BatchRunner::serial());
        let parallel = sim.run(&BatchRunner::with_workers(4));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn batch_matches_direct_sim_calls() {
        let sim = Sim::from_spec(&spec()).unwrap().seeds(5..9);
        let batch = sim.run(&BatchRunner::with_workers(3));
        let direct: Vec<_> = (5..9).map(|seed| sim.run_one(seed)).collect();
        assert_eq!(batch, direct);
    }

    #[test]
    fn map_returns_results_in_seed_order() {
        let runner = BatchRunner::with_workers(8);
        let values = runner.map(10..200, |seed| seed * seed);
        assert_eq!(values.len(), 190);
        for (i, v) in values.iter().enumerate() {
            let seed = 10 + i as u64;
            assert_eq!(*v, seed * seed);
        }
    }

    #[test]
    fn try_map_each_streams_in_order_and_stops_on_error() {
        let runner = BatchRunner::with_workers(4);
        let mut seen: Vec<(u64, u64)> = Vec::new();
        runner
            .try_map_each(
                5..105,
                |seed| Ok::<_, &str>(seed * 2),
                |seed, value| seen.push((seed, value)),
            )
            .unwrap();
        assert_eq!(seen.len(), 100);
        for (i, (seed, value)) in seen.iter().enumerate() {
            assert_eq!(*seed, 5 + i as u64, "results must arrive in seed order");
            assert_eq!(*value, seed * 2);
        }
        // a failing trial surfaces as the returned error and stops the pool
        let err = runner
            .try_map_each(
                0..10_000,
                |seed| if seed == 37 { Err("boom") } else { Ok(seed) },
                |_, _| {},
            )
            .unwrap_err();
        assert_eq!(err, "boom");
    }

    #[test]
    fn a_slow_early_seed_stalls_the_window_without_breaking_order() {
        // Seed 0 finishes long after thousands of later (cheap) seeds. The
        // range deliberately exceeds REORDER_WINDOW, so fast workers must
        // actually hit the backpressure stall and sleep until the slow
        // trial folds — exercising the stall/wakeup path — and the
        // callback must still observe strict seed order throughout.
        const TOTAL: u64 = 3 * REORDER_WINDOW;
        let runner = BatchRunner::with_workers(8);
        let mut seen = Vec::new();
        runner
            .try_map_each(
                0..TOTAL,
                |seed| {
                    if seed == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                    }
                    Ok::<_, ()>(seed)
                },
                |seed, _| seen.push(seed),
            )
            .unwrap();
        assert_eq!(seen, (0..TOTAL).collect::<Vec<u64>>());
        // the error path also crosses the stall: a failure after the
        // window boundary still surfaces and terminates every worker
        let err = runner
            .try_map_each(
                0..TOTAL,
                |seed| {
                    if seed == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Err("early boom")
                    } else {
                        Ok(seed)
                    }
                },
                |_, _| {},
            )
            .unwrap_err();
        assert_eq!(err, "early boom");
    }

    #[test]
    fn seed_ranges_near_u64_max_stream_without_overflow() {
        // The stall threshold must be computed as seed - cursor, not
        // cursor + WINDOW: the addition overflows for ranges near
        // u64::MAX (panic in debug, all-workers deadlock in release).
        let runner = BatchRunner::with_workers(4);
        let start = u64::MAX - 3000;
        let mut expected = start;
        runner
            .try_map_each(start..u64::MAX, Ok::<_, ()>, |seed, _| {
                assert_eq!(seed, expected);
                expected += 1;
            })
            .unwrap();
        assert_eq!(expected, u64::MAX);
    }

    #[test]
    fn panicking_trial_propagates_instead_of_hanging_the_pool() {
        // The panicking worker's guard must flip `stop` and wake the
        // stalled workers, so the scope joins and the panic surfaces —
        // a batch wider than REORDER_WINDOW used to hang forever here.
        let runner = BatchRunner::with_workers(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runner.map(0..3 * REORDER_WINDOW, |seed| {
                if seed == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    panic!("trial panic");
                }
                seed
            })
        }));
        assert!(result.is_err(), "the trial panic must propagate");
    }

    #[test]
    fn empty_seed_range_yields_empty_batch() {
        let outcomes = Sim::from_spec(&spec())
            .unwrap()
            .seeds(7..7)
            .run(&BatchRunner::new());
        assert!(outcomes.is_empty());
        let stats = BatchStats::aggregate(&outcomes);
        assert_eq!(stats.trials, 0);
        assert_eq!(stats.sync_rate(), 0.0);
        assert_eq!(stats.rounds_to_sync.count, 0);
    }

    #[test]
    fn stats_fold_counts_clean_runs() {
        let stats = Sim::from_spec(&spec())
            .unwrap()
            .seeds(0..8)
            .run_stats(&BatchRunner::new());
        assert_eq!(stats.trials, 8);
        assert!(stats.synced >= stats.clean);
        assert!(stats.single_leader >= stats.clean);
        assert!(stats.rounds_to_sync.count as u64 <= stats.trials);
        assert!(stats.sync_rate() > 0.5);
        // completion round is never later than observed rounds, and the
        // per-node worst never exceeds the completion round
        assert!(stats.rounds_to_sync.max <= stats.completion_rounds.max);
    }

    #[test]
    fn every_protocol_kind_maps_onto_the_registry() {
        let scenario = Scenario::new(4, 8, 1).with_adversary("random");
        let kinds = [
            ProtocolKind::Trapdoor,
            ProtocolKind::TrapdoorWith(TrapdoorConfig::new(4, 8, 1)),
            ProtocolKind::GoodSamaritan,
            ProtocolKind::GoodSamaritanWith(GoodSamaritanConfig::new(4, 8, 1)),
            ProtocolKind::Wakeup,
            ProtocolKind::RoundRobin,
            ProtocolKind::SingleFrequency,
        ];
        for kind in &kinds {
            let sim = Sim::from_scenario(&scenario, kind.to_component()).unwrap();
            let outcomes = sim.seeds(0..2).run(&BatchRunner::with_workers(2));
            assert_eq!(outcomes.len(), 2);
            assert!(!kind.name().is_empty());
            assert_eq!(kind.to_component().name(), kind.name());
            // the deprecated wrappers produce identical outcomes
            #[allow(deprecated)]
            let legacy = kind.run_trial(&scenario, 0);
            assert_eq!(outcomes[0], legacy);
            #[allow(deprecated)]
            let legacy_batch = BatchRunner::with_workers(2).run(&scenario, kind, 0..2);
            assert_eq!(outcomes, legacy_batch);
            // the deprecated stats wrapper folds to identical aggregates
            #[allow(deprecated)]
            let legacy_stats = BatchRunner::with_workers(2).run_stats(&scenario, kind, 0..2);
            assert_eq!(legacy_stats, BatchStats::aggregate(&outcomes));
        }
    }

    #[test]
    fn incremental_fold_is_bit_identical_to_slice_aggregation() {
        let outcomes = Sim::from_spec(&spec())
            .unwrap()
            .seeds(0..10)
            .run(&BatchRunner::new());
        // reference: the historical Vec-collecting implementation
        let mut rounds = Vec::new();
        let mut completions = Vec::new();
        for outcome in &outcomes {
            if let Some(r) = outcome.max_rounds_to_sync() {
                rounds.push(r as f64);
            }
            if let Some(r) = outcome.completion_round() {
                completions.push(r as f64);
            }
        }
        let mut fold = BatchStatsFold::new();
        for outcome in &outcomes {
            fold.push(outcome);
        }
        assert_eq!(fold.trials(), 10);
        let folded = fold.finish();
        assert_eq!(folded, BatchStats::aggregate(&outcomes));
        assert_eq!(folded.rounds_to_sync, Summary::from_slice(&rounds));
        assert_eq!(folded.completion_rounds, Summary::from_slice(&completions));
        // an empty fold matches an empty aggregate exactly (min/max = ±inf)
        assert_eq!(BatchStatsFold::new().finish(), BatchStats::aggregate(&[]));
    }

    #[test]
    fn worker_count_clamps_and_env_is_optional() {
        assert_eq!(BatchRunner::with_workers(0).workers(), 1);
        assert_eq!(BatchRunner::serial().workers(), 1);
        assert!(BatchRunner::new().workers() >= 1);
    }
}
