//! The Trapdoor Protocol (Section 6).
//!
//! Every node starts as a *contender* and proceeds through `lg N` epochs
//! (Figure 1). In every round of epoch `e` a contender picks a frequency
//! uniformly at random from `[1..F′]` (`F′ = min(F, 2t)`) and broadcasts a
//! contender message — labelled with its timestamp `(rounds_active, uid)` —
//! with probability `2^e/(2N)`, otherwise it listens. A contender that
//! receives a contender message with a *larger* timestamp is knocked out
//! (the trapdoor opens) and from then on only listens on random frequencies
//! in `[1..F′]`. A contender that completes all `lg N` epochs becomes the
//! *leader*: it fixes the round numbering and thereafter broadcasts it with
//! probability 1/2 on a random frequency in `[1..F′]` every round. Any node
//! that receives a leader message adopts the numbering and is synchronized.
//!
//! Theorem 10: the protocol solves wireless synchronization in
//! `O(F/(F−t)·log²N + F·t/(F−t)·log N)` rounds with high probability.

mod config;

pub use config::{EpochSpec, TrapdoorConfig};

use rand::Rng;
use serde::{Deserialize, Serialize};

use wsync_radio::action::Action;
use wsync_radio::frequency::FrequencyBand;
use wsync_radio::message::Feedback;
use wsync_radio::node::ActivationInfo;
use wsync_radio::protocol::Protocol;
use wsync_radio::rng::SimRng;

use crate::timestamp::Timestamp;

/// Messages exchanged by the Trapdoor Protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrapdoorMsg {
    /// A contender announcing its timestamp.
    Contender {
        /// The sender's timestamp at the time of broadcast.
        timestamp: Timestamp,
    },
    /// The leader announcing the round numbering: the number assigned to the
    /// round in which this message is received.
    Leader {
        /// The round number of the current round under the leader's scheme.
        announced_round: u64,
    },
}

/// The role a Trapdoor node is currently playing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrapdoorRole {
    /// Still competing: proceeding through the epochs.
    Contender,
    /// Knocked out by a larger timestamp; listening for the leader.
    KnockedOut,
    /// Won the competition; disseminating the round numbering.
    Leader,
    /// Adopted the numbering scheme from the leader.
    Synchronized,
}

/// A node running the Trapdoor Protocol.
#[derive(Debug, Clone)]
pub struct TrapdoorProtocol {
    config: TrapdoorConfig,
    role: TrapdoorRole,
    timestamp: Timestamp,
    output: Option<u64>,
    band: FrequencyBand,
    activated: bool,
}

impl TrapdoorProtocol {
    /// Creates a protocol instance with the given configuration. The unique
    /// identifier is drawn when the node is activated.
    pub fn new(config: TrapdoorConfig) -> Self {
        TrapdoorProtocol {
            config,
            role: TrapdoorRole::Contender,
            timestamp: Timestamp::new(0, 0),
            output: None,
            band: FrequencyBand::new(config.num_frequencies.max(1)),
            activated: false,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrapdoorConfig {
        &self.config
    }

    /// The node's current role.
    pub fn role(&self) -> TrapdoorRole {
        self.role
    }

    /// Whether this node won the competition and became the leader.
    pub fn is_leader(&self) -> bool {
        self.role == TrapdoorRole::Leader
    }

    /// The node's current timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.timestamp
    }

    /// The probability with which this node would broadcast in its local
    /// round `local_round`, given its current role. This is the node's
    /// contribution to the *broadcast weight* `W(r)` of Lemma 9; the weight
    /// experiment (L9) sums it over all active nodes every round to verify
    /// that the total stays below `6F′`.
    pub fn broadcast_weight_at(&self, local_round: u64) -> f64 {
        match self.role {
            TrapdoorRole::Contender => match self.config.epoch_at(local_round) {
                Some((epoch, _)) => self.config.broadcast_probability(epoch),
                None => 0.5,
            },
            TrapdoorRole::Leader => self.config.leader_broadcast_probability,
            TrapdoorRole::KnockedOut | TrapdoorRole::Synchronized => 0.0,
        }
    }

    fn pick_frequency(&self, rng: &mut SimRng) -> wsync_radio::frequency::Frequency {
        self.band.sample_prefix(self.config.f_prime(), rng)
    }
}

impl Protocol for TrapdoorProtocol {
    type Msg = TrapdoorMsg;

    fn on_activate(&mut self, info: ActivationInfo, rng: &mut SimRng) {
        debug_assert_eq!(info.num_frequencies, self.config.num_frequencies);
        self.activated = true;
        self.band = FrequencyBand::new(info.num_frequencies.max(1));
        self.timestamp = Timestamp::new(0, Timestamp::draw_uid(self.config.upper_bound_n, rng));
    }

    fn choose_action(&mut self, local_round: u64, rng: &mut SimRng) -> Action<TrapdoorMsg> {
        // The timestamp counts the rounds the node has been active,
        // including the current one.
        self.timestamp.rounds_active = local_round + 1;
        let frequency = self.pick_frequency(rng);
        match self.role {
            TrapdoorRole::Contender => {
                let p = match self.config.epoch_at(local_round) {
                    Some((epoch, _)) => self.config.broadcast_probability(epoch),
                    // Past the final epoch (promotion happens at end of the
                    // previous round's feedback, so this is unreachable in
                    // practice); behave like the final epoch.
                    None => 0.5,
                };
                if rng.gen_bool(p) {
                    Action::broadcast(
                        frequency,
                        TrapdoorMsg::Contender {
                            timestamp: self.timestamp,
                        },
                    )
                } else {
                    Action::listen(frequency)
                }
            }
            TrapdoorRole::KnockedOut | TrapdoorRole::Synchronized => Action::listen(frequency),
            TrapdoorRole::Leader => {
                if rng.gen_bool(self.config.leader_broadcast_probability) {
                    Action::broadcast(
                        frequency,
                        TrapdoorMsg::Leader {
                            // Our output for the current round will be the
                            // previous output plus one (incremented at the
                            // end of the round), so announce that value.
                            announced_round: self.output.unwrap_or(0) + 1,
                        },
                    )
                } else {
                    Action::listen(frequency)
                }
            }
        }
    }

    fn on_feedback(
        &mut self,
        local_round: u64,
        feedback: Feedback<TrapdoorMsg>,
        _rng: &mut SimRng,
    ) {
        let was_synced = self.output.is_some();

        if let Feedback::Received(received) = &feedback {
            match received.payload {
                TrapdoorMsg::Contender { timestamp } => {
                    if self.role == TrapdoorRole::Contender && timestamp > self.timestamp {
                        self.role = TrapdoorRole::KnockedOut;
                    }
                }
                TrapdoorMsg::Leader { announced_round } => {
                    if self.role != TrapdoorRole::Leader && !was_synced {
                        self.role = TrapdoorRole::Synchronized;
                        self.output = Some(announced_round);
                    }
                }
            }
        }

        // A contender that has survived every epoch becomes the leader.
        if self.role == TrapdoorRole::Contender
            && local_round + 1 >= self.config.total_contention_rounds()
        {
            self.role = TrapdoorRole::Leader;
            if !was_synced {
                // The leader is free to choose any numbering scheme; it uses
                // the number of rounds it has been active.
                self.output = Some(local_round + 1);
            }
        }

        // Correctness: a node that already had a round number increments it.
        if was_synced {
            self.output = Some(self.output.expect("synced node has an output") + 1);
        }
    }

    fn output(&self) -> Option<u64> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsync_radio::frequency::Frequency;
    use wsync_radio::message::Received;
    use wsync_radio::node::NodeId;

    fn activated_protocol(seed: u64) -> (TrapdoorProtocol, SimRng) {
        let config = TrapdoorConfig::new(64, 8, 2);
        let mut p = TrapdoorProtocol::new(config);
        let mut rng = SimRng::from_seed(seed);
        p.on_activate(ActivationInfo::new(64, 8, 2), &mut rng);
        (p, rng)
    }

    fn contender_msg(rounds_active: u64, uid: u64) -> Feedback<TrapdoorMsg> {
        Feedback::Received(Received {
            sender: NodeId::new(9),
            frequency: Frequency::new(1),
            payload: TrapdoorMsg::Contender {
                timestamp: Timestamp::new(rounds_active, uid),
            },
        })
    }

    fn leader_msg(announced: u64) -> Feedback<TrapdoorMsg> {
        Feedback::Received(Received {
            sender: NodeId::new(9),
            frequency: Frequency::new(1),
            payload: TrapdoorMsg::Leader {
                announced_round: announced,
            },
        })
    }

    #[test]
    fn starts_as_contender_with_bottom_output() {
        let (p, _) = activated_protocol(1);
        assert_eq!(p.role(), TrapdoorRole::Contender);
        assert_eq!(p.output(), None);
        assert!(!p.is_leader());
        assert!(p.timestamp().uid >= 1);
    }

    #[test]
    fn actions_stay_within_f_prime() {
        let (mut p, mut rng) = activated_protocol(2);
        let f_prime = p.config().f_prime();
        for r in 0..200 {
            let action = p.choose_action(r, &mut rng);
            let freq = action.frequency().expect("contender never sleeps");
            assert!(freq.index() <= f_prime);
            p.on_feedback(
                r,
                Feedback::Silence {
                    frequency: Frequency::new(1),
                },
                &mut rng,
            );
        }
    }

    #[test]
    fn knocked_out_by_larger_timestamp_only() {
        let (mut p, mut rng) = activated_protocol(3);
        p.choose_action(0, &mut rng);
        // smaller timestamp: stays contender
        p.on_feedback(0, contender_msg(0, 0), &mut rng);
        assert_eq!(p.role(), TrapdoorRole::Contender);
        // larger timestamp: knocked out
        p.choose_action(1, &mut rng);
        p.on_feedback(1, contender_msg(1_000_000, u64::MAX), &mut rng);
        assert_eq!(p.role(), TrapdoorRole::KnockedOut);
        // knocked-out nodes only listen
        for r in 2..10 {
            let action = p.choose_action(r, &mut rng);
            assert!(action.is_listen());
            p.on_feedback(
                r,
                Feedback::Silence {
                    frequency: Frequency::new(1),
                },
                &mut rng,
            );
        }
        assert_eq!(p.output(), None);
    }

    #[test]
    fn adopts_leader_numbering_and_increments() {
        let (mut p, mut rng) = activated_protocol(4);
        p.choose_action(0, &mut rng);
        p.on_feedback(0, leader_msg(41), &mut rng);
        assert_eq!(p.role(), TrapdoorRole::Synchronized);
        assert_eq!(p.output(), Some(41));
        // Output increments each subsequent round (correctness).
        for r in 1..5 {
            p.choose_action(r, &mut rng);
            p.on_feedback(
                r,
                Feedback::Silence {
                    frequency: Frequency::new(1),
                },
                &mut rng,
            );
            assert_eq!(p.output(), Some(41 + r));
        }
    }

    #[test]
    fn knocked_out_node_still_adopts_leader() {
        let (mut p, mut rng) = activated_protocol(5);
        p.choose_action(0, &mut rng);
        p.on_feedback(0, contender_msg(999, 999), &mut rng);
        assert_eq!(p.role(), TrapdoorRole::KnockedOut);
        p.choose_action(1, &mut rng);
        p.on_feedback(1, leader_msg(7), &mut rng);
        assert_eq!(p.role(), TrapdoorRole::Synchronized);
        assert_eq!(p.output(), Some(7));
    }

    #[test]
    fn lone_contender_becomes_leader_after_all_epochs() {
        let (mut p, mut rng) = activated_protocol(6);
        let total = p.config().total_contention_rounds();
        for r in 0..total {
            p.choose_action(r, &mut rng);
            p.on_feedback(
                r,
                Feedback::Silence {
                    frequency: Frequency::new(1),
                },
                &mut rng,
            );
        }
        assert!(p.is_leader());
        assert_eq!(p.output(), Some(total));
        // Leader output keeps incrementing and the announced value matches
        // the output at the end of the round.
        let before = p.output().unwrap();
        let action = p.choose_action(total, &mut rng);
        if let Action::Broadcast {
            message: TrapdoorMsg::Leader { announced_round },
            ..
        } = action
        {
            assert_eq!(announced_round, before + 1);
        }
        p.on_feedback(
            total,
            Feedback::Silence {
                frequency: Frequency::new(1),
            },
            &mut rng,
        );
        assert_eq!(p.output(), Some(before + 1));
    }

    #[test]
    fn leader_ignores_other_leader_messages() {
        let (mut p, mut rng) = activated_protocol(7);
        let total = p.config().total_contention_rounds();
        for r in 0..total {
            p.choose_action(r, &mut rng);
            p.on_feedback(
                r,
                Feedback::Silence {
                    frequency: Frequency::new(1),
                },
                &mut rng,
            );
        }
        assert!(p.is_leader());
        let out_before = p.output().unwrap();
        p.choose_action(total, &mut rng);
        p.on_feedback(total, leader_msg(123_456), &mut rng);
        // keeps its own numbering (incremented), does not adopt
        assert_eq!(p.output(), Some(out_before + 1));
        assert!(p.is_leader());
    }

    #[test]
    fn contender_broadcast_frequency_increases_with_epochs() {
        // With broadcast probability 2^e/(2N), later epochs should broadcast
        // much more often than the first epoch.
        let config = TrapdoorConfig::new(256, 4, 1);
        let mut early = 0u32;
        let mut late = 0u32;
        let trials = 400u64;
        let mut p = TrapdoorProtocol::new(config);
        let mut rng = SimRng::from_seed(8);
        p.on_activate(ActivationInfo::new(256, 4, 1), &mut rng);
        let last_epoch_start =
            config.total_contention_rounds() - config.epoch_length(config.num_epochs());
        for i in 0..trials {
            // sample epoch-1 behaviour (without feeding feedback, the role
            // stays contender and probabilities depend only on the round)
            if p.choose_action(0, &mut rng).is_broadcast() {
                early += 1;
            }
            if p.choose_action(last_epoch_start + (i % 4), &mut rng)
                .is_broadcast()
            {
                late += 1;
            }
        }
        assert!(
            late > early,
            "late epochs must broadcast more ({late} vs {early})"
        );
        assert!(late as f64 > trials as f64 * 0.3);
        assert!((early as f64) < trials as f64 * 0.1);
    }
}
