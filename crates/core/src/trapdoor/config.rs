//! Parameters of the Trapdoor Protocol (Section 6.1, Figure 1).
//!
//! A contender proceeds through `lg N` epochs. The first `lg N − 1` epochs
//! have length `Θ(F′/(F′−t)·log N)` and the final epoch has length
//! `Θ(F′²/(F′−t)·log N)`, where `F′ = min(F, 2t)`. In epoch `e` a contender
//! broadcasts with probability `2^e/(2N)` (so the final epoch broadcasts
//! with probability 1/2). The multiplicative constants hidden by the `Θ(·)`
//! are exposed here and swept by the ablation experiments.

use serde::{Deserialize, Serialize};

use crate::params::{ceil_log2, effective_frequencies, next_power_of_two};
use crate::problem::ProblemInstance;

/// One row of the Figure 1 schedule: an epoch, its length, and the
/// per-round broadcast probability used during it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochSpec {
    /// 1-based epoch number.
    pub epoch: u32,
    /// Length of the epoch in rounds.
    pub length: u64,
    /// Per-round broadcast probability during the epoch.
    pub broadcast_probability: f64,
}

/// Configuration of the Trapdoor Protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrapdoorConfig {
    /// The bound `N` on the number of participants (rounded up to a power of
    /// two, as the paper assumes).
    pub upper_bound_n: u64,
    /// Number of frequencies `F`.
    pub num_frequencies: u32,
    /// Disruption bound `t < F`.
    pub disruption_bound: u32,
    /// Optional override of `F′`; `None` uses the paper's
    /// `F′ = min(F, 2t)`. The single-frequency baseline sets this to 1.
    pub frequency_limit: Option<u32>,
    /// Constant in front of the regular epoch length
    /// `⌈c₁ · F′/(F′−t) · lg N⌉`.
    pub epoch_constant: f64,
    /// Constant in front of the final epoch length
    /// `⌈c₂ · F′²/(F′−t) · lg N⌉`.
    pub final_epoch_constant: f64,
    /// Probability with which an elected leader broadcasts its numbering
    /// scheme each round (the paper uses 1/2).
    pub leader_broadcast_probability: f64,
}

impl TrapdoorConfig {
    /// Creates a configuration with the default constants
    /// (`c₁ = 2`, `c₂ = 6`, leader broadcast probability 1/2).
    ///
    /// The final-epoch constant is larger because the agreement argument
    /// (Theorem 10) needs the eventual winner to knock every other surviving
    /// contender out *during that contender's final epoch*; the per-round
    /// knock-out probability hides a `≈ 1/4·(F′−t)/F′²` constant (both
    /// parties must pick the right roles and the same undisrupted
    /// frequency), so `c₂ = 6` keeps the empirical multi-leader rate at the
    /// `1/N` level the paper claims. The A1 ablation sweeps both constants.
    ///
    /// `upper_bound_n` is rounded up to a power of two.
    pub fn new(upper_bound_n: u64, num_frequencies: u32, disruption_bound: u32) -> Self {
        TrapdoorConfig {
            upper_bound_n: next_power_of_two(upper_bound_n),
            num_frequencies,
            disruption_bound,
            frequency_limit: None,
            epoch_constant: 2.0,
            final_epoch_constant: 6.0,
            leader_broadcast_probability: 0.5,
        }
    }

    /// Creates a configuration from a [`ProblemInstance`].
    pub fn from_instance(instance: ProblemInstance) -> Self {
        TrapdoorConfig::new(
            instance.upper_bound_n,
            instance.num_frequencies,
            instance.disruption_bound,
        )
    }

    /// Overrides the regular-epoch constant `c₁`.
    pub fn with_epoch_constant(mut self, c: f64) -> Self {
        self.epoch_constant = c.max(0.1);
        self
    }

    /// Overrides the final-epoch constant `c₂`.
    pub fn with_final_epoch_constant(mut self, c: f64) -> Self {
        self.final_epoch_constant = c.max(0.1);
        self
    }

    /// Restricts the protocol to the first `limit` frequencies instead of
    /// the paper's `F′ = min(F, 2t)`. Used by the single-frequency baseline
    /// and the `F′` ablation.
    pub fn with_frequency_limit(mut self, limit: u32) -> Self {
        self.frequency_limit = Some(limit.max(1));
        self
    }

    /// The number of frequencies the protocol actually uses:
    /// `F′ = min(F, 2t)` (clamped to at least 1), or the explicit override.
    pub fn f_prime(&self) -> u32 {
        match self.frequency_limit {
            Some(limit) => limit.min(self.num_frequencies).max(1),
            None => effective_frequencies(self.num_frequencies, self.disruption_bound),
        }
    }

    /// `lg N`, the number of epochs (at least 1).
    pub fn num_epochs(&self) -> u32 {
        ceil_log2(self.upper_bound_n).max(1)
    }

    /// `lg N` as a float, used in the length formulas.
    fn log_n(&self) -> f64 {
        f64::from(self.num_epochs())
    }

    /// `F′/(F′−t)` with the convention that the denominator is at least 1
    /// (when `F′ ≤ t`, which happens only in the degenerate `t = 0` case,
    /// the factor is `F′`).
    fn congestion(&self) -> f64 {
        let fp = self.f_prime();
        let denom = fp.saturating_sub(self.disruption_bound).max(1);
        f64::from(fp) / f64::from(denom)
    }

    /// Length (in rounds) of epoch `epoch` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is 0 or exceeds [`num_epochs`](Self::num_epochs).
    pub fn epoch_length(&self, epoch: u32) -> u64 {
        assert!(
            epoch >= 1 && epoch <= self.num_epochs(),
            "epoch {epoch} out of range 1..={}",
            self.num_epochs()
        );
        let base = if epoch == self.num_epochs() {
            self.final_epoch_constant * f64::from(self.f_prime()) * self.congestion() * self.log_n()
        } else {
            self.epoch_constant * self.congestion() * self.log_n()
        };
        (base.ceil() as u64).max(1)
    }

    /// Per-round broadcast probability in epoch `epoch` (1-based):
    /// `min(1/2, 2^epoch / (2N))`.
    pub fn broadcast_probability(&self, epoch: u32) -> f64 {
        let n = self.upper_bound_n as f64;
        (2f64.powi(epoch as i32) / (2.0 * n)).min(0.5)
    }

    /// Total number of rounds a contender spends before becoming a leader if
    /// it is never knocked out.
    pub fn total_contention_rounds(&self) -> u64 {
        (1..=self.num_epochs()).map(|e| self.epoch_length(e)).sum()
    }

    /// Locates local round `local_round` (0-based, counted from activation)
    /// within the epoch schedule. Returns `None` when the round lies past
    /// the final epoch (i.e. the contender has completed all epochs).
    pub fn epoch_at(&self, local_round: u64) -> Option<(u32, u64)> {
        let mut start = 0u64;
        for epoch in 1..=self.num_epochs() {
            let len = self.epoch_length(epoch);
            if local_round < start + len {
                return Some((epoch, local_round - start));
            }
            start += len;
        }
        None
    }

    /// The full epoch schedule — the reproduction of the paper's Figure 1.
    pub fn schedule(&self) -> Vec<EpochSpec> {
        (1..=self.num_epochs())
            .map(|epoch| EpochSpec {
                epoch,
                length: self.epoch_length(epoch),
                broadcast_probability: self.broadcast_probability(epoch),
            })
            .collect()
    }

    /// The asymptotic upper bound of Theorem 10,
    /// `F/(F−t)·log²N + F·t/(F−t)·log N`, evaluated without constants.
    /// Used by the experiments to compare measured times against the
    /// predicted shape.
    pub fn theorem10_bound(&self) -> f64 {
        let f = f64::from(self.num_frequencies);
        let t = f64::from(self.disruption_bound);
        let log_n = self.log_n();
        let denom = (f - t).max(1.0);
        f / denom * log_n * log_n + f * t / denom * log_n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn f_prime_follows_paper_definition() {
        assert_eq!(TrapdoorConfig::new(64, 16, 4).f_prime(), 8);
        assert_eq!(TrapdoorConfig::new(64, 16, 12).f_prime(), 16);
        assert_eq!(TrapdoorConfig::new(64, 16, 0).f_prime(), 1);
        assert_eq!(
            TrapdoorConfig::new(64, 16, 4)
                .with_frequency_limit(1)
                .f_prime(),
            1
        );
        assert_eq!(
            TrapdoorConfig::new(64, 4, 1)
                .with_frequency_limit(100)
                .f_prime(),
            4
        );
    }

    #[test]
    fn n_rounded_to_power_of_two() {
        assert_eq!(TrapdoorConfig::new(100, 8, 2).upper_bound_n, 128);
        assert_eq!(TrapdoorConfig::new(128, 8, 2).upper_bound_n, 128);
        assert_eq!(TrapdoorConfig::new(1, 8, 2).upper_bound_n, 2);
    }

    #[test]
    fn final_epoch_is_longer() {
        let c = TrapdoorConfig::new(256, 16, 6);
        let regular = c.epoch_length(1);
        let last = c.epoch_length(c.num_epochs());
        assert!(last > regular, "final epoch must be Θ(F′) times longer");
        // F' = 12 and c₂/c₁ = 3, so the final epoch should be roughly 3·F'
        // times the regular one.
        let ratio = last as f64 / regular as f64;
        assert!(ratio > 12.0 && ratio < 72.0, "ratio was {ratio}");
    }

    #[test]
    fn broadcast_probability_doubles_per_epoch_and_ends_at_half() {
        let c = TrapdoorConfig::new(256, 8, 2);
        let lg_n = c.num_epochs();
        assert_eq!(lg_n, 8);
        assert!((c.broadcast_probability(1) - 1.0 / 256.0).abs() < 1e-12);
        for e in 1..lg_n {
            let ratio = c.broadcast_probability(e + 1) / c.broadcast_probability(e);
            assert!((ratio - 2.0).abs() < 1e-9);
        }
        assert!((c.broadcast_probability(lg_n) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn epoch_at_partitions_all_rounds() {
        let c = TrapdoorConfig::new(64, 8, 3);
        let total = c.total_contention_rounds();
        let mut seen_epochs = std::collections::BTreeSet::new();
        let mut prev: Option<(u32, u64)> = None;
        for r in 0..total {
            let (e, within) = c.epoch_at(r).expect("round within the schedule");
            seen_epochs.insert(e);
            if let Some((pe, pw)) = prev {
                assert!(e == pe && within == pw + 1 || (e == pe + 1 && within == 0));
            }
            prev = Some((e, within));
        }
        assert_eq!(seen_epochs.len() as u32, c.num_epochs());
        assert!(c.epoch_at(total).is_none());
        assert!(c.epoch_at(total + 100).is_none());
    }

    #[test]
    fn schedule_matches_figure_one_shape() {
        let c = TrapdoorConfig::new(1024, 16, 4);
        let schedule = c.schedule();
        assert_eq!(schedule.len() as u32, c.num_epochs());
        // all but the last epoch share the same length
        let first_len = schedule[0].length;
        for spec in &schedule[..schedule.len() - 1] {
            assert_eq!(spec.length, first_len);
        }
        assert!(schedule.last().unwrap().length > first_len);
        // probabilities: 1/N, 2/N, …, 1/4, 1/2 (as fractions of 2N)
        assert!((schedule[0].broadcast_probability - 1.0 / 1024.0).abs() < 1e-12);
        assert!((schedule.last().unwrap().broadcast_probability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn theorem10_bound_is_positive_and_grows_with_t() {
        let low = TrapdoorConfig::new(256, 16, 1).theorem10_bound();
        let high = TrapdoorConfig::new(256, 16, 14).theorem10_bound();
        assert!(low > 0.0);
        assert!(high > low);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn epoch_zero_panics() {
        TrapdoorConfig::new(64, 8, 2).epoch_length(0);
    }

    proptest! {
        #[test]
        fn epoch_lengths_positive_and_total_consistent(
            n in 2u64..5000, f in 2u32..64, t in 0u32..63
        ) {
            prop_assume!(t < f);
            let c = TrapdoorConfig::new(n, f, t);
            let mut total = 0u64;
            for e in 1..=c.num_epochs() {
                let len = c.epoch_length(e);
                prop_assert!(len >= 1);
                total += len;
            }
            prop_assert_eq!(total, c.total_contention_rounds());
        }

        #[test]
        fn broadcast_probability_in_unit_interval(n in 2u64..5000, e in 1u32..13) {
            let c = TrapdoorConfig::new(n, 8, 2);
            prop_assume!(e <= c.num_epochs());
            let p = c.broadcast_probability(e);
            prop_assert!(p > 0.0 && p <= 0.5);
        }
    }
}
