//! The wireless synchronization problem and its protocols.
//!
//! This crate contains the primary contribution of
//! Dolev, Gilbert, Guerraoui, Kuhn, Newport,
//! "The Wireless Synchronization Problem" (PODC 2009):
//!
//! * [`problem`] — the problem definition: every activated node outputs a
//!   value in `ℕ ∪ {⊥}` subject to *validity*, *synch commit*,
//!   *correctness*, *agreement* and *liveness* (Section 3).
//! * [`checker`] — an online checker verifying those five requirements over
//!   a simulated execution.
//! * [`trapdoor`] — the Trapdoor Protocol (Section 6): a leader-based
//!   solution running in `O(F/(F−t)·log²N + F·t/(F−t)·log N)` rounds w.h.p.
//! * [`good_samaritan`] — the Good Samaritan Protocol (Section 7): an
//!   optimistic/adaptive variant terminating in `O(t′·log³N)` rounds in
//!   good executions and `O(F·log³N)` rounds in all executions.
//! * [`baselines`] — simpler protocols used as experimental comparison
//!   points (a multi-frequency wake-up-style protocol, a deterministic
//!   round-robin hopper, and a single-frequency variant of the Trapdoor
//!   Protocol).
//! * [`runner`] / [`report`] — convenience helpers that wire a protocol,
//!   an adversary and an activation schedule into the `wsync-radio` engine
//!   and summarize the outcome (rounds to synchronization, leader count,
//!   property violations).
//! * [`batch`] — the [`BatchRunner`]: deterministic
//!   parallel execution of independent Monte-Carlo trials across a worker
//!   pool, with seed-ordered results and shared aggregation folds.
//! * [`registry`] / [`spec`] / [`sim`] — the open, declarative simulation
//!   API: string-keyed protocol/adversary/probe factories,
//!   JSON-serializable [`ScenarioSpec`]/[`SweepSpec`] descriptions
//!   (including the `"probes"` observation stack), and the validated
//!   [`Sim`] builder every execution flows through.
//! * [`store`] / [`sweep`] — the persistence and orchestration layer: a
//!   content-addressed [`ResultStore`] of completed
//!   trials (sharded JSONL, keyed by canonical spec digest + seed) and the
//!   [`SweepRunner`] that streams whole sweep grids
//!   through the worker pool with work stealing, constant-memory
//!   aggregation, and bit-identical resume.
//! * [`fabric`] — the multi-process sweep fabric: shard-level lease files
//!   next to the store shards let N independent OS processes drain one
//!   [`SweepSpec`] against a shared store directory without duplicating
//!   work, with stale leases from crashed workers reclaimed and the
//!   result bit-identical to a single-process run.
//!
//! # Quickstart
//!
//! ```
//! use wsync_core::prelude::*;
//! use wsync_radio::prelude::*;
//!
//! // 16 devices, 8 frequencies, an adversary that may jam up to 3 of them.
//! let spec = ScenarioSpec::new("trapdoor", 16, 8, 3)
//!     .with_adversary("random")
//!     .with_activation(ActivationSchedule::Simultaneous);
//! let outcome = Sim::from_spec(&spec)?.run_one(7);
//! assert!(outcome.result.all_synchronized);
//! assert!(outcome.properties.all_hold());
//! assert_eq!(outcome.leaders, 1);
//! # Ok::<(), wsync_core::spec::SpecError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baselines;
pub mod batch;
pub mod checker;
pub mod fabric;
pub mod good_samaritan;
pub mod json;
pub mod params;
pub mod problem;
pub mod registry;
pub mod report;
pub mod runner;
pub mod sim;
pub mod spec;
pub mod store;
pub mod sweep;
pub mod timestamp;
pub mod trapdoor;

/// Convenient glob import of the most commonly used types.
pub mod prelude {
    pub use crate::baselines::{
        RoundRobinConfig, RoundRobinProtocol, WakeupConfig, WakeupProtocol,
    };
    pub use crate::batch::{BatchRunner, BatchStats, BatchStatsFold, ProtocolKind};
    pub use crate::checker::{PropertyChecker, PropertyReport, Violation};
    pub use crate::fabric::{FabricConfig, FabricError, WorkerEvent, WorkerSummary};
    pub use crate::good_samaritan::{GoodSamaritanConfig, GoodSamaritanProtocol, SamaritanRole};
    pub use crate::params::{ceil_log2, effective_frequencies, next_power_of_two};
    pub use crate::problem::{ProblemInstance, SyncOutput};
    pub use crate::registry::{ProbeOutput, Registry, SimProbe};
    pub use crate::report::SyncOutcome;
    pub use crate::runner::{run_protocol, AdversaryKind, Scenario, SyncProtocol};
    // The deprecated shorthands stay importable so pre-registry code keeps
    // compiling (with a deprecation warning at the call site, not a break).
    #[allow(deprecated)]
    pub use crate::runner::{
        run_good_samaritan, run_good_samaritan_with, run_round_robin, run_single_frequency,
        run_trapdoor, run_trapdoor_with, run_wakeup,
    };
    pub use crate::sim::{ProbedOutcome, Sim};
    pub use crate::spec::{ComponentSpec, ScenarioSpec, SpecError, SweepSpec};
    pub use crate::store::ResultStore;
    pub use crate::sweep::{
        estimate_rare_event, PointStats, StopMetric, StopReason, StoppingRule, SweepReport,
        SweepRunner,
    };
    pub use crate::timestamp::Timestamp;
    pub use crate::trapdoor::{TrapdoorConfig, TrapdoorProtocol, TrapdoorRole};
}

pub use prelude::*;
