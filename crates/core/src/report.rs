//! Outcome summary of one protocol execution.

use serde::{Deserialize, Serialize};

use wsync_radio::engine::ExecutionResult;

use crate::checker::PropertyReport;

/// Everything an experiment needs to know about one execution: the engine's
/// result, the property-checker verdict, and how many nodes ended the run
/// believing they are the leader.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncOutcome {
    /// The engine's per-node and aggregate result.
    pub result: ExecutionResult,
    /// The property-checker verdict (validity, synch commit, correctness,
    /// agreement, liveness).
    pub properties: PropertyReport,
    /// Number of nodes that consider themselves leader at the end of the
    /// run. The paper's protocols guarantee exactly one w.h.p.
    pub leaders: usize,
    /// Name of the adversary used (for experiment tables).
    pub adversary: String,
    /// The seed the execution was run with.
    pub seed: u64,
}

impl SyncOutcome {
    /// The global round by which every node had synchronized, if all did.
    pub fn completion_round(&self) -> Option<u64> {
        self.result.completion_round()
    }

    /// The worst per-node time from activation to synchronization, if all
    /// nodes synchronized. This is the quantity the paper's time bounds are
    /// about.
    pub fn max_rounds_to_sync(&self) -> Option<u64> {
        self.result.max_rounds_to_sync()
    }

    /// `true` iff the run synchronized everyone, elected exactly one leader,
    /// and no safety property was violated.
    pub fn is_clean(&self) -> bool {
        self.result.all_synchronized && self.leaders == 1 && self.properties.safety_holds()
    }

    /// A one-line human-readable summary.
    pub fn summary_line(&self) -> String {
        format!(
            "adversary={} seed={} rounds={} synced={} leaders={} violations={} max_to_sync={}",
            self.adversary,
            self.seed,
            self.result.rounds_executed,
            self.result.all_synchronized,
            self.leaders,
            self.properties.total_violations,
            self.max_rounds_to_sync()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".to_string()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsync_radio::engine::NodeSummary;
    use wsync_radio::metrics::SimMetrics;
    use wsync_radio::node::NodeId;

    fn outcome(all_synced: bool, leaders: usize, violations: u64) -> SyncOutcome {
        SyncOutcome {
            result: ExecutionResult {
                rounds_executed: 100,
                all_synchronized: all_synced,
                nodes: vec![NodeSummary {
                    id: NodeId::new(0),
                    activation_round: 2,
                    sync_round: if all_synced { Some(42) } else { None },
                    final_output: if all_synced { Some(99) } else { None },
                }],
                metrics: SimMetrics::default(),
            },
            properties: PropertyReport {
                violations: Vec::new(),
                total_violations: violations,
                rounds_observed: 100,
                liveness: all_synced,
                completion_round: if all_synced { Some(42) } else { None },
            },
            leaders,
            adversary: "none".to_string(),
            seed: 7,
        }
    }

    #[test]
    fn clean_outcome_requires_everything() {
        assert!(outcome(true, 1, 0).is_clean());
        assert!(!outcome(false, 1, 0).is_clean());
        assert!(!outcome(true, 2, 0).is_clean());
        assert!(!outcome(true, 1, 3).is_clean());
    }

    #[test]
    fn derived_quantities() {
        let o = outcome(true, 1, 0);
        assert_eq!(o.completion_round(), Some(42));
        assert_eq!(o.max_rounds_to_sync(), Some(40));
        assert!(o.summary_line().contains("leaders=1"));
        let unfinished = outcome(false, 0, 0);
        assert_eq!(unfinished.max_rounds_to_sync(), None);
        assert!(unfinished.summary_line().contains("max_to_sync=-"));
    }
}
