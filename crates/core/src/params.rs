//! Shared parameter helpers used by all protocols in this crate.

/// Rounds `x` up to the next power of two (and to at least 2).
///
/// The paper assumes "for simplicity of notation" that `N` is a power of
/// two; both protocols here round the announced bound up accordingly.
pub fn next_power_of_two(x: u64) -> u64 {
    x.max(2).next_power_of_two()
}

/// Ceiling of `log₂(x)` for `x ≥ 1`; returns 0 for `x ≤ 1`.
///
/// ```
/// use wsync_core::params::ceil_log2;
/// assert_eq!(ceil_log2(1), 0);
/// assert_eq!(ceil_log2(2), 1);
/// assert_eq!(ceil_log2(5), 3);
/// assert_eq!(ceil_log2(1024), 10);
/// ```
pub fn ceil_log2(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

/// The paper's `F′ = min(F, 2t)`, clamped to at least 1 so that the
/// degenerate case `t = 0` (no disruption) still leaves one usable
/// frequency.
///
/// Restricting the Trapdoor Protocol to the first `F′` frequencies is what
/// turns the `F²/(F−t)` term that a naive analysis would give into the
/// paper's `F·t/(F−t)` term: when `F > 2t`, there is no benefit in spreading
/// over more than `2t` frequencies.
pub fn effective_frequencies(num_frequencies: u32, disruption_bound: u32) -> u32 {
    num_frequencies.min(2 * disruption_bound).max(1)
}

/// `F′/(F′−t)`, the congestion factor appearing in the Trapdoor epoch
/// length. Defined for `t < F` (guaranteed by config validation); when
/// `F′ ≤ t` (only possible for `t = 0`, where `F′ = 1`), the factor is 1.
pub fn congestion_factor(num_frequencies: u32, disruption_bound: u32) -> f64 {
    let fp = effective_frequencies(num_frequencies, disruption_bound);
    if fp <= disruption_bound {
        1.0
    } else {
        f64::from(fp) / f64::from(fp - disruption_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn next_power_of_two_basics() {
        assert_eq!(next_power_of_two(0), 2);
        assert_eq!(next_power_of_two(1), 2);
        assert_eq!(next_power_of_two(2), 2);
        assert_eq!(next_power_of_two(3), 4);
        assert_eq!(next_power_of_two(1000), 1024);
    }

    #[test]
    fn ceil_log2_matches_reference_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(1 << 20), 20);
    }

    #[test]
    fn effective_frequencies_min_of_f_and_2t() {
        assert_eq!(effective_frequencies(16, 4), 8);
        assert_eq!(effective_frequencies(16, 10), 16);
        assert_eq!(effective_frequencies(16, 0), 1);
        assert_eq!(effective_frequencies(1, 0), 1);
    }

    #[test]
    fn congestion_factor_values() {
        // F = 16, t = 4: F' = 8, factor 8/4 = 2
        assert!((congestion_factor(16, 4) - 2.0).abs() < 1e-12);
        // F = 8, t = 6: F' = 8, factor 8/2 = 4
        assert!((congestion_factor(8, 6) - 4.0).abs() < 1e-12);
        // t = 0: factor 1
        assert_eq!(congestion_factor(8, 0), 1.0);
    }

    proptest! {
        #[test]
        fn ceil_log2_is_inverse_of_pow(x in 1u64..1_000_000) {
            let k = ceil_log2(x);
            prop_assert!(1u64 << k >= x);
            if k > 0 {
                prop_assert!(1u64 << (k - 1) < x);
            }
        }

        #[test]
        fn effective_frequencies_bounds(f in 1u32..1000, t in 0u32..1000) {
            let fp = effective_frequencies(f, t);
            prop_assert!(fp >= 1);
            prop_assert!(fp <= f);
            prop_assert!(fp <= (2 * t).max(1));
        }

        #[test]
        fn congestion_factor_at_least_one(f in 2u32..256, t in 0u32..255) {
            prop_assume!(t < f);
            prop_assert!(congestion_factor(f, t) >= 1.0);
        }
    }
}
