//! Baseline protocols used as experimental comparison points.
//!
//! The paper has no implemented comparator (it is a theory paper), but its
//! introduction and related-work discussion motivate three natural
//! baselines that our experiments compare the Trapdoor and Good Samaritan
//! protocols against:
//!
//! * [`WakeupProtocol`] — a multi-frequency adaptation of the classic
//!   randomized wake-up protocols (Jurdziński–Stachowiak style cycling
//!   broadcast probabilities) with a fixed competition deadline instead of
//!   the Trapdoor epoch escalation. It is simpler but needs a conservative
//!   deadline and loses the paper's adaptive self-regulation.
//! * [`RoundRobinProtocol`] — deterministic round-robin frequency hopping
//!   (the "Bluetooth-style pseudorandom hopping" the introduction mentions),
//!   with randomized back-off for broadcasts.
//! * single-frequency Trapdoor — obtained by configuring
//!   [`TrapdoorConfig::with_frequency_limit(1)`](crate::trapdoor::TrapdoorConfig::with_frequency_limit);
//!   it shows why frequency diversity is necessary: any adversary with
//!   `t ≥ 1` that jams frequency 1 starves it forever.

mod round_robin;
mod uniform_wakeup;

pub use round_robin::{RoundRobinConfig, RoundRobinProtocol};
pub use uniform_wakeup::{WakeupConfig, WakeupProtocol};

use crate::trapdoor::{TrapdoorConfig, TrapdoorProtocol};

/// Builds the single-frequency Trapdoor baseline: the Trapdoor Protocol
/// restricted to frequency 1 only.
pub fn single_frequency_trapdoor(
    upper_bound_n: u64,
    num_frequencies: u32,
    disruption_bound: u32,
) -> TrapdoorProtocol {
    TrapdoorProtocol::new(
        TrapdoorConfig::new(upper_bound_n, num_frequencies, disruption_bound)
            .with_frequency_limit(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_frequency_baseline_uses_one_frequency() {
        let p = single_frequency_trapdoor(64, 8, 3);
        assert_eq!(p.config().f_prime(), 1);
        assert_eq!(p.config().num_frequencies, 8);
    }
}
