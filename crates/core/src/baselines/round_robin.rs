//! A deterministic round-robin frequency-hopping baseline.
//!
//! The introduction motivates synchronization with Bluetooth-style
//! pseudorandom frequency hopping. This baseline captures the simplest such
//! scheme: every node hops deterministically through the band —
//! frequency `((uid + local_round) mod F) + 1` — broadcasts its timestamp
//! with the Trapdoor epoch probabilities, applies Trapdoor knockouts, and
//! declares itself leader after surviving the same number of rounds a
//! Trapdoor contender would. Because the hop sequence is deterministic given
//! the uid, two nodes whose uids are congruent modulo `F` never meet, and a
//! jammer that knows the schedule can track a node; the baseline experiment
//! (X2) quantifies both weaknesses.

use rand::Rng;
use serde::{Deserialize, Serialize};

use wsync_radio::action::Action;
use wsync_radio::frequency::{Frequency, FrequencyBand};
use wsync_radio::message::Feedback;
use wsync_radio::node::ActivationInfo;
use wsync_radio::protocol::Protocol;
use wsync_radio::rng::SimRng;

use crate::timestamp::Timestamp;
use crate::trapdoor::{TrapdoorConfig, TrapdoorMsg};

/// Configuration of the round-robin hopping baseline. Reuses the Trapdoor
/// epoch schedule for broadcast probabilities and the leader deadline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundRobinConfig {
    /// The underlying Trapdoor schedule (epoch lengths and probabilities).
    pub trapdoor: TrapdoorConfig,
}

impl RoundRobinConfig {
    /// Creates a configuration.
    pub fn new(upper_bound_n: u64, num_frequencies: u32, disruption_bound: u32) -> Self {
        RoundRobinConfig {
            trapdoor: TrapdoorConfig::new(upper_bound_n, num_frequencies, disruption_bound),
        }
    }
}

/// The round-robin hopping baseline protocol.
#[derive(Debug, Clone)]
pub struct RoundRobinProtocol {
    config: RoundRobinConfig,
    band: FrequencyBand,
    timestamp: Timestamp,
    knocked_out: bool,
    leader: bool,
    output: Option<u64>,
}

impl RoundRobinProtocol {
    /// Creates a protocol instance.
    pub fn new(config: RoundRobinConfig) -> Self {
        RoundRobinProtocol {
            band: FrequencyBand::new(config.trapdoor.num_frequencies.max(1)),
            config,
            timestamp: Timestamp::new(0, 0),
            knocked_out: false,
            leader: false,
            output: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RoundRobinConfig {
        &self.config
    }

    /// Whether this node declared itself leader.
    pub fn is_leader(&self) -> bool {
        self.leader
    }

    /// The deterministic hop frequency for local round `r`.
    pub fn hop_frequency(&self, local_round: u64) -> Frequency {
        let f = u64::from(self.band.count());
        Frequency::new(((self.timestamp.uid.wrapping_add(local_round)) % f) as u32 + 1)
    }
}

impl Protocol for RoundRobinProtocol {
    type Msg = TrapdoorMsg;

    fn on_activate(&mut self, info: ActivationInfo, rng: &mut SimRng) {
        self.band = FrequencyBand::new(info.num_frequencies.max(1));
        self.timestamp = Timestamp::new(
            0,
            Timestamp::draw_uid(self.config.trapdoor.upper_bound_n, rng),
        );
    }

    fn choose_action(&mut self, local_round: u64, rng: &mut SimRng) -> Action<TrapdoorMsg> {
        self.timestamp.rounds_active = local_round + 1;
        let frequency = self.hop_frequency(local_round);
        if self.leader {
            return if rng.gen_bool(self.config.trapdoor.leader_broadcast_probability) {
                Action::broadcast(
                    frequency,
                    TrapdoorMsg::Leader {
                        announced_round: self.output.unwrap_or(0) + 1,
                    },
                )
            } else {
                Action::listen(frequency)
            };
        }
        if self.knocked_out || self.output.is_some() {
            return Action::listen(frequency);
        }
        let p = match self.config.trapdoor.epoch_at(local_round) {
            Some((epoch, _)) => self.config.trapdoor.broadcast_probability(epoch),
            None => 0.5,
        };
        if rng.gen_bool(p) {
            Action::broadcast(
                frequency,
                TrapdoorMsg::Contender {
                    timestamp: self.timestamp,
                },
            )
        } else {
            Action::listen(frequency)
        }
    }

    fn on_feedback(
        &mut self,
        local_round: u64,
        feedback: Feedback<TrapdoorMsg>,
        _rng: &mut SimRng,
    ) {
        let was_synced = self.output.is_some();
        if let Feedback::Received(received) = &feedback {
            match received.payload {
                TrapdoorMsg::Contender { timestamp } => {
                    if !self.leader && !self.knocked_out && timestamp > self.timestamp {
                        self.knocked_out = true;
                    }
                }
                TrapdoorMsg::Leader { announced_round } => {
                    if !self.leader && !was_synced {
                        self.output = Some(announced_round);
                    }
                }
            }
        }
        if !self.leader
            && !self.knocked_out
            && local_round + 1 >= self.config.trapdoor.total_contention_rounds()
        {
            self.leader = true;
            if !was_synced {
                self.output = Some(local_round + 1);
            }
        }
        if was_synced {
            self.output = Some(self.output.expect("synced node has an output") + 1);
        }
    }

    fn output(&self) -> Option<u64> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activated(seed: u64) -> (RoundRobinProtocol, SimRng) {
        let config = RoundRobinConfig::new(16, 4, 1);
        let mut p = RoundRobinProtocol::new(config);
        let mut rng = SimRng::from_seed(seed);
        p.on_activate(ActivationInfo::new(16, 4, 1), &mut rng);
        (p, rng)
    }

    fn silence() -> Feedback<TrapdoorMsg> {
        Feedback::Silence {
            frequency: Frequency::new(1),
        }
    }

    #[test]
    fn hop_sequence_is_deterministic_and_cyclic() {
        let (p, _) = activated(1);
        let f = 4u64;
        for r in 0..20u64 {
            assert_eq!(p.hop_frequency(r), p.hop_frequency(r + f));
            assert_ne!(p.hop_frequency(r), p.hop_frequency(r + 1));
        }
    }

    #[test]
    fn actions_follow_the_hop_sequence() {
        let (mut p, mut rng) = activated(2);
        for r in 0..40 {
            let expected = p.hop_frequency(r);
            let action = p.choose_action(r, &mut rng);
            assert_eq!(action.frequency(), Some(expected));
            p.on_feedback(r, silence(), &mut rng);
        }
    }

    #[test]
    fn survivor_becomes_leader_after_trapdoor_schedule() {
        let (mut p, mut rng) = activated(3);
        let total = p.config().trapdoor.total_contention_rounds();
        for r in 0..total {
            p.choose_action(r, &mut rng);
            p.on_feedback(r, silence(), &mut rng);
        }
        assert!(p.is_leader());
        assert_eq!(p.output(), Some(total));
    }

    #[test]
    fn knockout_and_adoption_work() {
        let (mut p, mut rng) = activated(4);
        p.choose_action(0, &mut rng);
        p.on_feedback(
            0,
            Feedback::Received(wsync_radio::message::Received {
                sender: wsync_radio::node::NodeId::new(3),
                frequency: Frequency::new(2),
                payload: TrapdoorMsg::Contender {
                    timestamp: Timestamp::new(u64::MAX, 0),
                },
            }),
            &mut rng,
        );
        assert!(!p.is_leader());
        p.choose_action(1, &mut rng);
        p.on_feedback(
            1,
            Feedback::Received(wsync_radio::message::Received {
                sender: wsync_radio::node::NodeId::new(3),
                frequency: Frequency::new(2),
                payload: TrapdoorMsg::Leader { announced_round: 5 },
            }),
            &mut rng,
        );
        assert_eq!(p.output(), Some(5));
    }
}
