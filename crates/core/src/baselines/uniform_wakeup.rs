//! A multi-frequency wake-up-style baseline protocol.
//!
//! Classic wake-up protocols for single-hop radio networks (e.g.
//! Jurdziński–Stachowiak) have every awake node broadcast with a
//! probability that cycles through the decreasing sequence
//! `1/2, 1/4, …, 1/N, 1/2, …`, so that whatever the unknown number of
//! participants is, some phase of the cycle gives a constant per-round
//! probability of an uncontended broadcast. This baseline adapts that idea
//! to the multi-frequency disrupted model in the most straightforward way:
//!
//! * every round a contender picks a frequency uniformly from the whole band
//!   `[1..F]` (no `F′ = min(F, 2t)` restriction);
//! * it broadcasts (its timestamp) with the cycling probability;
//! * Trapdoor-style knockouts apply: hearing a larger timestamp knocks a
//!   contender out;
//! * instead of the Trapdoor's escalating epochs, a contender that survives
//!   a fixed deadline of `deadline_rounds` becomes leader and disseminates
//!   the numbering like the Trapdoor leader does.
//!
//! The fixed deadline is the baseline's weakness: it must be chosen
//! conservatively (large) for agreement to hold, which the crossover
//! experiment (X2) quantifies.

use rand::Rng;
use serde::{Deserialize, Serialize};

use wsync_radio::action::Action;
use wsync_radio::frequency::FrequencyBand;
use wsync_radio::message::Feedback;
use wsync_radio::node::ActivationInfo;
use wsync_radio::protocol::Protocol;
use wsync_radio::rng::SimRng;

use crate::params::{ceil_log2, next_power_of_two};
use crate::timestamp::Timestamp;
use crate::trapdoor::TrapdoorMsg;

/// Configuration of the wake-up-style baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WakeupConfig {
    /// Bound `N` on the number of participants (rounded to a power of two).
    pub upper_bound_n: u64,
    /// Number of frequencies `F`.
    pub num_frequencies: u32,
    /// Disruption bound `t` (only used to size the default deadline).
    pub disruption_bound: u32,
    /// Rounds a contender must survive before declaring itself leader.
    pub deadline_rounds: u64,
    /// Leader broadcast probability (1/2 by default).
    pub leader_broadcast_probability: f64,
}

impl WakeupConfig {
    /// Creates a configuration with a deadline of
    /// `⌈4 · F/(F−t) · lg²N⌉` rounds.
    pub fn new(upper_bound_n: u64, num_frequencies: u32, disruption_bound: u32) -> Self {
        let n = next_power_of_two(upper_bound_n);
        let lg_n = f64::from(ceil_log2(n).max(1));
        let f = f64::from(num_frequencies.max(1));
        let t = f64::from(disruption_bound);
        let deadline = (4.0 * f / (f - t).max(1.0) * lg_n * lg_n).ceil() as u64;
        WakeupConfig {
            upper_bound_n: n,
            num_frequencies,
            disruption_bound,
            deadline_rounds: deadline.max(4),
            leader_broadcast_probability: 0.5,
        }
    }

    /// Overrides the leader deadline.
    pub fn with_deadline(mut self, deadline_rounds: u64) -> Self {
        self.deadline_rounds = deadline_rounds.max(1);
        self
    }

    /// The cycling broadcast probability used at local round `r`:
    /// `2^{-(1 + r mod lg N)}`.
    pub fn broadcast_probability(&self, local_round: u64) -> f64 {
        let cycle = u64::from(ceil_log2(self.upper_bound_n).max(1));
        let phase = (local_round % cycle) + 1;
        0.5f64.powi(phase as i32)
    }
}

/// The wake-up-style baseline protocol.
#[derive(Debug, Clone)]
pub struct WakeupProtocol {
    config: WakeupConfig,
    band: FrequencyBand,
    timestamp: Timestamp,
    knocked_out: bool,
    leader: bool,
    output: Option<u64>,
}

impl WakeupProtocol {
    /// Creates a protocol instance.
    pub fn new(config: WakeupConfig) -> Self {
        WakeupProtocol {
            config,
            band: FrequencyBand::new(config.num_frequencies.max(1)),
            timestamp: Timestamp::new(0, 0),
            knocked_out: false,
            leader: false,
            output: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &WakeupConfig {
        &self.config
    }

    /// Whether this node declared itself leader.
    pub fn is_leader(&self) -> bool {
        self.leader
    }

    /// Whether this node has been knocked out.
    pub fn is_knocked_out(&self) -> bool {
        self.knocked_out
    }
}

impl Protocol for WakeupProtocol {
    type Msg = TrapdoorMsg;

    fn on_activate(&mut self, info: ActivationInfo, rng: &mut SimRng) {
        self.band = FrequencyBand::new(info.num_frequencies.max(1));
        self.timestamp = Timestamp::new(0, Timestamp::draw_uid(self.config.upper_bound_n, rng));
    }

    fn choose_action(&mut self, local_round: u64, rng: &mut SimRng) -> Action<TrapdoorMsg> {
        self.timestamp.rounds_active = local_round + 1;
        let frequency = self.band.sample_uniform(rng);
        if self.leader {
            return if rng.gen_bool(self.config.leader_broadcast_probability) {
                Action::broadcast(
                    frequency,
                    TrapdoorMsg::Leader {
                        announced_round: self.output.unwrap_or(0) + 1,
                    },
                )
            } else {
                Action::listen(frequency)
            };
        }
        if self.knocked_out || self.output.is_some() {
            return Action::listen(frequency);
        }
        let p = self.config.broadcast_probability(local_round);
        if rng.gen_bool(p) {
            Action::broadcast(
                frequency,
                TrapdoorMsg::Contender {
                    timestamp: self.timestamp,
                },
            )
        } else {
            Action::listen(frequency)
        }
    }

    fn on_feedback(
        &mut self,
        local_round: u64,
        feedback: Feedback<TrapdoorMsg>,
        _rng: &mut SimRng,
    ) {
        let was_synced = self.output.is_some();
        if let Feedback::Received(received) = &feedback {
            match received.payload {
                TrapdoorMsg::Contender { timestamp } => {
                    if !self.leader && !self.knocked_out && timestamp > self.timestamp {
                        self.knocked_out = true;
                    }
                }
                TrapdoorMsg::Leader { announced_round } => {
                    if !self.leader && !was_synced {
                        self.output = Some(announced_round);
                    }
                }
            }
        }
        if !self.leader && !self.knocked_out && local_round + 1 >= self.config.deadline_rounds {
            self.leader = true;
            if !was_synced {
                self.output = Some(local_round + 1);
            }
        }
        if was_synced {
            self.output = Some(self.output.expect("synced node has an output") + 1);
        }
    }

    fn output(&self) -> Option<u64> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsync_radio::frequency::Frequency;
    use wsync_radio::message::Received;
    use wsync_radio::node::NodeId;

    fn activated(seed: u64) -> (WakeupProtocol, SimRng) {
        let config = WakeupConfig::new(64, 8, 2).with_deadline(20);
        let mut p = WakeupProtocol::new(config);
        let mut rng = SimRng::from_seed(seed);
        p.on_activate(ActivationInfo::new(64, 8, 2), &mut rng);
        (p, rng)
    }

    fn silence() -> Feedback<TrapdoorMsg> {
        Feedback::Silence {
            frequency: Frequency::new(1),
        }
    }

    #[test]
    fn default_deadline_scales_with_parameters() {
        let small = WakeupConfig::new(16, 8, 0).deadline_rounds;
        let big = WakeupConfig::new(1024, 8, 6).deadline_rounds;
        assert!(big > small);
    }

    #[test]
    fn broadcast_probability_cycles() {
        let c = WakeupConfig::new(16, 4, 0);
        let cycle = 4; // lg 16
        assert_eq!(c.broadcast_probability(0), 0.5);
        assert_eq!(c.broadcast_probability(1), 0.25);
        assert_eq!(c.broadcast_probability(cycle), 0.5);
    }

    #[test]
    fn survivor_becomes_leader_at_deadline() {
        let (mut p, mut rng) = activated(1);
        for r in 0..20 {
            p.choose_action(r, &mut rng);
            p.on_feedback(r, silence(), &mut rng);
        }
        assert!(p.is_leader());
        assert_eq!(p.output(), Some(20));
    }

    #[test]
    fn knocked_out_by_larger_timestamp_and_adopts_leader() {
        let (mut p, mut rng) = activated(2);
        p.choose_action(0, &mut rng);
        p.on_feedback(
            0,
            Feedback::Received(Received {
                sender: NodeId::new(1),
                frequency: Frequency::new(1),
                payload: TrapdoorMsg::Contender {
                    timestamp: Timestamp::new(u64::MAX, 1),
                },
            }),
            &mut rng,
        );
        assert!(p.is_knocked_out());
        // Knocked-out nodes never become leader, even past the deadline.
        for r in 1..30 {
            let a = p.choose_action(r, &mut rng);
            assert!(a.is_listen());
            p.on_feedback(r, silence(), &mut rng);
        }
        assert!(!p.is_leader());
        // They adopt the leader's numbering when they hear it.
        p.choose_action(30, &mut rng);
        p.on_feedback(
            30,
            Feedback::Received(Received {
                sender: NodeId::new(1),
                frequency: Frequency::new(1),
                payload: TrapdoorMsg::Leader {
                    announced_round: 77,
                },
            }),
            &mut rng,
        );
        assert_eq!(p.output(), Some(77));
        p.choose_action(31, &mut rng);
        p.on_feedback(31, silence(), &mut rng);
        assert_eq!(p.output(), Some(78));
    }

    #[test]
    fn uses_entire_band() {
        let (mut p, mut rng) = activated(3);
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..200 {
            if let Some(f) = p.choose_action(r % 5, &mut rng).frequency() {
                seen.insert(f.index());
            }
        }
        assert!(
            seen.len() >= 6,
            "should use most of the 8 frequencies, saw {seen:?}"
        );
    }
}
