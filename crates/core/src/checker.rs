//! Online checker for the five requirements of the wireless synchronization
//! problem.
//!
//! [`PropertyChecker`] implements the radio engine's streaming
//! [`Probe`] hook (and the legacy [`Observer`] hook) and verifies, round by
//! round and with O(n) memory:
//!
//! * **synch commit** — no node reverts from a round number to `⊥`;
//! * **correctness** — a node outputting `i` outputs `i + 1` next round;
//! * **agreement** — all non-`⊥` outputs within one round are equal.
//!
//! (**Validity** is enforced by the type system: outputs are `Option<u64>`.)
//! **Liveness** folds incrementally too: the checker tracks each node's
//! first non-`⊥` round and whether the latest observed round had every
//! node synchronized, so [`PropertyChecker::report`] produces the complete
//! verdict from the round stream alone — no retained per-round state, no
//! post-hoc scan. The legacy [`PropertyChecker::finish`] (which copies the
//! liveness verdict out of the engine's [`ExecutionResult`]) remains as the
//! cross-check; `tests/probe_pipeline.rs` proves the two agree on random
//! scenarios.

use serde::{Deserialize, Serialize};

use wsync_radio::engine::ExecutionResult;
use wsync_radio::node::NodeId;
use wsync_radio::probe::Probe;
use wsync_radio::trace::{NodeView, Observer, RoundObservation};

/// A single property violation detected during an execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// A node output `⊥` after having output a round number.
    SynchCommit {
        /// The offending node.
        node: NodeId,
        /// The round in which the node reverted to `⊥`.
        round: u64,
        /// The number it had output in the previous round.
        previous: u64,
    },
    /// A node's output did not increment by exactly one.
    Correctness {
        /// The offending node.
        node: NodeId,
        /// The round of the bad transition.
        round: u64,
        /// Output in the previous round.
        previous: u64,
        /// Output in this round.
        current: u64,
    },
    /// Two nodes disagreed on the round number in the same round.
    Agreement {
        /// The round in which the disagreement was observed.
        round: u64,
        /// One of the disagreeing nodes and its output.
        first: (NodeId, u64),
        /// Another disagreeing node and its output.
        second: (NodeId, u64),
    },
}

/// The verdict over a full execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropertyReport {
    /// Violations of synch commit, correctness, or agreement (capped; see
    /// [`PropertyChecker::with_max_recorded`]).
    pub violations: Vec<Violation>,
    /// Total number of violations observed (may exceed `violations.len()`).
    pub total_violations: u64,
    /// Number of rounds observed.
    pub rounds_observed: u64,
    /// Whether every node synchronized before the round cap (liveness).
    pub liveness: bool,
    /// Round by which every node had synchronized, if liveness holds.
    pub completion_round: Option<u64>,
}

impl PropertyReport {
    /// `true` iff no safety violation was observed and liveness holds.
    pub fn all_hold(&self) -> bool {
        self.total_violations == 0 && self.liveness
    }

    /// `true` iff no safety violation (synch commit, correctness, agreement)
    /// was observed, regardless of liveness.
    pub fn safety_holds(&self) -> bool {
        self.total_violations == 0
    }
}

/// Streaming probe that checks the synchronization properties online.
#[derive(Debug, Clone)]
pub struct PropertyChecker {
    previous: Vec<Option<Option<u64>>>,
    /// Per node, the first observed round with a non-`⊥` output.
    first_sync: Vec<Option<u64>>,
    /// Whether every node was active with a non-`⊥` output in the most
    /// recently observed round.
    last_round_all_synced: bool,
    violations: Vec<Violation>,
    total_violations: u64,
    rounds_observed: u64,
    max_recorded: usize,
}

impl Default for PropertyChecker {
    fn default() -> Self {
        PropertyChecker::new()
    }
}

impl PropertyChecker {
    /// Creates a checker. The node count is learned from the first observed
    /// round.
    pub fn new() -> Self {
        PropertyChecker {
            previous: Vec::new(),
            first_sync: Vec::new(),
            last_round_all_synced: false,
            violations: Vec::new(),
            total_violations: 0,
            rounds_observed: 0,
            max_recorded: 64,
        }
    }

    /// Caps how many violations are stored in detail (all are counted).
    pub fn with_max_recorded(mut self, max_recorded: usize) -> Self {
        self.max_recorded = max_recorded;
        self
    }

    /// Number of violations observed so far.
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    fn record(&mut self, violation: Violation) {
        self.total_violations += 1;
        if self.violations.len() < self.max_recorded {
            self.violations.push(violation);
        }
    }

    /// Finalizes the report using the engine's execution result (for the
    /// liveness verdict).
    ///
    /// This is the legacy post-hoc path; [`report`](Self::report) now folds
    /// liveness incrementally from the round stream and agrees with this on
    /// every engine-produced execution (property-tested in
    /// `tests/probe_pipeline.rs`). `finish` remains authoritative where an
    /// [`ExecutionResult`] is at hand because it reflects the engine's own
    /// `is_synchronized` verdicts, which a hand-written protocol could in
    /// principle decouple from its outputs.
    pub fn finish(self, result: &ExecutionResult) -> PropertyReport {
        PropertyReport {
            violations: self.violations,
            total_violations: self.total_violations,
            rounds_observed: self.rounds_observed,
            liveness: result.all_synchronized,
            completion_round: result.completion_round(),
        }
    }

    /// The complete verdict, derived purely from the observed round stream
    /// — violations, liveness (every node active and non-`⊥` in the latest
    /// observed round), and the completion round (latest first-sync round)
    /// — with no [`ExecutionResult`] needed and no retained state
    /// proportional to the number of rounds.
    pub fn report(&self) -> PropertyReport {
        let liveness = self.rounds_observed > 0 && self.last_round_all_synced;
        PropertyReport {
            violations: self.violations.clone(),
            total_violations: self.total_violations,
            rounds_observed: self.rounds_observed,
            liveness,
            completion_round: if liveness {
                self.first_sync.iter().copied().max().flatten()
            } else {
                None
            },
        }
    }

    /// Finalizes the report without liveness information (e.g. when checking
    /// a hand-built trace).
    pub fn finish_without_result(self) -> PropertyReport {
        PropertyReport {
            violations: self.violations,
            total_violations: self.total_violations,
            rounds_observed: self.rounds_observed,
            liveness: false,
            completion_round: None,
        }
    }

    fn observe_round(&mut self, observation: &RoundObservation<'_>) {
        let n = observation.nodes.len();
        if self.previous.len() < n {
            self.previous.resize(n, None);
            self.first_sync.resize(n, None);
        }
        self.rounds_observed += 1;

        // Agreement: all non-⊥ outputs in this round must be equal.
        let mut first_output: Option<(NodeId, u64)> = None;
        for (i, view) in observation.nodes.iter().enumerate() {
            if let NodeView::Active { output: Some(v) } = view {
                match first_output {
                    None => first_output = Some((NodeId::new(i as u32), *v)),
                    Some((fid, fv)) => {
                        if fv != *v {
                            let second = (NodeId::new(i as u32), *v);
                            self.record(Violation::Agreement {
                                round: observation.round,
                                first: (fid, fv),
                                second,
                            });
                        }
                    }
                }
            }
        }

        // Synch commit and correctness: per-node transition checks, plus
        // the incremental liveness fold (first-sync rounds and whether this
        // round has everyone synchronized).
        let mut all_synced = n > 0;
        for (i, view) in observation.nodes.iter().enumerate() {
            let current: Option<Option<u64>> = view.output();
            if let (Some(prev_active), Some(cur_active)) = (self.previous[i], current) {
                match (prev_active, cur_active) {
                    (Some(p), None) => {
                        self.record(Violation::SynchCommit {
                            node: NodeId::new(i as u32),
                            round: observation.round,
                            previous: p,
                        });
                    }
                    (Some(p), Some(c)) if c != p + 1 => {
                        self.record(Violation::Correctness {
                            node: NodeId::new(i as u32),
                            round: observation.round,
                            previous: p,
                            current: c,
                        });
                    }
                    _ => {}
                }
            }
            match current {
                Some(Some(_)) => {
                    if self.first_sync[i].is_none() {
                        self.first_sync[i] = Some(observation.round);
                    }
                }
                _ => all_synced = false,
            }
            self.previous[i] = current;
        }
        self.last_round_all_synced = all_synced;
    }
}

impl Observer for PropertyChecker {
    fn on_round(&mut self, observation: &RoundObservation<'_>) {
        self.observe_round(observation);
    }
}

impl Probe for PropertyChecker {
    fn observe(&mut self, observation: &RoundObservation<'_>) {
        self.observe_round(observation);
    }
}

#[cfg(test)]
mod checker_tests {
    use super::*;
    use wsync_radio::adversary::DisruptionSet;
    use wsync_radio::engine::NodeSummary;
    use wsync_radio::metrics::SimMetrics;
    use wsync_radio::trace::ActionView;

    /// Feeds a sequence of per-round output vectors into the checker.
    /// `None` = inactive, `Some(None)` = ⊥, `Some(Some(v))` = round number v.
    fn run_rounds(rounds: &[Vec<Option<Option<u64>>>]) -> PropertyChecker {
        let mut checker = PropertyChecker::new();
        for (r, outputs) in rounds.iter().enumerate() {
            let nodes: Vec<NodeView> = outputs
                .iter()
                .map(|o| match o {
                    None => NodeView::Inactive,
                    Some(out) => NodeView::Active { output: *out },
                })
                .collect();
            let actions = vec![ActionView::Sleep; nodes.len()];
            let disrupted = DisruptionSet::empty(1);
            checker.on_round(&RoundObservation {
                round: r as u64,
                newly_activated: &[],
                actions: &actions,
                nodes: &nodes,
                disrupted: &disrupted,
                deliveries: &[],
                activity: &[],
                tally: wsync_radio::trace::RoundTally::default(),
            });
        }
        checker
    }

    fn fake_result(all_synchronized: bool) -> ExecutionResult {
        ExecutionResult {
            rounds_executed: 10,
            all_synchronized,
            nodes: vec![NodeSummary {
                id: NodeId::new(0),
                activation_round: 0,
                sync_round: if all_synchronized { Some(3) } else { None },
                final_output: if all_synchronized { Some(9) } else { None },
            }],
            metrics: SimMetrics::default(),
        }
    }

    #[test]
    fn clean_execution_has_no_violations() {
        let rounds = vec![
            vec![Some(None), None],
            vec![Some(Some(10)), Some(None)],
            vec![Some(Some(11)), Some(Some(11))],
            vec![Some(Some(12)), Some(Some(12))],
        ];
        let checker = run_rounds(&rounds);
        assert_eq!(checker.total_violations(), 0);
        let report = checker.finish(&fake_result(true));
        assert!(report.all_hold());
        assert!(report.safety_holds());
        assert_eq!(report.rounds_observed, 4);
        assert_eq!(report.completion_round, Some(3));
    }

    #[test]
    fn synch_commit_violation_detected() {
        let rounds = vec![vec![Some(Some(5))], vec![Some(None)]];
        let checker = run_rounds(&rounds);
        let report = checker.finish_without_result();
        assert_eq!(report.total_violations, 1);
        assert!(matches!(
            report.violations[0],
            Violation::SynchCommit {
                previous: 5,
                round: 1,
                ..
            }
        ));
        assert!(!report.all_hold());
    }

    #[test]
    fn correctness_violation_detected() {
        let rounds = vec![vec![Some(Some(5))], vec![Some(Some(7))]];
        let report = run_rounds(&rounds).finish_without_result();
        assert_eq!(report.total_violations, 1);
        assert!(matches!(
            report.violations[0],
            Violation::Correctness {
                previous: 5,
                current: 7,
                ..
            }
        ));
    }

    #[test]
    fn constant_output_is_a_correctness_violation() {
        let rounds = vec![vec![Some(Some(5))], vec![Some(Some(5))]];
        let report = run_rounds(&rounds).finish_without_result();
        assert_eq!(report.total_violations, 1);
    }

    #[test]
    fn agreement_violation_detected() {
        let rounds = vec![vec![Some(Some(5)), Some(Some(9))]];
        let report = run_rounds(&rounds).finish_without_result();
        assert_eq!(report.total_violations, 1);
        assert!(matches!(report.violations[0], Violation::Agreement { .. }));
    }

    #[test]
    fn bottom_outputs_do_not_trigger_agreement() {
        let rounds = vec![vec![Some(Some(5)), Some(None), None]];
        let report = run_rounds(&rounds).finish_without_result();
        assert_eq!(report.total_violations, 0);
    }

    #[test]
    fn liveness_follows_execution_result() {
        let rounds = vec![vec![Some(None)]];
        let checker = run_rounds(&rounds);
        let report = checker.clone().finish(&fake_result(false));
        assert!(!report.liveness);
        assert!(!report.all_hold());
        assert!(report.safety_holds());
        let report2 = checker.finish(&fake_result(true));
        assert!(report2.liveness);
    }

    #[test]
    fn violation_recording_is_capped_but_counted() {
        let mut rounds = Vec::new();
        // Alternate 5, 3, 5, 3, ... producing a correctness violation every round.
        for i in 0..100 {
            rounds.push(vec![Some(Some(if i % 2 == 0 { 5 } else { 3 }))]);
        }
        let checker = PropertyChecker::new().with_max_recorded(10);
        let mut checker = checker;
        for (r, outputs) in rounds.iter().enumerate() {
            let nodes: Vec<NodeView> = outputs
                .iter()
                .map(|o| NodeView::Active { output: o.unwrap() })
                .collect();
            let actions = vec![ActionView::Sleep; nodes.len()];
            let disrupted = DisruptionSet::empty(1);
            checker.on_round(&RoundObservation {
                round: r as u64,
                newly_activated: &[],
                actions: &actions,
                nodes: &nodes,
                disrupted: &disrupted,
                deliveries: &[],
                activity: &[],
                tally: wsync_radio::trace::RoundTally::default(),
            });
        }
        let report = checker.finish_without_result();
        assert_eq!(report.violations.len(), 10);
        assert_eq!(report.total_violations, 99);
    }

    #[test]
    fn late_activation_does_not_confuse_transition_tracking() {
        // Node 1 activates in round 2 and jumps straight to a number that is
        // consistent with node 0 — no violations.
        let rounds = vec![
            vec![Some(Some(4)), None],
            vec![Some(Some(5)), None],
            vec![Some(Some(6)), Some(Some(6))],
            vec![Some(Some(7)), Some(Some(7))],
        ];
        let report = run_rounds(&rounds).finish_without_result();
        assert_eq!(report.total_violations, 0);
    }
}
