//! The multi-process sweep fabric: shard-level leases over a shared
//! [`ResultStore`] directory.
//!
//! A sweep's trials are a pure function of `(spec digest, seed)`, and the
//! store already routes every record to one of [`SHARD_COUNT`] JSONL
//! shards by [`shard_index`]. The fabric turns that routing into a work
//! partition: a **worker process claims one shard at a time via a lease
//! file next to the shard** (`shard-NN.lease`), becomes that shard's only
//! writer, executes exactly the trials whose `(digest, seed)` map to it,
//! and releases the lease when the shard holds every one of them. N
//! independent OS processes pointed at the same store directory therefore
//! drain the same [`SweepSpec`] without ever duplicating work or
//! interleaving appends within a shard file.
//!
//! The lease protocol is built from three filesystem primitives that are
//! atomic on every platform the workspace targets:
//!
//! * **Claim** — `O_CREAT|O_EXCL` (`create_new`): exactly one process
//!   creates the lease file; everyone else sees `AlreadyExists`.
//! * **Heartbeat** — rewriting the lease body in place bumps a
//!   monotonically increasing **beat counter** stored *in the file*. A
//!   lease is *stale* only when a reclaimer has watched its
//!   `(holder, beat)` stamp stay frozen across a full TTL measured on the
//!   reclaimer's own monotonic clock (see [`LeaseWatch`]): the holder is
//!   then presumed dead (`kill -9`, OOM, power loss). File mtimes are
//!   never consulted — on shared filesystems (NFS and friends) mtimes
//!   come from *another machine's* clock, and skew would make a live
//!   lease look hours old (or a dead one perpetually fresh).
//! * **Reclaim** — `rename` of the stale lease to a tombstone: of any
//!   number of racing reclaimers exactly one rename succeeds, and the
//!   losers observe `NotFound`. The winner deletes the tombstone and the
//!   shard becomes claimable again.
//!
//! Crashes need no cleanup pass: a dead worker's shard is left exactly as
//! a killed `--out` run leaves a store — complete lines plus at most one
//! torn tail — and the next holder repairs it under the lease (see
//! [`ResultStore::repair_shard`]) before appending. The orchestrating
//! parent finishes with an ordinary single-process resume pass, which
//! also produces the run's aggregates, so the final stdout and the sorted
//! shard bytes are identical to a 1-process run no matter how many
//! workers ran or died.
//!
//! Clock time appears in exactly one decision — "is this lease's holder
//! still alive?" — and even there only the *local, monotonic* clock is
//! read, confined to the private `clock` boundary module; no simulated
//! quantity ever depends on it, and no cross-machine timestamp is ever
//! compared.

use std::fmt;
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::batch::{BatchStats, BatchStatsFold};
use crate::json::{self, Value};
use crate::sim::Sim;
use crate::spec::{SpecError, SweepSpec};
use crate::store::{fnv1a, shard_index, ResultStore, StoreError, SHARD_COUNT};
use crate::sweep::{StopReason, StoppingRule};

/// The fabric's clock boundary. Lease staleness is the one decision in
/// the workspace that is *inherently* time-based: it measures whether
/// another OS process is still alive, not anything about simulated
/// executions — trials themselves remain pure functions of
/// `(spec digest, seed)` regardless of what this module observes. Only
/// the local **monotonic** clock is read here: staleness compares two
/// readings of *this process's* clock against the TTL, never a file
/// timestamp written by a possibly skewed peer machine.
mod clock {
    use std::time::Duration;
    // lint:allow(wall-clock): lease staleness measures OS-process liveness (dead holders), not simulated time; confined to this boundary module
    use std::time::Instant;

    /// An opaque reading of the local monotonic clock.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    // lint:allow(wall-clock): the opaque wrapper that keeps raw readings from leaking out of this module
    pub struct Monotonic(Instant);

    /// The current local monotonic time.
    pub fn now() -> Monotonic {
        // lint:allow(wall-clock): the single sanctioned clock read; monotonic and local by construction, see module docs
        Monotonic(Instant::now())
    }

    impl Monotonic {
        /// Time elapsed between `earlier` and `self` (zero if `earlier`
        /// is not actually earlier).
        pub fn since(self, earlier: Monotonic) -> Duration {
            self.0.saturating_duration_since(earlier.0)
        }
    }
}

/// An error raised by fabric orchestration: spec expansion, store I/O, or
/// the lease files themselves.
#[derive(Debug)]
pub enum FabricError {
    /// Expanding or validating the sweep failed.
    Spec(SpecError),
    /// Reading from or appending to the result store failed.
    Store(StoreError),
    /// Creating, refreshing, or releasing a lease file failed.
    Lease {
        /// The lease (or tombstone) file involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Spec(e) => write!(f, "{e}"),
            FabricError::Store(e) => write!(f, "{e}"),
            FabricError::Lease { path, source } => {
                write!(f, "fabric lease error at {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FabricError::Spec(e) => Some(e),
            FabricError::Store(e) => Some(e),
            FabricError::Lease { source, .. } => Some(source),
        }
    }
}

impl From<SpecError> for FabricError {
    fn from(e: SpecError) -> Self {
        FabricError::Spec(e)
    }
}

impl From<StoreError> for FabricError {
    fn from(e: StoreError) -> Self {
        FabricError::Store(e)
    }
}

/// How a fabric worker identifies itself and judges its peers.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// This worker's identity, written into every lease it holds. Must be
    /// unique among concurrently running workers (the orchestrator uses
    /// `"<pid>"` or `"worker-<k>"`).
    pub holder: String,
    /// A lease whose beat counter has not advanced for this long — as
    /// observed on *this worker's* monotonic clock via [`LeaseWatch`] —
    /// is stale and may be reclaimed. Must comfortably exceed the
    /// slowest single trial plus scheduler noise: a *live* worker
    /// heartbeats every trial.
    pub lease_ttl: Duration,
    /// How long a worker sleeps between passes when every remaining shard
    /// is held by a live peer.
    pub poll_interval: Duration,
}

impl FabricConfig {
    /// A config with the default TTL (30 s) and poll interval (25 ms).
    pub fn new(holder: impl Into<String>) -> Self {
        FabricConfig {
            holder: holder.into(),
            lease_ttl: Duration::from_secs(30),
            poll_interval: Duration::from_millis(25),
        }
    }

    /// Overrides the stale-lease TTL.
    pub fn lease_ttl(mut self, ttl: Duration) -> Self {
        self.lease_ttl = ttl;
        self
    }

    /// Overrides the idle poll interval.
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }
}

/// One observable step of a worker's run, for progress reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerEvent {
    /// The worker claimed a shard's lease and is now its only writer.
    ShardClaimed {
        /// The claimed shard.
        shard: usize,
    },
    /// The worker finished a shard: every trial mapped to it is stored.
    ShardComplete {
        /// The finished shard.
        shard: usize,
        /// Trials this worker executed for the shard.
        executed: u64,
        /// Trials already stored when the worker got there.
        cached: u64,
    },
    /// The shard is incomplete but held by a live peer; the worker will
    /// come back to it.
    ShardBusy {
        /// The busy shard.
        shard: usize,
        /// The peer's holder identity (`"?"` if unreadable).
        holder: String,
    },
    /// The worker reclaimed a stale lease left by a dead peer.
    LeaseReclaimed {
        /// The reclaimed shard.
        shard: usize,
        /// The dead peer's holder identity (`"?"` if unreadable).
        holder: String,
    },
    /// The worker's own lease disappeared mid-shard (reclaimed after a
    /// stall longer than the TTL); it abandoned the shard immediately.
    LeaseLost {
        /// The abandoned shard.
        shard: usize,
    },
    /// An adaptive sweep's grid point stopped sampling early: this worker
    /// either derived the verdict at a batch boundary (and published the
    /// stop marker peers honor) or observed a peer's marker. Emitted at
    /// most once per point per worker.
    PointStopped {
        /// The stopped grid point (expansion index).
        point: usize,
        /// Seeds the point consumed before stopping.
        seeds_used: u64,
        /// Why the point stopped.
        reason: StopReason,
    },
}

/// What one worker did over its whole run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Leases successfully claimed.
    pub shards_claimed: u64,
    /// Trials executed by this worker.
    pub trials_executed: u64,
    /// Trials found already stored while working claimed shards.
    pub trials_cached: u64,
    /// Stale leases reclaimed from dead peers.
    pub leases_reclaimed: u64,
    /// Own leases lost mid-shard.
    pub leases_lost: u64,
    /// Idle passes slept through while peers held incomplete shards.
    pub idle_passes: u64,
    /// Adaptive grid points this worker saw stop early (derived or
    /// observed via a peer's marker).
    pub points_stopped: u64,
}

/// A held shard lease. Holding it makes this process the shard's only
/// writer until [`release`](Lease::release) or until the file goes stale
/// and a peer reclaims it.
#[derive(Debug)]
struct Lease {
    path: PathBuf,
    shard: usize,
    holder: String,
    beat: u64,
}

impl Lease {
    /// Refreshes the lease file (bumping the heartbeat counter and the
    /// mtime). Returns `false` if the lease is no longer ours — the file
    /// vanished or names another holder, meaning a peer reclaimed it
    /// after we stalled past the TTL — in which case the caller must
    /// abandon the shard without appending another record.
    ///
    /// The verify-then-write pair is not atomic; the remaining race
    /// window is microseconds against a TTL of seconds, and a reclaim
    /// only happens at all when this process has made no heartbeat for a
    /// full TTL.
    fn heartbeat(&mut self) -> Result<bool, FabricError> {
        match fs::read_to_string(&self.path) {
            Ok(text) if lease_holder(&text).as_deref() == Some(self.holder.as_str()) => {}
            Ok(_) => return Ok(false),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
            Err(source) => {
                return Err(FabricError::Lease {
                    path: self.path.clone(),
                    source,
                })
            }
        }
        self.beat += 1;
        fs::write(&self.path, lease_body(self.shard, &self.holder, self.beat)).map_err(
            |source| FabricError::Lease {
                path: self.path.clone(),
                source,
            },
        )?;
        Ok(true)
    }

    /// Removes the lease file, surrendering the shard. A no-op if the
    /// lease was already reclaimed by a peer.
    fn release(self) -> Result<(), FabricError> {
        match fs::read_to_string(&self.path) {
            Ok(text) if lease_holder(&text).as_deref() == Some(self.holder.as_str()) => {
                match fs::remove_file(&self.path) {
                    Ok(()) => Ok(()),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
                    Err(source) => Err(FabricError::Lease {
                        path: self.path,
                        source,
                    }),
                }
            }
            Ok(_) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(source) => Err(FabricError::Lease {
                path: self.path,
                source,
            }),
        }
    }
}

/// The lease file guarding `shard` in `dir`.
pub fn lease_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:02}.lease"))
}

fn lease_body(shard: usize, holder: &str, beat: u64) -> String {
    let mut body = Value::Object(vec![
        ("shard".to_string(), Value::Int(shard as i64)),
        ("holder".to_string(), Value::Str(holder.to_string())),
        ("beat".to_string(), Value::Int(beat as i64)),
    ])
    .to_json_compact();
    body.push('\n');
    body
}

/// The holder recorded in a lease file's body, if it parses.
fn lease_holder(text: &str) -> Option<String> {
    let value = json::parse(text.trim()).ok()?;
    Some(value.get("holder")?.as_str()?.to_string())
}

/// Reads the holder of `shard`'s lease in `dir`: `Ok(None)` if no lease
/// file exists, `"?"` if one exists but is unreadable (e.g. a claim that
/// died between create and write — staleness still reclaims it).
pub fn read_lease(dir: &Path, shard: usize) -> Result<Option<String>, FabricError> {
    let path = lease_path(dir, shard);
    match fs::read_to_string(&path) {
        Ok(text) => Ok(Some(lease_holder(&text).unwrap_or_else(|| "?".to_string()))),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(source) => Err(FabricError::Lease { path, source }),
    }
}

/// The identity stamp of a lease body: who holds it and how many
/// heartbeats they have written. Any change to the stamp — a new beat, a
/// new holder, even a previously unreadable body becoming readable —
/// proves the holder side is alive, so staleness is judged on stamp
/// *freezes*, never on file timestamps.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LeaseStamp {
    holder: Option<String>,
    beat: Option<u64>,
}

impl LeaseStamp {
    /// Parses the stamp out of a lease body. Unparseable bodies (a claim
    /// that died between create and write) yield a `None`/`None` stamp,
    /// which is as frozen as any other: staleness still reclaims them
    /// after a full TTL window.
    fn parse(text: &str) -> Self {
        let value = json::parse(text.trim()).ok();
        LeaseStamp {
            holder: value
                .as_ref()
                .and_then(|v| v.get("holder"))
                .and_then(Value::as_str)
                .map(str::to_string),
            beat: value
                .as_ref()
                .and_then(|v| v.get("beat"))
                .and_then(Value::as_u64),
        }
    }
}

/// A reclaimer's local memory of the lease stamps it has observed, keyed
/// by shard: the last `LeaseStamp` seen and the monotonic instant at
/// which that exact stamp was *first* seen.
///
/// This is what makes staleness clock-skew-proof: a lease is declared
/// stale only when its stamp has stayed frozen for a full TTL measured
/// between two reads of the *local* monotonic clock. Nothing about the
/// lease file's mtime — which on a shared filesystem is another
/// machine's opinion of the time — ever enters the decision, and a
/// reclaimer fresh off its own start-up can never reclaim anything
/// before it has personally watched a lease for one full TTL.
#[derive(Debug, Default)]
pub struct LeaseWatch {
    seen: std::collections::BTreeMap<usize, (LeaseStamp, clock::Monotonic)>,
}

impl LeaseWatch {
    /// A watch with no observations yet.
    pub fn new() -> Self {
        LeaseWatch::default()
    }

    /// Drops any observation for `shard` (the lease vanished or was
    /// reclaimed; the next lease there starts a fresh window).
    fn forget(&mut self, shard: usize) {
        self.seen.remove(&shard);
    }

    /// Records `stamp` for `shard` and returns how long this exact stamp
    /// has been continuously observed. A changed (or first-seen) stamp
    /// restarts the window at zero.
    fn observe(&mut self, shard: usize, stamp: LeaseStamp) -> Duration {
        let now = clock::now();
        match self.seen.get_mut(&shard) {
            Some((seen, since)) if *seen == stamp => now.since(*since),
            Some(entry) => {
                *entry = (stamp, now);
                Duration::ZERO
            }
            None => {
                self.seen.insert(shard, (stamp, now));
                Duration::ZERO
            }
        }
    }
}

/// Attempts to claim `shard`'s lease. `Ok(None)` means someone else holds
/// it (fresh or stale — the caller decides whether to reclaim).
fn try_claim(dir: &Path, shard: usize, holder: &str) -> Result<Option<Lease>, FabricError> {
    let path = lease_path(dir, shard);
    match OpenOptions::new().write(true).create_new(true).open(&path) {
        Ok(mut file) => {
            file.write_all(lease_body(shard, holder, 0).as_bytes())
                .map_err(|source| FabricError::Lease {
                    path: path.clone(),
                    source,
                })?;
            Ok(Some(Lease {
                path,
                shard,
                holder: holder.to_string(),
                beat: 0,
            }))
        }
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(None),
        Err(source) => Err(FabricError::Lease { path, source }),
    }
}

/// If `shard`'s lease is stale — its `(holder, beat)` stamp has stayed
/// frozen across a full `ttl` window as observed through `watch` on the
/// local monotonic clock — renames it to a tombstone (an atomic race
/// that exactly one reclaimer wins) and removes the tombstone, freeing
/// the shard for a fresh claim. Returns the dead holder's identity on
/// success, `Ok(None)` if the lease is live (its beat advanced, or this
/// watch has not yet observed it for a full TTL), vanished, or lost the
/// rename race.
fn reclaim_if_stale(
    dir: &Path,
    shard: usize,
    holder: &str,
    ttl: Duration,
    watch: &mut LeaseWatch,
) -> Result<Option<String>, FabricError> {
    let path = lease_path(dir, shard);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            watch.forget(shard);
            return Ok(None);
        }
        Err(source) => return Err(FabricError::Lease { path, source }),
    };
    let stamp = LeaseStamp::parse(&text);
    let prior = stamp.holder.clone().unwrap_or_else(|| "?".to_string());
    if watch.observe(shard, stamp) < ttl {
        return Ok(None);
    }
    // The tombstone name is derived from the *reclaimer*, so racing
    // reclaimers target distinct names and the rename itself is the
    // arbiter: the source file disappears for everyone but the winner.
    let tomb = dir.join(format!(
        ".shard-{shard:02}.lease.tomb-{:016x}",
        fnv1a(holder.as_bytes())
    ));
    match fs::rename(&path, &tomb) {
        Ok(()) => {
            let _ = fs::remove_file(&tomb);
            watch.forget(shard);
            Ok(Some(prior))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            watch.forget(shard);
            Ok(None)
        }
        Err(source) => Err(FabricError::Lease { path, source }),
    }
}

/// Removes every lease and tombstone file under `dir`, returning how many
/// were removed. For the orchestrating parent **after all workers have
/// exited**: crashed workers leave lease files behind, and the final
/// single-process resume pass should start from a clean directory.
pub fn clean_leases(dir: impl AsRef<Path>) -> Result<usize, FabricError> {
    let dir = dir.as_ref();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(source) => {
            return Err(FabricError::Lease {
                path: dir.to_path_buf(),
                source,
            })
        }
    };
    let mut removed = 0;
    for entry in entries {
        let entry = entry.map_err(|source| FabricError::Lease {
            path: dir.to_path_buf(),
            source,
        })?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let is_lease = name.starts_with("shard-") && name.ends_with(".lease");
        let is_tomb = name.starts_with(".shard-") && name.contains(".lease.tomb-");
        if is_lease || is_tomb {
            match fs::remove_file(entry.path()) {
                Ok(()) => removed += 1,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(source) => {
                    return Err(FabricError::Lease {
                        path: entry.path(),
                        source,
                    })
                }
            }
        }
    }
    Ok(removed)
}

/// The canonical digest naming a sweep's cross-process coordination files
/// (adaptive stop markers): FNV-1a over the sweep's compact canonical
/// JSON. Every worker derives it from the same spec, so markers published
/// by one process are found by all.
pub fn sweep_digest(sweep: &SweepSpec) -> u64 {
    fnv1a(sweep.to_value().to_json_compact().as_bytes())
}

/// The stop-marker file recording that `point` of the sweep identified by
/// `digest` stopped sampling early.
pub fn stop_marker_path(dir: &Path, digest: u64, point: usize) -> PathBuf {
    dir.join(format!("stop-{digest:016x}-p{point:03}.marker"))
}

/// Publishes a stop verdict for `point`: `create_new`, so of any number of
/// workers deriving the same (deterministic) verdict exactly one writes
/// the file and the rest see `AlreadyExists` — which is fine, the bytes
/// they would have written are identical.
fn write_stop_marker(
    dir: &Path,
    digest: u64,
    point: usize,
    reason: StopReason,
    seeds_used: u64,
) -> Result<(), FabricError> {
    let path = stop_marker_path(dir, digest, point);
    let mut body = Value::Object(vec![
        ("point".to_string(), Value::Int(point as i64)),
        ("reason".to_string(), Value::Str(reason.name().to_string())),
        ("seeds_used".to_string(), Value::Int(seeds_used as i64)),
    ])
    .to_json_compact();
    body.push('\n');
    match OpenOptions::new().write(true).create_new(true).open(&path) {
        Ok(mut file) => file
            .write_all(body.as_bytes())
            .map_err(|source| FabricError::Lease { path, source }),
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(()),
        Err(source) => Err(FabricError::Lease { path, source }),
    }
}

/// Reads `point`'s published stop verdict, if any. A torn or unparseable
/// marker (a writer that died mid-write) reads as absent: every worker
/// re-derives the same verdict from the store anyway, so markers are an
/// acceleration, never the source of truth.
fn read_stop_marker(
    dir: &Path,
    digest: u64,
    point: usize,
) -> Result<Option<(StopReason, u64)>, FabricError> {
    let path = stop_marker_path(dir, digest, point);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(source) => return Err(FabricError::Lease { path, source }),
    };
    let Ok(value) = json::parse(text.trim()) else {
        return Ok(None);
    };
    let reason = match value.get("reason").and_then(Value::as_str) {
        Some("half_width") => StopReason::HalfWidth,
        Some("dominated") => StopReason::Dominated,
        Some("exhausted") => StopReason::Exhausted,
        _ => return Ok(None),
    };
    let Some(seeds_used) = value.get("seeds_used").and_then(Value::as_u64) else {
        return Ok(None);
    };
    Ok(Some((reason, seeds_used)))
}

/// Removes every stop-marker file under `dir`, returning how many were
/// removed. For the orchestrating parent after aggregation: markers are
/// per-run coordination state, not results, and the store directory
/// should end holding only shard `.jsonl` files.
pub fn clean_stop_markers(dir: impl AsRef<Path>) -> Result<usize, FabricError> {
    let dir = dir.as_ref();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(source) => {
            return Err(FabricError::Lease {
                path: dir.to_path_buf(),
                source,
            })
        }
    };
    let mut removed = 0;
    for entry in entries {
        let entry = entry.map_err(|source| FabricError::Lease {
            path: dir.to_path_buf(),
            source,
        })?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("stop-") && name.ends_with(".marker") {
            match fs::remove_file(entry.path()) {
                Ok(()) => removed += 1,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(source) => {
                    return Err(FabricError::Lease {
                        path: entry.path(),
                        source,
                    })
                }
            }
        }
    }
    Ok(removed)
}

/// Runs one fabric worker to completion: claims shards of `store_dir` one
/// at a time, executes every trial of `sweep` that maps to a claimed
/// shard and is not already stored, and returns once **every** shard of
/// the sweep is complete — whether this worker or its peers finished
/// them. Emits [`WorkerEvent`]s through `on_event` as it goes.
///
/// The worker is crash-equivalent to a killed `--out` run: at any instant
/// its claimed shard holds only complete, decodable lines plus at most
/// one torn tail, so `--resume` (or the next lease holder) continues
/// exactly as if a single-process sweep had been interrupted.
///
/// Workers scan shards starting at an offset derived from their holder
/// identity, so concurrent workers spread over different shards instead
/// of convoying on shard 0.
///
/// A sweep that declares a [`StoppingRule`] runs in *phase-locked seed
/// batches* instead of one flat partition: each phase drains one batch
/// window through the same lease protocol, then every worker folds the
/// store's seed-ordered prefix and applies
/// [`StoppingRule::decide_batch`] — the same pure decision the in-process
/// runner uses, over the same bytes, so all processes derive identical
/// verdicts independently. The first worker to derive a stop publishes a
/// marker file ([`stop_marker_path`]) that late-starting peers honor
/// without recomputation; trials past a stopped point's boundary are
/// never scheduled, and the final sorted shard bytes are identical to a
/// single-process adaptive run.
pub fn run_worker<F>(
    store_dir: impl AsRef<Path>,
    sweep: &SweepSpec,
    config: &FabricConfig,
    mut on_event: F,
) -> Result<WorkerSummary, FabricError>
where
    F: FnMut(&WorkerEvent),
{
    let dir = store_dir.as_ref();
    let store = ResultStore::open_shared(dir)?;
    match &sweep.stop {
        None => run_worker_fixed(dir, &store, sweep, config, &mut on_event),
        Some(rule) => run_worker_adaptive(dir, &store, sweep, rule, config, &mut on_event),
    }
}

fn run_worker_fixed<F>(
    dir: &Path,
    store: &ResultStore,
    sweep: &SweepSpec,
    config: &FabricConfig,
    on_event: &mut F,
) -> Result<WorkerSummary, FabricError>
where
    F: FnMut(&WorkerEvent),
{
    let seeds = sweep.seeds()?;
    let points = sweep.expand()?;
    let sims: Vec<Sim> = points
        .iter()
        .map(|point| Sim::from_spec(&point.spec))
        .collect::<Result<_, SpecError>>()?;
    let digests: Vec<u64> = sims.iter().map(Sim::digest).collect();

    // Partition the sweep's trials by their store shard: the shard is the
    // fabric's unit of work, and the holder of its lease executes exactly
    // the trials routed to it (in deterministic point-major order).
    let mut by_shard: Vec<Vec<(usize, u64)>> = vec![Vec::new(); SHARD_COUNT];
    for (point, &digest) in digests.iter().enumerate() {
        for seed in seeds.clone() {
            by_shard[shard_index(digest, seed)].push((point, seed));
        }
    }

    let mut summary = WorkerSummary::default();
    // This worker's private view of peer lease stamps: a peer's lease is
    // only ever reclaimed after *this* process has watched its beat
    // counter stay frozen for a full TTL on its own monotonic clock.
    let mut watch = LeaseWatch::new();
    drain_shards(
        dir,
        store,
        &sims,
        &digests,
        &by_shard,
        config,
        &mut watch,
        &mut summary,
        on_event,
    )?;
    Ok(summary)
}

/// Drains one shard-partitioned work list to completion under the lease
/// protocol: the single pass-claim-execute-release loop shared by the
/// fixed path (whole sweep at once) and the adaptive path (one batch
/// window per call). Returns once every listed trial is stored.
#[allow(clippy::too_many_arguments)]
fn drain_shards<F>(
    dir: &Path,
    store: &ResultStore,
    sims: &[Sim],
    digests: &[u64],
    by_shard: &[Vec<(usize, u64)>],
    config: &FabricConfig,
    watch: &mut LeaseWatch,
    summary: &mut WorkerSummary,
    on_event: &mut F,
) -> Result<(), FabricError>
where
    F: FnMut(&WorkerEvent),
{
    let start = (fnv1a(config.holder.as_bytes()) % SHARD_COUNT as u64) as usize;
    let mut done: Vec<bool> = by_shard.iter().map(Vec::is_empty).collect();
    loop {
        let mut progress = false;
        for offset in 0..SHARD_COUNT {
            let shard = (start + offset) % SHARD_COUNT;
            if done[shard] {
                continue;
            }
            // A peer may have completed the shard since we last looked:
            // merge its appends and skip the shard if nothing is missing.
            store.refresh_shard(shard)?;
            if by_shard[shard]
                .iter()
                .all(|&(point, seed)| store.contains(digests[point], seed))
            {
                done[shard] = true;
                progress = true;
                continue;
            }
            match try_claim(dir, shard, &config.holder)? {
                Some(mut lease) => {
                    summary.shards_claimed += 1;
                    on_event(&WorkerEvent::ShardClaimed { shard });
                    // Single writer now: repair a dead predecessor's torn
                    // tail before appending (also merges its good records
                    // into our index, so they count as cached below).
                    store.repair_shard(shard)?;
                    let mut executed = 0u64;
                    let mut cached = 0u64;
                    let mut lost = false;
                    for &(point, seed) in &by_shard[shard] {
                        if store.contains(digests[point], seed) {
                            cached += 1;
                            continue;
                        }
                        // Heartbeat *before* every append: if the lease
                        // was reclaimed (we stalled past the TTL), the new
                        // holder may already be appending — stop instantly.
                        if !lease.heartbeat()? {
                            lost = true;
                            break;
                        }
                        let outcome = sims[point].run_one(seed);
                        store.put(digests[point], seed, &outcome)?;
                        executed += 1;
                    }
                    summary.trials_executed += executed;
                    summary.trials_cached += cached;
                    if lost {
                        summary.leases_lost += 1;
                        on_event(&WorkerEvent::LeaseLost { shard });
                        // The reclaimer owns the lease file; leave it be.
                    } else {
                        done[shard] = true;
                        progress = true;
                        lease.release()?;
                        on_event(&WorkerEvent::ShardComplete {
                            shard,
                            executed,
                            cached,
                        });
                    }
                }
                None => {
                    if let Some(holder) =
                        reclaim_if_stale(dir, shard, &config.holder, config.lease_ttl, watch)?
                    {
                        summary.leases_reclaimed += 1;
                        progress = true;
                        on_event(&WorkerEvent::LeaseReclaimed { shard, holder });
                        // Claimable again; the next pass races for it.
                    } else if let Some(holder) = read_lease(dir, shard)? {
                        on_event(&WorkerEvent::ShardBusy { shard, holder });
                    }
                }
            }
        }
        if done.iter().all(|&d| d) {
            return Ok(());
        }
        if !progress {
            // Every remaining shard is held by a live peer: it either
            // finishes (the shard completes) or dies (its lease goes
            // stale and is reclaimed), so this loop terminates.
            summary.idle_passes += 1;
            std::thread::sleep(config.poll_interval);
        }
    }
}

fn run_worker_adaptive<F>(
    dir: &Path,
    store: &ResultStore,
    sweep: &SweepSpec,
    rule: &StoppingRule,
    config: &FabricConfig,
    on_event: &mut F,
) -> Result<WorkerSummary, FabricError>
where
    F: FnMut(&WorkerEvent),
{
    let seeds = sweep.effective_seeds()?;
    let points = sweep.expand()?;
    let sims: Vec<Sim> = points
        .iter()
        .map(|point| Sim::from_spec(&point.spec))
        .collect::<Result<_, SpecError>>()?;
    let digests: Vec<u64> = sims.iter().map(Sim::digest).collect();
    let digest = sweep_digest(sweep);
    let n = points.len();

    let mut summary = WorkerSummary::default();
    let mut watch = LeaseWatch::new();
    // Per-point seed cap: the budget end until a stop verdict tightens it
    // to the verdict's batch boundary.
    let mut limit: Vec<u64> = vec![seeds.end; n];
    let mut stopped: Vec<Option<StopReason>> = vec![None; n];
    let mut announced: Vec<bool> = vec![false; n];

    let mut next = seeds.start;
    while next < seeds.end {
        // Honor verdicts peers have already published: a late-starting
        // worker never schedules trials past a stopped point's boundary.
        for point in 0..n {
            if stopped[point].is_none() {
                if let Some((reason, used)) = read_stop_marker(dir, digest, point)? {
                    stopped[point] = Some(reason);
                    limit[point] = seeds.start + used;
                }
            }
        }
        let batch_end = seeds.end.min(next + rule.batch);
        // The trials this phase still owes the store, shard-partitioned
        // exactly like the fixed path partitions the whole sweep.
        let mut by_shard: Vec<Vec<(usize, u64)>> = vec![Vec::new(); SHARD_COUNT];
        let mut phase_trials = 0u64;
        for (point, &point_digest) in digests.iter().enumerate() {
            for seed in next..batch_end.min(limit[point]) {
                by_shard[shard_index(point_digest, seed)].push((point, seed));
                phase_trials += 1;
            }
        }
        if phase_trials == 0 {
            // Every surviving point is capped below this window.
            break;
        }
        drain_shards(
            dir,
            store,
            &sims,
            &digests,
            &by_shard,
            config,
            &mut watch,
            &mut summary,
            on_event,
        )?;
        // The whole prefix is now stored. Fold it per point in seed order
        // and apply the shared pure decision — every process folds the
        // same bytes in the same order, so all derive identical verdicts.
        let stats: Vec<BatchStats> = (0..n)
            .map(|point| {
                let mut fold = BatchStatsFold::new();
                for seed in seeds.start..batch_end.min(limit[point]) {
                    // Present by construction: drain_shards returned, and
                    // earlier phases completed before this one started.
                    if let Some(outcome) = store.get(digests[point], seed) {
                        fold.push(&outcome);
                    }
                }
                fold.finish()
            })
            .collect();
        let before = stopped.clone();
        rule.decide_batch(&stats, &mut stopped, batch_end - seeds.start);
        for point in 0..n {
            if before[point].is_none() {
                if let Some(reason) = stopped[point] {
                    limit[point] = batch_end;
                    write_stop_marker(dir, digest, point, reason, batch_end - seeds.start)?;
                }
            }
        }
        for point in 0..n {
            if let Some(reason) = stopped[point] {
                if !announced[point] {
                    announced[point] = true;
                    summary.points_stopped += 1;
                    on_event(&WorkerEvent::PointStopped {
                        point,
                        seeds_used: limit[point] - seeds.start,
                        reason,
                    });
                }
            }
        }
        next = batch_end;
        if stopped.iter().all(Option::is_some) {
            break;
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;
    use crate::store::spec_digest;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wsync-fabric-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_sweep() -> SweepSpec {
        let base = ScenarioSpec::new("trapdoor", 6, 8, 1).with_adversary("random");
        SweepSpec::new(base, 0..6).with_axis("disruption_bound", vec![1u64.into(), 3u64.into()])
    }

    #[test]
    fn single_worker_completes_the_whole_sweep() {
        let dir = temp_dir("solo");
        let sweep = small_sweep();
        let summary = run_worker(&dir, &sweep, &FabricConfig::new("solo"), |_| {}).unwrap();
        assert_eq!(summary.trials_executed, 12);
        assert_eq!(summary.trials_cached, 0);
        assert_eq!(summary.leases_lost, 0);
        // Every trial is stored and every lease released.
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 12);
        for shard in 0..SHARD_COUNT {
            assert!(!lease_path(&dir, shard).exists());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_second_worker_finds_everything_cached() {
        let dir = temp_dir("rerun");
        let sweep = small_sweep();
        run_worker(&dir, &sweep, &FabricConfig::new("first"), |_| {}).unwrap();
        let summary = run_worker(&dir, &sweep, &FabricConfig::new("second"), |_| {}).unwrap();
        assert_eq!(summary.trials_executed, 0);
        // Completion may be observed via refresh (shard skipped without a
        // claim) or via a claim that finds all trials cached.
        assert_eq!(summary.leases_reclaimed, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn claim_is_exclusive_and_release_frees_it() {
        let dir = temp_dir("claim");
        fs::create_dir_all(&dir).unwrap();
        let lease = try_claim(&dir, 3, "alice").unwrap().expect("first claim");
        assert!(try_claim(&dir, 3, "bob").unwrap().is_none());
        assert_eq!(read_lease(&dir, 3).unwrap().as_deref(), Some("alice"));
        lease.release().unwrap();
        assert_eq!(read_lease(&dir, 3).unwrap(), None);
        assert!(try_claim(&dir, 3, "bob").unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lease_is_reclaimed_and_fresh_lease_is_not() {
        let dir = temp_dir("stale");
        fs::create_dir_all(&dir).unwrap();
        let _abandoned = try_claim(&dir, 5, "dead-worker").unwrap().expect("claim");
        let mut watch = LeaseWatch::new();
        // Fresh: under an hour-long TTL the stamp has not been watched
        // anywhere near long enough.
        assert_eq!(
            reclaim_if_stale(&dir, 5, "bob", Duration::from_secs(3600), &mut watch).unwrap(),
            None
        );
        // Stale: the same frozen stamp has now been observed across a
        // full (zero-length) TTL window on bob's own clock.
        assert_eq!(
            reclaim_if_stale(&dir, 5, "bob", Duration::ZERO, &mut watch).unwrap(),
            Some("dead-worker".to_string())
        );
        // The shard is claimable again and a second reclaimer sees
        // nothing to reclaim.
        let mut carol_watch = LeaseWatch::new();
        assert_eq!(
            reclaim_if_stale(&dir, 5, "carol", Duration::ZERO, &mut carol_watch).unwrap(),
            None
        );
        assert!(try_claim(&dir, 5, "bob").unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_detects_a_reclaimed_lease() {
        let dir = temp_dir("lost");
        fs::create_dir_all(&dir).unwrap();
        let mut lease = try_claim(&dir, 2, "slow-worker").unwrap().expect("claim");
        assert!(lease.heartbeat().unwrap());
        // A peer reclaims the lease (zero TTL: any observed stamp is
        // instantly a full window old) and claims it itself.
        let mut watch = LeaseWatch::new();
        reclaim_if_stale(&dir, 2, "fast-worker", Duration::ZERO, &mut watch)
            .unwrap()
            .expect("reclaimed");
        let _theirs = try_claim(&dir, 2, "fast-worker").unwrap().expect("claim");
        assert!(
            !lease.heartbeat().unwrap(),
            "heartbeat must report the lease as lost"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// Sets the lease file's mtime `offset_secs` away from now (negative
    /// = into the past), simulating what a clock-skewed NFS server would
    /// stamp. The staleness rule must be blind to it.
    fn set_lease_mtime(path: &Path, offset_secs: i64) {
        // lint:allow(wall-clock): test scaffolding planting the skewed cross-machine mtimes the beat-counter rule must ignore
        let now = std::time::SystemTime::now();
        let skewed = if offset_secs >= 0 {
            now + Duration::from_secs(offset_secs as u64)
        } else {
            now - Duration::from_secs(offset_secs.unsigned_abs())
        };
        let file = OpenOptions::new().write(true).open(path).unwrap();
        file.set_modified(skewed).unwrap();
    }

    #[test]
    fn skewed_mtimes_do_not_sway_staleness_only_frozen_beats_do() {
        let dir = temp_dir("skew");
        fs::create_dir_all(&dir).unwrap();
        let ttl = Duration::from_millis(80);
        let mut live = try_claim(&dir, 1, "live-worker").unwrap().expect("claim");
        let _dead = try_claim(&dir, 4, "dead-worker").unwrap().expect("claim");
        // Worst-case skew in both directions: the live lease looks an
        // hour old (the old mtime rule would reclaim it on sight), the
        // dead lease looks an hour in the future (the old rule would
        // keep it forever).
        set_lease_mtime(&lease_path(&dir, 1), -3600);
        set_lease_mtime(&lease_path(&dir, 4), 3600);
        let mut watch = LeaseWatch::new();
        // First pass: nothing is reclaimable — no stamp has been watched
        // for a full TTL yet, no matter what the mtimes claim.
        assert_eq!(
            reclaim_if_stale(&dir, 1, "reclaimer", ttl, &mut watch).unwrap(),
            None
        );
        assert_eq!(
            reclaim_if_stale(&dir, 4, "reclaimer", ttl, &mut watch).unwrap(),
            None
        );
        // The live holder heartbeats (advancing its beat counter); the
        // dead one cannot. Re-plant the hour-old mtime afterwards so the
        // beat is the *only* thing distinguishing the two.
        std::thread::sleep(ttl + Duration::from_millis(40));
        assert!(live.heartbeat().unwrap());
        set_lease_mtime(&lease_path(&dir, 1), -3600);
        // Second pass, a full TTL later: the frozen-beat lease is
        // reclaimed despite its future mtime; the live one is kept
        // despite its ancient mtime.
        assert_eq!(
            reclaim_if_stale(&dir, 4, "reclaimer", ttl, &mut watch).unwrap(),
            Some("dead-worker".to_string())
        );
        assert_eq!(
            reclaim_if_stale(&dir, 1, "reclaimer", ttl, &mut watch).unwrap(),
            None
        );
        // Once the live holder genuinely stops beating, a further full
        // TTL of frozen observations reclaims it too.
        std::thread::sleep(ttl + Duration::from_millis(40));
        assert_eq!(
            reclaim_if_stale(&dir, 1, "reclaimer", ttl, &mut watch).unwrap(),
            Some("live-worker".to_string())
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_leases_removes_only_fabric_files() {
        let dir = temp_dir("clean");
        fs::create_dir_all(&dir).unwrap();
        let _a = try_claim(&dir, 0, "x").unwrap().unwrap();
        let _b = try_claim(&dir, 7, "y").unwrap().unwrap();
        fs::write(dir.join(".shard-03.lease.tomb-00000000deadbeef"), "{}").unwrap();
        fs::write(dir.join("shard-00.jsonl"), "").unwrap();
        assert_eq!(clean_leases(&dir).unwrap(), 3);
        assert!(dir.join("shard-00.jsonl").exists());
        assert_eq!(read_lease(&dir, 0).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_results_match_a_sweep_runner_run_bit_for_bit() {
        use crate::sweep::SweepRunner;
        let dir_fabric = temp_dir("vs-runner-fabric");
        let dir_runner = temp_dir("vs-runner-direct");
        let sweep = small_sweep();
        run_worker(&dir_fabric, &sweep, &FabricConfig::new("w"), |_| {}).unwrap();
        SweepRunner::new()
            .record_only(std::sync::Arc::new(ResultStore::open(&dir_runner).unwrap()))
            .run(&sweep)
            .unwrap();
        // Byte-identical sorted shard contents: the fabric wrote exactly
        // the records a single-process sweep writes.
        for shard in 0..SHARD_COUNT {
            let read = |dir: &Path| {
                let mut lines: Vec<String> =
                    fs::read_to_string(dir.join(format!("shard-{shard:02}.jsonl")))
                        .map(|t| t.lines().map(str::to_string).collect())
                        .unwrap_or_default();
                lines.sort();
                lines
            };
            assert_eq!(read(&dir_fabric), read(&dir_runner), "shard {shard}");
        }
        let _ = fs::remove_dir_all(&dir_fabric);
        let _ = fs::remove_dir_all(&dir_runner);
    }

    fn adaptive_sweep() -> SweepSpec {
        use crate::sweep::StopMetric;
        small_sweep().with_stop(
            StoppingRule::new(StopMetric::SyncRate, 0.3)
                .with_min_seeds(4)
                .with_batch(4)
                .with_max_seeds(32),
        )
    }

    #[test]
    fn adaptive_worker_matches_in_process_adaptive_run_bit_for_bit() {
        use crate::sweep::SweepRunner;
        let dir_fabric = temp_dir("adaptive-fabric");
        let dir_runner = temp_dir("adaptive-direct");
        let sweep = adaptive_sweep();
        let mut events = Vec::new();
        let summary = run_worker(&dir_fabric, &sweep, &FabricConfig::new("w"), |e| {
            events.push(e.clone());
        })
        .unwrap();
        let direct = SweepRunner::new()
            .record_only(std::sync::Arc::new(ResultStore::open(&dir_runner).unwrap()))
            .run(&sweep)
            .unwrap();
        // same trials executed, and byte-identical sorted shard contents
        assert_eq!(summary.trials_executed, direct.executed_trials());
        for shard in 0..SHARD_COUNT {
            let read = |dir: &Path| {
                let mut lines: Vec<String> =
                    fs::read_to_string(dir.join(format!("shard-{shard:02}.jsonl")))
                        .map(|t| t.lines().map(str::to_string).collect())
                        .unwrap_or_default();
                lines.sort();
                lines
            };
            assert_eq!(read(&dir_fabric), read(&dir_runner), "shard {shard}");
        }
        // the worker announced each point's stop, matching the report
        let stops: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                WorkerEvent::PointStopped {
                    point,
                    seeds_used,
                    reason,
                } => Some((*point, *seeds_used, *reason)),
                _ => None,
            })
            .collect();
        assert_eq!(summary.points_stopped as usize, stops.len());
        for point_stats in direct.points.iter().filter(|p| p.stopped_early) {
            assert!(stops
                .iter()
                .any(|&(_, used, reason)| used == point_stats.seeds_used()
                    && Some(reason) == point_stats.stop));
        }
        // markers were published for the stopped points, and clean-up
        // leaves only shard files behind
        let digest = sweep_digest(&sweep);
        for (point, stats) in direct.points.iter().enumerate() {
            assert_eq!(
                stop_marker_path(&dir_fabric, digest, point).exists(),
                stats.stopped_early
            );
        }
        let removed = clean_stop_markers(&dir_fabric).unwrap();
        assert_eq!(removed as u64, direct.stopped_early_points());
        for entry in fs::read_dir(&dir_fabric).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                name.to_str().unwrap().ends_with(".jsonl"),
                "leftover {name:?}"
            );
        }
        let _ = fs::remove_dir_all(&dir_fabric);
        let _ = fs::remove_dir_all(&dir_runner);
    }

    #[test]
    fn second_adaptive_worker_honors_markers_and_executes_nothing() {
        let dir = temp_dir("adaptive-rerun");
        let sweep = adaptive_sweep();
        run_worker(&dir, &sweep, &FabricConfig::new("first"), |_| {}).unwrap();
        let mut stops = 0;
        let summary = run_worker(&dir, &sweep, &FabricConfig::new("second"), |e| {
            if matches!(e, WorkerEvent::PointStopped { .. }) {
                stops += 1;
            }
        })
        .unwrap();
        assert_eq!(summary.trials_executed, 0);
        assert_eq!(summary.points_stopped, stops);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_stop_marker_reads_as_absent() {
        let dir = temp_dir("torn-marker");
        fs::create_dir_all(&dir).unwrap();
        let path = stop_marker_path(&dir, 0xabcd, 1);
        fs::write(&path, "{\"point\": 1, \"rea").unwrap();
        assert_eq!(read_stop_marker(&dir, 0xabcd, 1).unwrap(), None);
        assert_eq!(read_stop_marker(&dir, 0xabcd, 2).unwrap(), None);
        assert_eq!(clean_stop_markers(&dir).unwrap(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_partition_covers_every_trial_exactly_once() {
        let sweep = small_sweep();
        let points = sweep.expand().unwrap();
        let seeds = sweep.seeds().unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for point in &points {
            let digest = spec_digest(&point.spec);
            for seed in seeds.clone() {
                let shard = shard_index(digest, seed);
                assert!(shard < SHARD_COUNT);
                assert!(seen.insert((digest, seed)), "trial mapped twice");
            }
        }
        assert_eq!(seen.len(), points.len() * 6);
    }
}
