//! Declarative, serializable simulation specs.
//!
//! The paper's experiment grid is a cross product of (protocol, adversary,
//! activation schedule, N/F/t) cells. [`ScenarioSpec`] is the declarative
//! description of one such cell — protocol *by name* plus parameters,
//! adversary by name plus parameters, activation schedule, instance sizes
//! and bounds — and [`SweepSpec`] extends it with a seed range and a
//! parameter grid. Both (de)serialize as JSON ([`ScenarioSpec::to_json`] /
//! [`ScenarioSpec::from_json`]), so a scenario file checked into a
//! repository runs with zero recompilation via
//! `run_experiments --spec file.json` or [`Sim::from_spec`](crate::sim::Sim).
//!
//! Names are resolved against the open [`Registry`](crate::registry) —
//! downstream crates register their own protocols and adversaries and gain
//! the whole spec/sweep/batch machinery for free. All validation is
//! front-loaded: a bad name, a mistyped parameter, or an inconsistent
//! instance (`t ≥ F`, `N < n`, a zero bound) surfaces as a typed
//! [`SpecError`] from [`Sim::from_spec`](crate::sim::Sim::from_spec)
//! *before* any round is simulated, never as a panic mid-run.

use std::fmt;

use wsync_radio::activation::ActivationSchedule;
use wsync_radio::error::ConfigError;

use serde::{Deserialize, Serialize};

use crate::json::{self, JsonError, Value};
use crate::runner::Scenario;
use crate::sweep::StoppingRule;

/// Error raised while building, decoding, or validating a simulation spec.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec names a protocol the registry does not know.
    UnknownProtocol {
        /// The unresolvable name.
        name: String,
        /// The names the registry does know, sorted.
        known: Vec<String>,
    },
    /// The spec names an adversary the registry does not know.
    UnknownAdversary {
        /// The unresolvable name.
        name: String,
        /// The names the registry does know, sorted.
        known: Vec<String>,
    },
    /// The spec names a probe the registry does not know.
    UnknownProbe {
        /// The unresolvable name.
        name: String,
        /// The names the registry does know, sorted.
        known: Vec<String>,
    },
    /// The spec names a fault layer the registry does not know.
    UnknownFault {
        /// The unresolvable name.
        name: String,
        /// The names the registry does know, sorted.
        known: Vec<String>,
    },
    /// A factory requires a parameter the spec does not provide.
    MissingParam {
        /// The component (protocol/adversary name) that needed it.
        component: String,
        /// The missing parameter key.
        param: String,
    },
    /// A parameter has the wrong type or an out-of-range value.
    BadParam {
        /// The component (protocol/adversary name) being configured.
        component: String,
        /// The offending parameter key.
        param: String,
        /// What the factory expected.
        expected: &'static str,
        /// What the spec contained.
        found: String,
    },
    /// A parameter key the factory does not recognise (usually a typo).
    UnknownParam {
        /// The component (protocol/adversary name) being configured.
        component: String,
        /// The unrecognised key.
        param: String,
        /// The keys the factory accepts.
        allowed: Vec<String>,
    },
    /// The instance parameters fail engine validation (`t ≥ F`, `n = 0`,
    /// `N < n`, zero round cap).
    InvalidConfig(ConfigError),
    /// The spec document is not valid JSON.
    Json(JsonError),
    /// The JSON is well-formed but does not have the spec's shape.
    Malformed {
        /// Which field or context the problem is in.
        context: String,
        /// What went wrong.
        message: String,
    },
    /// A sweep axis has no values.
    EmptySweepAxis {
        /// The axis' field path.
        field: String,
    },
    /// A sweep axis names a field that cannot be swept.
    UnknownSweepField {
        /// The unknown field path.
        field: String,
    },
    /// The sweep's seed range is inverted.
    InvalidSeedRange {
        /// Range start.
        start: u64,
        /// Range end (exclusive).
        end: u64,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownProtocol { name, known } => write!(
                f,
                "unknown protocol \"{name}\"; registered protocols: {}",
                known.join(", ")
            ),
            SpecError::UnknownAdversary { name, known } => write!(
                f,
                "unknown adversary \"{name}\"; registered adversaries: {}",
                known.join(", ")
            ),
            SpecError::UnknownProbe { name, known } => write!(
                f,
                "unknown probe \"{name}\"; registered probes: {}",
                known.join(", ")
            ),
            SpecError::UnknownFault { name, known } => write!(
                f,
                "unknown fault layer \"{name}\"; registered fault layers: {}",
                known.join(", ")
            ),
            SpecError::MissingParam { component, param } => {
                write!(f, "{component}: required parameter \"{param}\" is missing")
            }
            SpecError::BadParam {
                component,
                param,
                expected,
                found,
            } => write!(
                f,
                "{component}: parameter \"{param}\" expects {expected}, found {found}"
            ),
            SpecError::UnknownParam {
                component,
                param,
                allowed,
            } => write!(
                f,
                "{component}: unknown parameter \"{param}\"; accepted parameters: {}",
                if allowed.is_empty() {
                    "(none)".to_string()
                } else {
                    allowed.join(", ")
                }
            ),
            SpecError::InvalidConfig(e) => write!(f, "invalid simulation configuration: {e}"),
            SpecError::Json(e) => write!(f, "{e}"),
            SpecError::Malformed { context, message } => write!(f, "{context}: {message}"),
            SpecError::EmptySweepAxis { field } => {
                write!(f, "sweep axis \"{field}\" has no values")
            }
            SpecError::UnknownSweepField { field } => write!(
                f,
                "sweep axis \"{field}\" is not sweepable; use num_nodes, num_frequencies, \
                 disruption_bound, upper_bound_n, max_rounds, protocol.<param>, \
                 adversary.<param>, or fault.<name>.<param>"
            ),
            SpecError::InvalidSeedRange { start, end } => {
                write!(
                    f,
                    "invalid seed range: start {start} is not below end {end}"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::InvalidConfig(e) => Some(e),
            SpecError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SpecError {
    fn from(e: ConfigError) -> Self {
        SpecError::InvalidConfig(e)
    }
}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::Json(e)
    }
}

/// An ordered bag of named parameters for a protocol or adversary factory.
///
/// Values are JSON [`Value`]s; factories read them through typed accessors
/// that produce [`SpecError::BadParam`] / [`SpecError::MissingParam`] on
/// mismatch and reject unknown keys (catching typos at build time).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Params(Vec<(String, Value)>);

impl Params {
    /// An empty parameter bag.
    pub fn new() -> Self {
        Params(Vec::new())
    }

    /// Whether the bag holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw entries, in insertion order.
    pub fn entries(&self) -> &[(String, Value)] {
        &self.0
    }

    /// Looks up a parameter by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Inserts or replaces a parameter.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.0.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.0.push((key, value));
        }
    }

    /// Builder-style [`set`](Self::set).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(key, value);
        self
    }

    fn to_value(&self) -> Value {
        Value::Object(self.0.clone())
    }

    fn from_value(value: &Value, context: &str) -> Result<Self, SpecError> {
        match value {
            Value::Object(members) => Ok(Params(members.clone())),
            other => Err(SpecError::Malformed {
                context: context.to_string(),
                message: format!("\"params\" must be an object, found {}", other.type_name()),
            }),
        }
    }
}

/// A typed reader over a [`Params`] bag, bound to the component it
/// configures. Factories use it to pull parameters with precise errors and
/// to reject unknown keys via [`finish`](ParamReader::finish).
pub struct ParamReader<'a> {
    component: &'a str,
    params: &'a Params,
    allowed: Vec<&'static str>,
}

impl<'a> ParamReader<'a> {
    /// Creates a reader for `component`'s parameters.
    pub fn new(component: &'a str, params: &'a Params) -> Self {
        ParamReader {
            component,
            params,
            allowed: Vec::new(),
        }
    }

    fn bad(&self, param: &str, expected: &'static str, found: &Value) -> SpecError {
        SpecError::BadParam {
            component: self.component.to_string(),
            param: param.to_string(),
            expected,
            found: format!("{} ({:?})", found.type_name(), found),
        }
    }

    fn lookup(&mut self, key: &'static str) -> Option<&'a Value> {
        self.allowed.push(key);
        self.params.get(key)
    }

    /// An optional `f64` parameter (integers coerce).
    pub fn opt_f64(&mut self, key: &'static str) -> Result<Option<f64>, SpecError> {
        match self.lookup(key) {
            None => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| self.bad(key, "a number", v)),
        }
    }

    /// An optional `u64` parameter.
    pub fn opt_u64(&mut self, key: &'static str) -> Result<Option<u64>, SpecError> {
        match self.lookup(key) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| self.bad(key, "a non-negative integer", v)),
        }
    }

    /// An optional `u32` parameter.
    pub fn opt_u32(&mut self, key: &'static str) -> Result<Option<u32>, SpecError> {
        match self.lookup(key) {
            None => Ok(None),
            Some(v) => match v.as_u64().and_then(|u| u32::try_from(u).ok()) {
                Some(u) => Ok(Some(u)),
                None => Err(self.bad(key, "a 32-bit non-negative integer", v)),
            },
        }
    }

    /// A required `u64` parameter.
    pub fn req_u64(&mut self, key: &'static str) -> Result<u64, SpecError> {
        self.opt_u64(key)?.ok_or_else(|| SpecError::MissingParam {
            component: self.component.to_string(),
            param: key.to_string(),
        })
    }

    /// A required `u32` parameter.
    pub fn req_u32(&mut self, key: &'static str) -> Result<u32, SpecError> {
        self.opt_u32(key)?.ok_or_else(|| SpecError::MissingParam {
            component: self.component.to_string(),
            param: key.to_string(),
        })
    }

    /// An optional raw-[`Value`] parameter, for factories whose parameter
    /// shapes the typed accessors cannot express (e.g. the partition fault
    /// layer's array-of-arrays `groups`). The factory validates the shape
    /// itself; reading through this method still marks the key as allowed
    /// for [`finish`](ParamReader::finish).
    pub fn opt_value(&mut self, key: &'static str) -> Option<&'a Value> {
        self.lookup(key)
    }

    /// An optional list-of-`f64` parameter.
    pub fn opt_f64_list(&mut self, key: &'static str) -> Result<Option<Vec<f64>>, SpecError> {
        match self.lookup(key) {
            None => Ok(None),
            Some(v) => {
                let items = v
                    .as_array()
                    .ok_or_else(|| self.bad(key, "an array of numbers", v))?;
                items
                    .iter()
                    .map(|item| item.as_f64())
                    .collect::<Option<Vec<f64>>>()
                    .map(Some)
                    .ok_or_else(|| self.bad(key, "an array of numbers", v))
            }
        }
    }

    /// Rejects any parameter key that was never looked up.
    pub fn finish(self) -> Result<(), SpecError> {
        for (key, _) in self.params.entries() {
            if !self.allowed.iter().any(|a| a == key) {
                return Err(SpecError::UnknownParam {
                    component: self.component.to_string(),
                    param: key.clone(),
                    allowed: self.allowed.iter().map(|a| a.to_string()).collect(),
                });
            }
        }
        Ok(())
    }
}

/// A named component — a protocol or an adversary — plus its parameters.
///
/// The name is a registry key (`"trapdoor"`, `"random"`,
/// `"oblivious-random"`, …); the parameters are interpreted by the factory
/// registered under that name. `"random".into()` builds a parameterless
/// spec, so call sites read as
/// `scenario.with_adversary("random")`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Registry key of the component.
    pub name: String,
    /// Factory parameters.
    pub params: Params,
}

impl ComponentSpec {
    /// A component with the given registry name and no parameters.
    pub fn named(name: impl Into<String>) -> Self {
        ComponentSpec {
            name: name.into(),
            params: Params::new(),
        }
    }

    /// Builder-style parameter insertion.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.params.set(key, value);
        self
    }

    /// The component's registry name (same string that appears in
    /// experiment tables and outcome summaries).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Serializes to a JSON value: a bare string when there are no
    /// parameters, otherwise `{"name": ..., "params": {...}}`.
    pub fn to_value(&self) -> Value {
        if self.params.is_empty() {
            Value::Str(self.name.clone())
        } else {
            Value::Object(vec![
                ("name".to_string(), Value::Str(self.name.clone())),
                ("params".to_string(), self.params.to_value()),
            ])
        }
    }

    /// Decodes from a JSON value (accepting both encodings produced by
    /// [`to_value`](Self::to_value)).
    pub fn from_value(value: &Value, context: &str) -> Result<Self, SpecError> {
        match value {
            Value::Str(name) => Ok(ComponentSpec::named(name.clone())),
            Value::Object(members) => {
                let mut name: Option<String> = None;
                let mut params = Params::new();
                for (key, v) in members {
                    match key.as_str() {
                        "name" => {
                            name = Some(
                                v.as_str()
                                    .ok_or_else(|| SpecError::Malformed {
                                        context: context.to_string(),
                                        message: format!(
                                            "\"name\" must be a string, found {}",
                                            v.type_name()
                                        ),
                                    })?
                                    .to_string(),
                            );
                        }
                        "params" => params = Params::from_value(v, context)?,
                        other => {
                            return Err(SpecError::Malformed {
                                context: context.to_string(),
                                message: format!("unknown key \"{other}\""),
                            })
                        }
                    }
                }
                Ok(ComponentSpec {
                    name: name.ok_or_else(|| SpecError::Malformed {
                        context: context.to_string(),
                        message: "missing \"name\"".to_string(),
                    })?,
                    params,
                })
            }
            other => Err(SpecError::Malformed {
                context: context.to_string(),
                message: format!(
                    "expected a component name or {{\"name\", \"params\"}} object, found {}",
                    other.type_name()
                ),
            }),
        }
    }
}

impl From<&str> for ComponentSpec {
    fn from(name: &str) -> Self {
        ComponentSpec::named(name)
    }
}

impl From<String> for ComponentSpec {
    fn from(name: String) -> Self {
        ComponentSpec::named(name)
    }
}

pub(crate) fn field_u64(value: &Value, field: &str) -> Result<u64, SpecError> {
    value.as_u64().ok_or_else(|| SpecError::Malformed {
        context: field.to_string(),
        message: format!(
            "expected a non-negative integer, found {}",
            value.type_name()
        ),
    })
}

pub(crate) fn field_u32(value: &Value, field: &str) -> Result<u32, SpecError> {
    field_u64(value, field)?
        .try_into()
        .map_err(|_| SpecError::Malformed {
            context: field.to_string(),
            message: "value exceeds 32 bits".to_string(),
        })
}

pub(crate) fn field_usize(value: &Value, field: &str) -> Result<usize, SpecError> {
    field_u64(value, field)?
        .try_into()
        .map_err(|_| SpecError::Malformed {
            context: field.to_string(),
            message: "value exceeds the address space".to_string(),
        })
}

pub(crate) fn field_f64(value: &Value, field: &str) -> Result<f64, SpecError> {
    value.as_f64().ok_or_else(|| SpecError::Malformed {
        context: field.to_string(),
        message: format!("expected a number, found {}", value.type_name()),
    })
}

/// Rejects keys of `value` (when it is an object) outside `allowed` — so a
/// typo like `"strat"` for `"start"` fails decoding instead of silently
/// falling back to a default.
pub(crate) fn reject_unknown_keys(
    value: &Value,
    context: &str,
    allowed: &[&str],
) -> Result<(), SpecError> {
    if let Some(members) = value.as_object() {
        for (key, _) in members {
            if !allowed.contains(&key.as_str()) {
                return Err(SpecError::Malformed {
                    context: context.to_string(),
                    message: format!(
                        "unknown key \"{key}\"; accepted keys: {}",
                        allowed.join(", ")
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Serializes an [`ActivationSchedule`] as a tagged JSON object (or a bare
/// string for the parameterless `"simultaneous"` schedule).
pub fn activation_to_value(schedule: &ActivationSchedule) -> Value {
    let tag = |kind: &str, rest: Vec<(String, Value)>| {
        let mut members = vec![("kind".to_string(), Value::Str(kind.to_string()))];
        members.extend(rest);
        Value::Object(members)
    };
    match schedule {
        ActivationSchedule::Simultaneous => Value::Str("simultaneous".to_string()),
        ActivationSchedule::Staggered { gap } => {
            tag("staggered", vec![("gap".to_string(), (*gap).into())])
        }
        ActivationSchedule::Batches { batch_size, gap } => tag(
            "batches",
            vec![
                ("batch_size".to_string(), (*batch_size).into()),
                ("gap".to_string(), (*gap).into()),
            ],
        ),
        ActivationSchedule::UniformWindow { window } => tag(
            "uniform-window",
            vec![("window".to_string(), (*window).into())],
        ),
        ActivationSchedule::Poisson { mean_gap } => tag(
            "poisson",
            vec![("mean_gap".to_string(), (*mean_gap).into())],
        ),
        ActivationSchedule::LateJoiner { late } => {
            tag("late-joiner", vec![("late".to_string(), (*late).into())])
        }
        ActivationSchedule::Explicit(rounds) => tag(
            "explicit",
            vec![(
                "rounds".to_string(),
                Value::Array(rounds.iter().map(|&r| r.into()).collect()),
            )],
        ),
    }
}

/// Decodes an [`ActivationSchedule`] from its JSON encoding.
pub fn activation_from_value(value: &Value) -> Result<ActivationSchedule, SpecError> {
    let context = "activation";
    let malformed = |message: String| SpecError::Malformed {
        context: context.to_string(),
        message,
    };
    let kind = match value {
        Value::Str(s) => s.as_str(),
        Value::Object(_) => value
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| malformed("missing string \"kind\"".to_string()))?,
        other => {
            return Err(malformed(format!(
                "expected a schedule name or tagged object, found {}",
                other.type_name()
            )))
        }
    };
    let known_keys: &[&str] = match kind {
        "simultaneous" => &[],
        "staggered" => &["gap"],
        "batches" => &["batch_size", "gap"],
        "uniform-window" => &["window"],
        "poisson" => &["mean_gap"],
        "late-joiner" => &["late"],
        "explicit" => &["rounds"],
        other => return Err(malformed(format!("unknown activation kind \"{other}\""))),
    };
    if let Value::Object(members) = value {
        for (key, _) in members {
            if key != "kind" && !known_keys.contains(&key.as_str()) {
                return Err(malformed(format!(
                    "unknown key \"{key}\" for activation kind \"{kind}\""
                )));
            }
        }
    }
    let req = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| malformed(format!("activation kind \"{kind}\" requires \"{key}\"")))
    };
    Ok(match kind {
        "simultaneous" => ActivationSchedule::Simultaneous,
        "staggered" => ActivationSchedule::Staggered {
            gap: field_u64(req("gap")?, "activation.gap")?,
        },
        "batches" => ActivationSchedule::Batches {
            batch_size: field_usize(req("batch_size")?, "activation.batch_size")?,
            gap: field_u64(req("gap")?, "activation.gap")?,
        },
        "uniform-window" => ActivationSchedule::UniformWindow {
            window: field_u64(req("window")?, "activation.window")?,
        },
        "poisson" => ActivationSchedule::Poisson {
            mean_gap: field_f64(req("mean_gap")?, "activation.mean_gap")?,
        },
        "late-joiner" => ActivationSchedule::LateJoiner {
            late: field_u64(req("late")?, "activation.late")?,
        },
        "explicit" => {
            let rounds = req("rounds")?
                .as_array()
                .ok_or_else(|| malformed("\"rounds\" must be an array".to_string()))?
                .iter()
                .map(|v| field_u64(v, "activation.rounds"))
                .collect::<Result<Vec<u64>, SpecError>>()?;
            ActivationSchedule::Explicit(rounds)
        }
        _ => unreachable!("kind validated above"),
    })
}

/// A complete, serializable description of one simulation cell: which
/// protocol to run, against which adversary, under which activation
/// schedule, on which instance `(n, F, t, N)`, with which bounds.
///
/// Build one programmatically with the builder methods or decode one from
/// JSON with [`from_json`](Self::from_json); either way,
/// [`Sim::from_spec`](crate::sim::Sim::from_spec) turns it into a runnable
/// simulation after validating everything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The protocol to run (registry name + parameters).
    pub protocol: ComponentSpec,
    /// The adversary to run against (registry name + parameters).
    pub adversary: ComponentSpec,
    /// Probes observing every resolved round (registry names +
    /// parameters). Probes never perturb the execution: declaring them
    /// changes neither the outcome nor the trial's store digest — only
    /// what is reported alongside it.
    pub probes: Vec<ComponentSpec>,
    /// Network-fault layers (registry names + parameters), stacked in
    /// declaration order between the engine's resolution pass and delivery.
    /// The `"faults"` key is emitted only when layers are declared, so
    /// fault-free specs keep their historical wire form byte for byte.
    pub faults: Vec<ComponentSpec>,
    /// When devices are activated.
    pub activation: ActivationSchedule,
    /// Actual number of participating devices `n`.
    pub num_nodes: usize,
    /// Number of frequencies `F`.
    pub num_frequencies: u32,
    /// Disruption bound `t < F`.
    pub disruption_bound: u32,
    /// Bound `N ≥ n` announced to the protocols; `None` defaults to
    /// `n.next_power_of_two()`.
    pub upper_bound_n: Option<u64>,
    /// Round cap.
    pub max_rounds: u64,
    /// Extra rounds simulated after everyone synchronized.
    pub extra_rounds_after_sync: u64,
}

impl ScenarioSpec {
    /// A spec running `protocol` on an `(n, F, t)` instance with no
    /// adversary, simultaneous activation, and the default bounds (the same
    /// defaults as [`Scenario::new`]).
    pub fn new(
        protocol: impl Into<ComponentSpec>,
        num_nodes: usize,
        num_frequencies: u32,
        disruption_bound: u32,
    ) -> Self {
        ScenarioSpec {
            protocol: protocol.into(),
            adversary: ComponentSpec::named("none"),
            probes: Vec::new(),
            faults: Vec::new(),
            activation: ActivationSchedule::Simultaneous,
            num_nodes,
            num_frequencies,
            disruption_bound,
            upper_bound_n: None,
            max_rounds: 2_000_000,
            extra_rounds_after_sync: 8,
        }
    }

    /// Sets the adversary.
    pub fn with_adversary(mut self, adversary: impl Into<ComponentSpec>) -> Self {
        self.adversary = adversary.into();
        self
    }

    /// Appends a probe (registry name or name-plus-params component).
    pub fn with_probe(mut self, probe: impl Into<ComponentSpec>) -> Self {
        self.probes.push(probe.into());
        self
    }

    /// Appends a network-fault layer (registry name or name-plus-params
    /// component). Layers stack in declaration order.
    pub fn with_fault(mut self, fault: impl Into<ComponentSpec>) -> Self {
        self.faults.push(fault.into());
        self
    }

    /// Sets the activation schedule.
    pub fn with_activation(mut self, activation: ActivationSchedule) -> Self {
        self.activation = activation;
        self
    }

    /// Sets the bound `N` announced to the protocols.
    pub fn with_upper_bound(mut self, upper_bound_n: u64) -> Self {
        self.upper_bound_n = Some(upper_bound_n);
        self
    }

    /// Sets the round cap.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the number of extra rounds simulated after synchronization.
    pub fn with_extra_rounds_after_sync(mut self, extra: u64) -> Self {
        self.extra_rounds_after_sync = extra;
        self
    }

    /// Adds a protocol parameter.
    pub fn with_protocol_param(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.protocol.params.set(key, value);
        self
    }

    /// Adds an adversary parameter.
    pub fn with_adversary_param(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.adversary.params.set(key, value);
        self
    }

    /// The runtime [`Scenario`] this spec describes (everything except the
    /// protocol choice, which the registry resolves separately).
    pub fn scenario(&self) -> Scenario {
        Scenario {
            num_nodes: self.num_nodes,
            num_frequencies: self.num_frequencies,
            disruption_bound: self.disruption_bound,
            upper_bound_n: self.upper_bound_n,
            adversary: self.adversary.clone(),
            activation: self.activation.clone(),
            max_rounds: self.max_rounds,
            extra_rounds_after_sync: self.extra_rounds_after_sync,
            faults: self.faults.clone(),
        }
    }

    /// A spec running `protocol` on an existing runtime [`Scenario`].
    pub fn from_scenario(scenario: &Scenario, protocol: impl Into<ComponentSpec>) -> Self {
        ScenarioSpec {
            protocol: protocol.into(),
            adversary: scenario.adversary.clone(),
            probes: Vec::new(),
            faults: scenario.faults.clone(),
            activation: scenario.activation.clone(),
            num_nodes: scenario.num_nodes,
            num_frequencies: scenario.num_frequencies,
            disruption_bound: scenario.disruption_bound,
            upper_bound_n: scenario.upper_bound_n,
            max_rounds: scenario.max_rounds,
            extra_rounds_after_sync: scenario.extra_rounds_after_sync,
        }
    }

    /// Validates the instance parameters (the registry-independent checks).
    /// Name and parameter resolution happen in
    /// [`Sim::from_spec`](crate::sim::Sim::from_spec).
    pub fn validate(&self) -> Result<(), SpecError> {
        self.scenario().sim_config().validate()?;
        Ok(())
    }

    /// Serializes to a JSON [`Value`]. The `"probes"` key is emitted only
    /// when probes are declared, so probe-less specs keep their historical
    /// wire form (and store digests) byte for byte.
    pub fn to_value(&self) -> Value {
        let mut members = vec![
            ("protocol".to_string(), self.protocol.to_value()),
            ("adversary".to_string(), self.adversary.to_value()),
        ];
        if !self.probes.is_empty() {
            members.push((
                "probes".to_string(),
                Value::Array(self.probes.iter().map(ComponentSpec::to_value).collect()),
            ));
        }
        if !self.faults.is_empty() {
            members.push((
                "faults".to_string(),
                Value::Array(self.faults.iter().map(ComponentSpec::to_value).collect()),
            ));
        }
        members.extend([
            (
                "activation".to_string(),
                activation_to_value(&self.activation),
            ),
            ("num_nodes".to_string(), self.num_nodes.into()),
            ("num_frequencies".to_string(), self.num_frequencies.into()),
            ("disruption_bound".to_string(), self.disruption_bound.into()),
        ]);
        if let Some(n) = self.upper_bound_n {
            members.push(("upper_bound_n".to_string(), n.into()));
        }
        members.push(("max_rounds".to_string(), self.max_rounds.into()));
        members.push((
            "extra_rounds_after_sync".to_string(),
            self.extra_rounds_after_sync.into(),
        ));
        Value::Object(members)
    }

    /// Decodes from a JSON [`Value`], rejecting unknown keys.
    pub fn from_value(value: &Value) -> Result<Self, SpecError> {
        let members = value.as_object().ok_or_else(|| SpecError::Malformed {
            context: "scenario spec".to_string(),
            message: format!("expected an object, found {}", value.type_name()),
        })?;
        let mut spec = ScenarioSpec::new("", 0, 0, 0);
        let mut saw_protocol = false;
        let mut saw_nodes = false;
        let mut saw_freqs = false;
        let mut saw_bound = false;
        for (key, v) in members {
            match key.as_str() {
                "protocol" => {
                    spec.protocol = ComponentSpec::from_value(v, "protocol")?;
                    saw_protocol = true;
                }
                "adversary" => spec.adversary = ComponentSpec::from_value(v, "adversary")?,
                "probes" => {
                    let items = v.as_array().ok_or_else(|| SpecError::Malformed {
                        context: "probes".to_string(),
                        message: format!(
                            "expected an array of probe components, found {}",
                            v.type_name()
                        ),
                    })?;
                    spec.probes = items
                        .iter()
                        .map(|item| ComponentSpec::from_value(item, "probes"))
                        .collect::<Result<Vec<_>, SpecError>>()?;
                }
                "faults" => {
                    let items = v.as_array().ok_or_else(|| SpecError::Malformed {
                        context: "faults".to_string(),
                        message: format!(
                            "expected an array of fault components, found {}",
                            v.type_name()
                        ),
                    })?;
                    spec.faults = items
                        .iter()
                        .map(|item| ComponentSpec::from_value(item, "faults"))
                        .collect::<Result<Vec<_>, SpecError>>()?;
                }
                "activation" => spec.activation = activation_from_value(v)?,
                "num_nodes" => {
                    spec.num_nodes = field_usize(v, "num_nodes")?;
                    saw_nodes = true;
                }
                "num_frequencies" => {
                    spec.num_frequencies = field_u32(v, "num_frequencies")?;
                    saw_freqs = true;
                }
                "disruption_bound" => {
                    spec.disruption_bound = field_u32(v, "disruption_bound")?;
                    saw_bound = true;
                }
                "upper_bound_n" => {
                    spec.upper_bound_n = match v {
                        Value::Null => None,
                        other => Some(field_u64(other, "upper_bound_n")?),
                    }
                }
                "max_rounds" => spec.max_rounds = field_u64(v, "max_rounds")?,
                "extra_rounds_after_sync" => {
                    spec.extra_rounds_after_sync = field_u64(v, "extra_rounds_after_sync")?
                }
                other => {
                    return Err(SpecError::Malformed {
                        context: "scenario spec".to_string(),
                        message: format!("unknown key \"{other}\""),
                    })
                }
            }
        }
        for (seen, field) in [
            (saw_protocol, "protocol"),
            (saw_nodes, "num_nodes"),
            (saw_freqs, "num_frequencies"),
            (saw_bound, "disruption_bound"),
        ] {
            if !seen {
                return Err(SpecError::Malformed {
                    context: "scenario spec".to_string(),
                    message: format!("missing required key \"{field}\""),
                });
            }
        }
        Ok(spec)
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Decodes from JSON text.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        ScenarioSpec::from_value(&json::parse(text)?)
    }
}

/// One expanded cell of a [`SweepSpec`]: a human-readable label naming the
/// grid coordinates and the fully substituted [`ScenarioSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// `"field=value"` pairs joined by `", "` (empty for a gridless sweep).
    pub label: String,
    /// The substituted spec.
    pub spec: ScenarioSpec,
}

/// One axis of a sweep grid: a field path and the values it takes.
///
/// Sweepable field paths: `num_nodes`, `num_frequencies`,
/// `disruption_bound`, `upper_bound_n`, `max_rounds`,
/// `protocol.<param>`, and `adversary.<param>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepAxis {
    /// The field path being swept.
    pub field: String,
    /// The values the field takes, in order.
    pub values: Vec<Value>,
}

impl SweepAxis {
    /// Creates an axis.
    pub fn new(field: impl Into<String>, values: Vec<Value>) -> Self {
        SweepAxis {
            field: field.into(),
            values,
        }
    }
}

/// A seed range plus a parameter grid over a base [`ScenarioSpec`]: the
/// declarative form of a whole experiment (Monte-Carlo trials × sweep
/// points).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// The spec every grid point starts from.
    pub base: ScenarioSpec,
    /// First seed (inclusive).
    pub seed_start: u64,
    /// Last seed (exclusive).
    pub seed_end: u64,
    /// The grid axes; their cross product (outermost axis first) defines
    /// the sweep points. Empty means a single point: the base spec.
    pub axes: Vec<SweepAxis>,
    /// Optional adaptive stopping rule (the `"stop"` key): with one
    /// declared, the sweep allocates trials sequentially — each grid point
    /// runs seed batches until its metric's confidence interval is narrow
    /// enough, instead of a fixed count. See
    /// [`StoppingRule`].
    pub stop: Option<StoppingRule>,
}

impl SweepSpec {
    /// A sweep of `seeds` trials of `base` with no grid.
    pub fn new(base: ScenarioSpec, seeds: std::ops::Range<u64>) -> Self {
        SweepSpec {
            base,
            seed_start: seeds.start,
            seed_end: seeds.end,
            axes: Vec::new(),
            stop: None,
        }
    }

    /// Adds a grid axis.
    pub fn with_axis(mut self, field: impl Into<String>, values: Vec<Value>) -> Self {
        self.axes.push(SweepAxis::new(field, values));
        self
    }

    /// Declares an adaptive stopping rule: trials are allocated in seed
    /// batches and each grid point stops as soon as the rule is satisfied
    /// on its seed-ordered prefix.
    pub fn with_stop(mut self, rule: StoppingRule) -> Self {
        self.stop = Some(rule);
        self
    }

    /// The seed range, validated.
    pub fn seeds(&self) -> Result<std::ops::Range<u64>, SpecError> {
        if self.seed_start >= self.seed_end {
            return Err(SpecError::InvalidSeedRange {
                start: self.seed_start,
                end: self.seed_end,
            });
        }
        Ok(self.seed_start..self.seed_end)
    }

    /// The seed range the sweep may actually consume. For a fixed-count
    /// sweep this is [`seeds`](Self::seeds); with a stopping rule declared
    /// it is `seed_start .. seed_start + max_seeds` — the rule's budget
    /// replaces the declared count (and defaults to it when the rule omits
    /// `max_seeds`). Every consumer of an adaptive sweep (in-process
    /// runner, fabric workers, serving layer) derives its plan from this
    /// one range, so they agree on batch boundaries by construction.
    pub fn effective_seeds(&self) -> Result<std::ops::Range<u64>, SpecError> {
        let declared = self.seeds()?;
        match &self.stop {
            None => Ok(declared),
            Some(rule) => {
                rule.validate()?;
                let budget = rule.max_seeds.unwrap_or(declared.end - declared.start);
                Ok(declared.start..declared.start + budget)
            }
        }
    }

    /// Expands the grid into its cross product of sweep points (outermost
    /// axis varies slowest). Errors on an empty axis or an unknown field.
    pub fn expand(&self) -> Result<Vec<SweepPoint>, SpecError> {
        for axis in &self.axes {
            if axis.values.is_empty() {
                return Err(SpecError::EmptySweepAxis {
                    field: axis.field.clone(),
                });
            }
        }
        let mut points = vec![SweepPoint {
            label: String::new(),
            spec: self.base.clone(),
        }];
        for axis in &self.axes {
            let mut next = Vec::with_capacity(points.len() * axis.values.len());
            for point in &points {
                for value in &axis.values {
                    let mut spec = point.spec.clone();
                    apply_sweep_value(&mut spec, &axis.field, value)?;
                    let coord = format!("{}={}", axis.field, value.to_json());
                    let label = if point.label.is_empty() {
                        coord
                    } else {
                        format!("{}, {}", point.label, coord)
                    };
                    next.push(SweepPoint { label, spec });
                }
            }
            points = next;
        }
        Ok(points)
    }

    /// Serializes to a JSON [`Value`].
    pub fn to_value(&self) -> Value {
        let mut members = vec![
            ("base".to_string(), self.base.to_value()),
            (
                "seeds".to_string(),
                Value::Object(vec![
                    ("start".to_string(), self.seed_start.into()),
                    ("end".to_string(), self.seed_end.into()),
                ]),
            ),
        ];
        if !self.axes.is_empty() {
            members.push((
                "grid".to_string(),
                Value::Array(
                    self.axes
                        .iter()
                        .map(|axis| {
                            Value::Object(vec![
                                ("field".to_string(), Value::Str(axis.field.clone())),
                                ("values".to_string(), Value::Array(axis.values.clone())),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        // Emitted only when declared, like "probes"/"faults": the wire
        // form (and anything digesting it) of a fixed-count sweep is
        // byte-identical to what it was before adaptive mode existed.
        if let Some(rule) = &self.stop {
            members.push(("stop".to_string(), rule.to_value()));
        }
        Value::Object(members)
    }

    /// Decodes from a JSON [`Value`], rejecting unknown keys.
    pub fn from_value(value: &Value) -> Result<Self, SpecError> {
        let members = value.as_object().ok_or_else(|| SpecError::Malformed {
            context: "sweep spec".to_string(),
            message: format!("expected an object, found {}", value.type_name()),
        })?;
        let mut base: Option<ScenarioSpec> = None;
        let mut seeds: Option<(u64, u64)> = None;
        let mut axes = Vec::new();
        let mut stop: Option<StoppingRule> = None;
        for (key, v) in members {
            match key.as_str() {
                "base" => base = Some(ScenarioSpec::from_value(v)?),
                "stop" => stop = Some(StoppingRule::from_value(v)?),
                "seeds" => {
                    reject_unknown_keys(v, "seeds", &["start", "end"])?;
                    let start = field_u64(v.get("start").unwrap_or(&Value::Int(0)), "seeds.start")?;
                    let end = field_u64(
                        v.get("end").ok_or_else(|| SpecError::Malformed {
                            context: "seeds".to_string(),
                            message: "missing \"end\"".to_string(),
                        })?,
                        "seeds.end",
                    )?;
                    seeds = Some((start, end));
                }
                "grid" => {
                    let items = v.as_array().ok_or_else(|| SpecError::Malformed {
                        context: "grid".to_string(),
                        message: "expected an array of axes".to_string(),
                    })?;
                    for item in items {
                        reject_unknown_keys(item, "grid axis", &["field", "values"])?;
                        let field = item
                            .get("field")
                            .and_then(Value::as_str)
                            .ok_or_else(|| SpecError::Malformed {
                                context: "grid".to_string(),
                                message: "axis needs a string \"field\"".to_string(),
                            })?
                            .to_string();
                        let values = item
                            .get("values")
                            .and_then(Value::as_array)
                            .ok_or_else(|| SpecError::Malformed {
                                context: "grid".to_string(),
                                message: "axis needs an array \"values\"".to_string(),
                            })?
                            .to_vec();
                        axes.push(SweepAxis { field, values });
                    }
                }
                other => {
                    return Err(SpecError::Malformed {
                        context: "sweep spec".to_string(),
                        message: format!("unknown key \"{other}\""),
                    })
                }
            }
        }
        let (seed_start, seed_end) = seeds.ok_or_else(|| SpecError::Malformed {
            context: "sweep spec".to_string(),
            message: "missing required key \"seeds\" ({\"start\", \"end\"})".to_string(),
        })?;
        if let Some(rule) = &stop {
            rule.validate()?;
        }
        Ok(SweepSpec {
            base: base.ok_or_else(|| SpecError::Malformed {
                context: "sweep spec".to_string(),
                message: "missing required key \"base\"".to_string(),
            })?,
            seed_start,
            seed_end,
            axes,
            stop,
        })
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Decodes from JSON text.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        SweepSpec::from_value(&json::parse(text)?)
    }
}

fn apply_sweep_value(spec: &mut ScenarioSpec, field: &str, value: &Value) -> Result<(), SpecError> {
    if let Some(param) = field.strip_prefix("protocol.") {
        spec.protocol.params.set(param, value.clone());
        return Ok(());
    }
    if let Some(param) = field.strip_prefix("adversary.") {
        spec.adversary.params.set(param, value.clone());
        return Ok(());
    }
    if let Some(rest) = field.strip_prefix("fault.") {
        // "fault.<name>.<param>" targets the declared layer named <name>,
        // declaring it (parameterless) first if the base spec does not.
        let (name, param) = rest
            .split_once('.')
            .ok_or_else(|| SpecError::UnknownSweepField {
                field: field.to_string(),
            })?;
        let idx = match spec.faults.iter().position(|f| f.name() == name) {
            Some(idx) => idx,
            None => {
                spec.faults.push(ComponentSpec::named(name));
                spec.faults.len() - 1
            }
        };
        spec.faults[idx].params.set(param, value.clone());
        return Ok(());
    }
    match field {
        "num_nodes" => spec.num_nodes = field_usize(value, field)?,
        "num_frequencies" => spec.num_frequencies = field_u32(value, field)?,
        "disruption_bound" => spec.disruption_bound = field_u32(value, field)?,
        "upper_bound_n" => spec.upper_bound_n = Some(field_u64(value, field)?),
        "max_rounds" => spec.max_rounds = field_u64(value, field)?,
        _ => {
            return Err(SpecError::UnknownSweepField {
                field: field.to_string(),
            })
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> ScenarioSpec {
        ScenarioSpec::new("trapdoor", 8, 8, 2)
            .with_adversary(ComponentSpec::named("oblivious-random").with("t_actual", 2u64))
            .with_activation(ActivationSchedule::Staggered { gap: 5 })
            .with_upper_bound(16)
            .with_max_rounds(10_000)
            .with_protocol_param("epoch_constant", 2.5)
    }

    #[test]
    fn scenario_spec_round_trips_through_json() {
        let spec = sample_spec();
        let text = spec.to_json();
        let back = ScenarioSpec::from_json(&text).expect("round trip");
        assert_eq!(back, spec);
        // and the serialized form is stable
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn every_activation_schedule_round_trips() {
        let schedules = vec![
            ActivationSchedule::Simultaneous,
            ActivationSchedule::Staggered { gap: 3 },
            ActivationSchedule::Batches {
                batch_size: 4,
                gap: 7,
            },
            ActivationSchedule::UniformWindow { window: 50 },
            ActivationSchedule::Poisson { mean_gap: 2.5 },
            ActivationSchedule::LateJoiner { late: 99 },
            ActivationSchedule::Explicit(vec![0, 3, 9]),
        ];
        for schedule in schedules {
            let v = activation_to_value(&schedule);
            assert_eq!(activation_from_value(&v).unwrap(), schedule);
        }
    }

    #[test]
    fn defaults_fill_in_missing_optional_fields() {
        let spec = ScenarioSpec::from_json(
            r#"{"protocol": "wakeup", "num_nodes": 6, "num_frequencies": 8, "disruption_bound": 1}"#,
        )
        .unwrap();
        assert_eq!(spec.adversary.name(), "none");
        assert_eq!(spec.activation, ActivationSchedule::Simultaneous);
        assert_eq!(spec.max_rounds, 2_000_000);
        assert_eq!(spec.extra_rounds_after_sync, 8);
        assert_eq!(spec.upper_bound_n, None);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let err = ScenarioSpec::from_json(
            r#"{"protocol": "trapdoor", "num_nodes": 6, "num_frequencies": 8,
                "disruption_bound": 1, "num_freqencies": 9}"#,
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::Malformed { .. }), "{err}");
        assert!(err.to_string().contains("num_freqencies"));
    }

    #[test]
    fn missing_required_keys_are_rejected() {
        let err = ScenarioSpec::from_json(
            r#"{"num_nodes": 6, "num_frequencies": 8, "disruption_bound": 1}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("protocol"), "{err}");
    }

    #[test]
    fn validate_surfaces_config_errors() {
        let too_much_jam = ScenarioSpec::new("trapdoor", 4, 8, 8);
        assert!(matches!(
            too_much_jam.validate(),
            Err(SpecError::InvalidConfig(
                ConfigError::DisruptionBoundTooLarge { .. }
            ))
        ));
        let no_nodes = ScenarioSpec::new("trapdoor", 0, 8, 2);
        assert!(matches!(
            no_nodes.validate(),
            Err(SpecError::InvalidConfig(ConfigError::NoNodes))
        ));
        let zero_rounds = ScenarioSpec::new("trapdoor", 4, 8, 2).with_max_rounds(0);
        assert!(matches!(
            zero_rounds.validate(),
            Err(SpecError::InvalidConfig(ConfigError::ZeroMaxRounds))
        ));
        assert!(ScenarioSpec::new("trapdoor", 4, 8, 2).validate().is_ok());
    }

    #[test]
    fn sweep_spec_round_trips_and_expands() {
        let sweep = SweepSpec::new(sample_spec(), 0..12)
            .with_axis("num_nodes", vec![8u64.into(), 16u64.into()])
            .with_axis(
                "protocol.epoch_constant",
                vec![1.0.into(), 2.0.into(), 4.0.into()],
            );
        let text = sweep.to_json();
        let back = SweepSpec::from_json(&text).expect("round trip");
        assert_eq!(back, sweep);

        let points = back.expand().unwrap();
        assert_eq!(points.len(), 6);
        assert_eq!(points[0].spec.num_nodes, 8);
        assert_eq!(points[5].spec.num_nodes, 16);
        assert_eq!(
            points[5].spec.protocol.params.get("epoch_constant"),
            Some(&Value::Float(4.0))
        );
        assert!(points[5].label.contains("num_nodes=16"));
        assert!(points[5].label.contains("epoch_constant=4.0"));
        assert_eq!(back.seeds().unwrap(), 0..12);
    }

    #[test]
    fn sweep_rejects_bad_axes_and_seed_ranges() {
        let base = sample_spec();
        let empty_axis = SweepSpec::new(base.clone(), 0..4).with_axis("num_nodes", vec![]);
        assert!(matches!(
            empty_axis.expand(),
            Err(SpecError::EmptySweepAxis { .. })
        ));
        let bad_field =
            SweepSpec::new(base.clone(), 0..4).with_axis("frequency_count", vec![8u64.into()]);
        assert!(matches!(
            bad_field.expand(),
            Err(SpecError::UnknownSweepField { .. })
        ));
        let inverted = SweepSpec::new(base, 7..7);
        assert!(matches!(
            inverted.seeds(),
            Err(SpecError::InvalidSeedRange { start: 7, end: 7 })
        ));
        // a sweep file without "seeds" is reported as missing, not as an
        // empty 0..0 range
        let missing_seeds =
            SweepSpec::from_json(&format!("{{\"base\": {}}}", sample_spec().to_json()))
                .expect_err("missing seeds must be rejected");
        assert!(
            missing_seeds.to_string().contains("seeds"),
            "{missing_seeds}"
        );
    }

    #[test]
    fn oversized_integers_fall_back_to_float_instead_of_wrapping() {
        assert_eq!(Value::from(u64::MAX), Value::Float(u64::MAX as f64));
        assert_eq!(Value::from(42u64), Value::Int(42));
    }

    #[test]
    fn component_spec_accepts_bare_strings() {
        let c = ComponentSpec::from_value(&Value::Str("random".to_string()), "adversary").unwrap();
        assert_eq!(c, ComponentSpec::named("random"));
        assert_eq!(c.to_value(), Value::Str("random".to_string()));
    }

    #[test]
    fn param_reader_reports_typos_and_type_errors() {
        let params = Params::new()
            .with("epoch_constant", 2.0)
            .with("burst", 3u64);
        let mut reader = ParamReader::new("trapdoor", &params);
        assert_eq!(reader.opt_f64("epoch_constant").unwrap(), Some(2.0));
        let err = reader.finish().unwrap_err();
        match err {
            SpecError::UnknownParam { param, .. } => assert_eq!(param, "burst"),
            other => panic!("expected UnknownParam, got {other:?}"),
        }

        let params = Params::new().with("t_actual", "two");
        let mut reader = ParamReader::new("oblivious-random", &params);
        assert!(matches!(
            reader.req_u32("t_actual"),
            Err(SpecError::BadParam { .. })
        ));

        let params = Params::new();
        let mut reader = ParamReader::new("oblivious-random", &params);
        assert!(matches!(
            reader.req_u32("t_actual"),
            Err(SpecError::MissingParam { .. })
        ));
    }

    #[test]
    fn spec_error_messages_are_actionable() {
        let err = SpecError::UnknownProtocol {
            name: "trapdor".to_string(),
            known: vec!["trapdoor".to_string(), "wakeup".to_string()],
        };
        let text = err.to_string();
        assert!(
            text.contains("trapdor") && text.contains("trapdoor"),
            "{text}"
        );
    }
}
