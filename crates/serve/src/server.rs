//! Routing and handlers: the daemon behind `wsync-serve`.
//!
//! The request lifecycle for simulation routes is always
//! **spec → digest → cache probe → run/lease → stream**:
//!
//! * `POST /run` — a [`ScenarioSpec`] (bare, or `{"spec": …, "seeds":
//!   {"start", "end"}}`): the spec is canonicalized and digested, every
//!   `(digest, seed)` already in the store is served without touching
//!   the engine, the missing trials execute synchronously (and are
//!   persisted), and the response reports aggregate stats plus cache
//!   accounting — a repeated request is a full cache hit with
//!   `"executed": 0`.
//! * `POST /sweep` — a [`SweepSpec`]: validated, registered as a job,
//!   and scheduled onto the fabric — worker threads claim store shards
//!   via the same lease files OS-process workers use, so a daemon and a
//!   `run_experiments --workers` fleet can even share one store
//!   directory. Responds immediately with the job id.
//! * `GET /jobs/<id>` — streams the job's progress (worker events,
//!   per-point aggregates, probe outputs) as close-delimited JSON lines.
//! * `GET /catalog`, `GET /healthz`, `GET /metrics` — the registry's
//!   component names, liveness, and the service counters.
//!
//! Admission control: handler threads are capped by a counting
//! semaphore ([`ServeConfig::max_handlers`] permits). The accept loop
//! answers `503` + `Retry-After` inline when no permit is free, so
//! saturation costs a rejected connection, never a new thread; the
//! `accepted`/`rejected` counters in `GET /metrics` record both sides.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use wsync_core::batch::BatchStats;
use wsync_core::fabric::{self, FabricConfig, WorkerEvent};
use wsync_core::json::{self, Value};
use wsync_core::registry::{self, ProbeOutput};
use wsync_core::report::SyncOutcome;
use wsync_core::spec::{ScenarioSpec, SweepSpec};
use wsync_core::store::{spec_digest, ResultStore, StoreError};
use wsync_core::sweep::{SweepError, SweepRunner};

use crate::clock::Stopwatch;
use crate::http::{self, Request, RequestError};
use crate::jobs::{Job, JobRegistry};
use crate::metrics::Metrics;

/// Most seeds one synchronous `POST /run` may ask for; larger ensembles
/// belong on the job queue (`POST /sweep`), which streams instead of
/// blocking the connection.
pub const MAX_RUN_SEEDS: u64 = 10_000;

/// Default cap on concurrently serving handler threads (see
/// [`ServeConfig::max_handlers`]).
pub const DEFAULT_MAX_HANDLERS: usize = 64;

/// The `Retry-After` value (seconds) sent with every admission-control
/// `503`: synchronous runs are short, so "come back in a second" is the
/// honest hint.
const RETRY_AFTER_SECS: &str = "1";

/// How often a `GET /jobs/<id>` stream polls its job for fresh events.
const JOB_POLL: Duration = Duration::from_millis(20);

/// What `wsync-serve` needs to start.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7077` (port 0 picks one).
    pub addr: String,
    /// The shared result-store directory (created if missing).
    pub store_dir: PathBuf,
    /// Fabric worker threads per scheduled sweep job.
    pub fabric_workers: usize,
    /// Most connections served concurrently: each admitted connection
    /// gets a handler thread, and a connection arriving with every
    /// permit taken is answered `503 Service Unavailable` (with a
    /// `Retry-After` header) straight from the accept loop — no thread
    /// is spawned for it. Clamped to at least 1; see
    /// [`DEFAULT_MAX_HANDLERS`].
    pub max_handlers: usize,
}

/// An error raised while starting the server.
#[derive(Debug)]
pub enum ServeError {
    /// Opening the result store failed.
    Store(StoreError),
    /// Binding the listener failed.
    Bind {
        /// The requested address.
        addr: String,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Store(e) => write!(f, "{e}"),
            ServeError::Bind { addr, source } => {
                write!(f, "cannot bind {addr}: {source}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Store(e) => Some(e),
            ServeError::Bind { source, .. } => Some(source),
        }
    }
}

/// Everything handler threads share.
struct State {
    store_dir: PathBuf,
    store: Arc<ResultStore>,
    jobs: JobRegistry,
    metrics: Metrics,
    fabric_workers: usize,
    handlers: Semaphore,
}

/// A tiny non-blocking counting semaphore over the handler permits:
/// [`try_acquire`](Semaphore::try_acquire) either takes a permit or
/// fails immediately, so the accept loop never blocks on saturation —
/// it answers `503` instead.
struct Semaphore {
    permits: std::sync::atomic::AtomicUsize,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            permits: std::sync::atomic::AtomicUsize::new(permits),
        }
    }

    fn try_acquire(&self) -> bool {
        use std::sync::atomic::Ordering;
        self.permits
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |p| p.checked_sub(1))
            .is_ok()
    }

    fn release(&self) {
        self.permits
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }
}

/// Returns its handler permit when dropped — including when the handler
/// panics, so a crashed handler can never leak the server's capacity.
struct Permit<'a>(&'a State);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.handlers.release();
    }
}

/// A bound, not-yet-serving daemon. [`Server::bind`] then
/// [`Server::run`]; tests bind port 0 and read the real address back
/// with [`Server::local_addr`].
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Opens (and repairs — nothing else is writing yet) the store, then
    /// binds the listener.
    pub fn bind(config: ServeConfig) -> Result<Server, ServeError> {
        let store = ResultStore::open(&config.store_dir).map_err(ServeError::Store)?;
        for repair in store.repair_stats() {
            eprintln!(
                "wsync-serve: store shard {:02} had {} torn/corrupt line(s); repaired",
                repair.shard, repair.dropped_lines
            );
        }
        let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Bind {
            addr: config.addr.clone(),
            source,
        })?;
        Ok(Server {
            listener,
            state: Arc::new(State {
                store_dir: config.store_dir,
                store: Arc::new(store),
                jobs: JobRegistry::new(),
                metrics: Metrics::new(),
                fabric_workers: config.fabric_workers.max(1),
                handlers: Semaphore::new(config.max_handlers.max(1)),
            }),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever: one thread per *admitted* connection, at most
    /// [`ServeConfig::max_handlers`] at a time. A connection arriving
    /// with no permit free is answered `503 Service Unavailable` (plus
    /// `Retry-After`) inline and never gets a thread, so a `POST /run`
    /// burst degrades into fast rejections instead of unbounded thread
    /// growth. Errors on a single connection are logged and survived.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            match stream {
                Ok(mut stream) => {
                    if self.state.handlers.try_acquire() {
                        self.state.metrics.record_accepted();
                        let state = Arc::clone(&self.state);
                        std::thread::spawn(move || {
                            let _permit = Permit(&state);
                            if let Err(e) = handle_connection(&state, stream) {
                                eprintln!("wsync-serve: connection error: {e}");
                            }
                        });
                    } else {
                        self.state.metrics.record_rejected();
                        if let Err(e) = refuse_connection(&mut stream) {
                            eprintln!("wsync-serve: connection error: {e}");
                        }
                    }
                }
                Err(e) => eprintln!("wsync-serve: accept error: {e}"),
            }
        }
        Ok(())
    }
}

/// Refuses one connection at the handler cap: writes the `503` (with
/// `Retry-After`), half-closes, and drains the client's unread request
/// bytes so the close sends FIN, not RST (an RST can discard the queued
/// response before the client reads it). The drain is bounded by a read
/// timeout and an iteration cap, so a slow client cannot pin the accept
/// loop for long.
fn refuse_connection(stream: &mut TcpStream) -> std::io::Result<()> {
    let body = Value::Object(vec![(
        "error".to_string(),
        Value::Str("server is at its concurrent-handler cap; retry shortly".to_string()),
    )])
    .to_json_compact();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    http::respond_json_with(
        stream,
        503,
        "Service Unavailable",
        &[("Retry-After", RETRY_AFTER_SECS)],
        &body,
    )?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut scratch = [0u8; 1024];
    for _ in 0..64 {
        match std::io::Read::read(stream, &mut scratch) {
            Ok(n) if n > 0 => continue,
            _ => break,
        }
    }
    Ok(())
}

fn handle_connection(state: &Arc<State>, mut stream: TcpStream) -> std::io::Result<()> {
    let request = match http::read_request(&stream)? {
        Ok(request) => request,
        Err(RequestError::Malformed) => {
            return http::respond_error(&mut stream, 400, "Bad Request", "malformed request");
        }
        Err(RequestError::BodyTooLarge) => {
            return http::respond_error(
                &mut stream,
                413,
                "Payload Too Large",
                "request body exceeds the 1 MiB limit",
            );
        }
    };
    state.metrics.record_request();
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(state, &mut stream),
        ("GET", "/metrics") => {
            let body = state.metrics.to_value().to_json_compact();
            http::respond_json(&mut stream, 200, "OK", &body)
        }
        ("GET", "/catalog") => handle_catalog(&mut stream),
        ("POST", "/run") => handle_run(state, &mut stream, &request),
        ("POST", "/sweep") => handle_sweep(state, &mut stream, &request),
        ("GET", path) if path.starts_with("/jobs/") => {
            let id = path["/jobs/".len()..].to_string();
            handle_job_stream(state, &mut stream, &id)
        }
        ("GET" | "POST", _) => http::respond_error(&mut stream, 404, "Not Found", "no such route"),
        _ => http::respond_error(
            &mut stream,
            405,
            "Method Not Allowed",
            "only GET and POST are served",
        ),
    }
}

fn handle_healthz(state: &State, stream: &mut TcpStream) -> std::io::Result<()> {
    let body = Value::Object(vec![
        ("status".to_string(), Value::Str("ok".to_string())),
        (
            "store_records".to_string(),
            Value::Int(state.store.len() as i64),
        ),
        (
            "jobs_total".to_string(),
            Value::Int(state.jobs.total() as i64),
        ),
        (
            "jobs_active".to_string(),
            Value::Int(state.jobs.active() as i64),
        ),
    ])
    .to_json_compact();
    http::respond_json(stream, 200, "OK", &body)
}

fn handle_catalog(stream: &mut TcpStream) -> std::io::Result<()> {
    let names = |items: Vec<String>| Value::Array(items.into_iter().map(Value::Str).collect());
    let body = Value::Object(vec![
        ("protocols".to_string(), names(registry::protocol_names())),
        (
            "adversaries".to_string(),
            names(registry::adversary_names()),
        ),
        ("probes".to_string(), names(registry::probe_names())),
        ("faults".to_string(), names(registry::fault_names())),
    ])
    .to_json_compact();
    http::respond_json(stream, 200, "OK", &body)
}

/// Parses a `POST /run` body: either a bare [`ScenarioSpec`] (seed 0
/// only) or `{"spec": <ScenarioSpec>, "seeds": {"start", "end"}}`.
fn parse_run_body(body: &[u8]) -> Result<(ScenarioSpec, std::ops::Range<u64>), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value = json::parse(text).map_err(|e| e.to_string())?;
    let (spec_value, seeds) = match value.get("spec") {
        Some(inner) => {
            let seeds = match value.get("seeds") {
                None => 0..1,
                Some(seeds) => {
                    let field = |key: &str| {
                        seeds
                            .get(key)
                            .and_then(Value::as_u64)
                            .ok_or_else(|| format!("seeds.{key} must be a non-negative integer"))
                    };
                    field("start")?..field("end")?
                }
            };
            (inner, seeds)
        }
        None => (&value, 0..1),
    };
    if seeds.start >= seeds.end {
        return Err("seeds.start must be less than seeds.end".to_string());
    }
    if seeds.end - seeds.start > MAX_RUN_SEEDS {
        return Err(format!(
            "a synchronous /run is capped at {MAX_RUN_SEEDS} seeds; schedule a /sweep instead"
        ));
    }
    let spec = ScenarioSpec::from_value(spec_value).map_err(|e| e.to_string())?;
    Ok((spec, seeds))
}

fn stats_value(stats: &BatchStats) -> Value {
    Value::Object(vec![
        ("trials".to_string(), Value::Int(stats.trials as i64)),
        ("sync_rate".to_string(), Value::Float(stats.sync_rate())),
        (
            "single_leader_rate".to_string(),
            Value::Float(stats.single_leader_rate()),
        ),
        ("clean_rate".to_string(), Value::Float(stats.clean_rate())),
        (
            "mean_rounds_to_sync".to_string(),
            Value::Float(stats.rounds_to_sync.mean),
        ),
        (
            "mean_completion_round".to_string(),
            Value::Float(stats.completion_rounds.mean),
        ),
    ])
}

fn probe_value(name: String, value: Value) -> Value {
    Value::Object(vec![
        ("name".to_string(), Value::Str(name)),
        ("value".to_string(), value),
    ])
}

fn handle_run(state: &State, stream: &mut TcpStream, request: &Request) -> std::io::Result<()> {
    let (spec, seeds) = match parse_run_body(&request.body) {
        Ok(parsed) => parsed,
        Err(message) => return http::respond_error(stream, 400, "Bad Request", &message),
    };
    let digest = spec_digest(&spec);
    let watch = Stopwatch::start();
    let mut rounds = 0u64;
    let mut probe_sample: Option<Vec<(String, Value)>> = None;
    let result = SweepRunner::new()
        .store(Arc::clone(&state.store))
        .run_points_probed_first_each(
            vec![(String::new(), spec)],
            seeds.clone(),
            |_, outcome, probes| {
                rounds += outcome.result.metrics.rounds;
                if probe_sample.is_none() {
                    if let Some(outputs) = probes {
                        probe_sample = Some(
                            outputs
                                .iter()
                                .map(|o| (o.name.clone(), o.value.clone()))
                                .collect(),
                        );
                    }
                }
            },
        );
    let report = match result {
        Ok(report) => report,
        Err(SweepError::Spec(e)) => {
            return http::respond_error(stream, 400, "Bad Request", &e.to_string())
        }
        Err(SweepError::Store(e)) => {
            return http::respond_error(stream, 500, "Internal Server Error", &e.to_string())
        }
    };
    state.metrics.record_work(
        report.cached_trials(),
        report.executed_trials(),
        rounds,
        watch.elapsed_micros(),
    );
    let point = &report.points[0];
    let probes = probe_sample
        .unwrap_or_default()
        .into_iter()
        .map(|(name, value)| probe_value(name, value))
        .collect();
    let body = Value::Object(vec![
        ("digest".to_string(), Value::Str(format!("{digest:016x}"))),
        (
            "seeds".to_string(),
            Value::Object(vec![
                ("start".to_string(), Value::Int(seeds.start as i64)),
                ("end".to_string(), Value::Int(seeds.end as i64)),
            ]),
        ),
        ("cached".to_string(), Value::Int(point.cached as i64)),
        ("executed".to_string(), Value::Int(point.executed as i64)),
        ("stats".to_string(), stats_value(&point.stats)),
        ("probes".to_string(), Value::Array(probes)),
    ])
    .to_json_compact();
    http::respond_json(stream, 200, "OK", &body)
}

fn handle_sweep(
    state: &Arc<State>,
    stream: &mut TcpStream,
    request: &Request,
) -> std::io::Result<()> {
    let parsed = std::str::from_utf8(&request.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(|text| json::parse(text).map_err(|e| e.to_string()))
        .and_then(|value| {
            if value.get("base").is_none() {
                return Err(
                    "a /sweep body must be a SweepSpec (an object with a \"base\" key); \
                     for a single scenario use /run"
                        .to_string(),
                );
            }
            SweepSpec::from_value(&value).map_err(|e| e.to_string())
        });
    let sweep = match parsed {
        Ok(sweep) => sweep,
        Err(message) => return http::respond_error(stream, 400, "Bad Request", &message),
    };
    // Validate expansion *before* scheduling, so a bad grid is a 400 here
    // and never a half-run job. With a `"stop"` rule the advertised seed
    // range is the adaptive *budget*, not a promise of execution.
    let (points, seeds) = match sweep
        .expand()
        .and_then(|p| Ok((p, sweep.effective_seeds()?)))
    {
        Ok(parts) => parts,
        Err(e) => return http::respond_error(stream, 400, "Bad Request", &e.to_string()),
    };
    let job = state.jobs.create();
    push_event(
        &job,
        vec![
            ("event".to_string(), Value::Str("scheduled".to_string())),
            ("job".to_string(), Value::Str(job.id().to_string())),
            ("points".to_string(), Value::Int(points.len() as i64)),
            ("seed_start".to_string(), Value::Int(seeds.start as i64)),
            ("seed_end".to_string(), Value::Int(seeds.end as i64)),
            ("adaptive".to_string(), Value::Bool(sweep.stop.is_some())),
            (
                "workers".to_string(),
                Value::Int(state.fabric_workers as i64),
            ),
        ],
    );
    let body = Value::Object(vec![
        ("job".to_string(), Value::Str(job.id().to_string())),
        ("status".to_string(), Value::Str("scheduled".to_string())),
        (
            "events".to_string(),
            Value::Str(format!("/jobs/{}", job.id())),
        ),
    ])
    .to_json_compact();
    let state = Arc::clone(state);
    std::thread::spawn(move || run_sweep_job(&state, &job, sweep));
    http::respond_json(stream, 202, "Accepted", &body)
}

fn push_event(job: &Job, fields: Vec<(String, Value)>) {
    job.push(Value::Object(fields).to_json_compact());
}

fn push_error(job: &Job, message: String) {
    push_event(
        job,
        vec![
            ("event".to_string(), Value::Str("error".to_string())),
            ("message".to_string(), Value::Str(message)),
        ],
    );
}

/// One event line for a fabric worker observation. Shard-busy polling is
/// deliberately excluded: it fires every poll interval and carries no
/// progress.
fn worker_event_fields(holder: &str, event: &WorkerEvent) -> Option<Vec<(String, Value)>> {
    let mut fields = match event {
        WorkerEvent::ShardClaimed { shard } => vec![
            ("event".to_string(), Value::Str("shard_claimed".to_string())),
            ("shard".to_string(), Value::Int(*shard as i64)),
        ],
        WorkerEvent::ShardComplete {
            shard,
            executed,
            cached,
        } => vec![
            (
                "event".to_string(),
                Value::Str("shard_complete".to_string()),
            ),
            ("shard".to_string(), Value::Int(*shard as i64)),
            ("executed".to_string(), Value::Int(*executed as i64)),
            ("cached".to_string(), Value::Int(*cached as i64)),
        ],
        WorkerEvent::LeaseReclaimed {
            shard,
            holder: dead,
        } => vec![
            (
                "event".to_string(),
                Value::Str("lease_reclaimed".to_string()),
            ),
            ("shard".to_string(), Value::Int(*shard as i64)),
            ("from".to_string(), Value::Str(dead.clone())),
        ],
        WorkerEvent::LeaseLost { shard } => vec![
            ("event".to_string(), Value::Str("lease_lost".to_string())),
            ("shard".to_string(), Value::Int(*shard as i64)),
        ],
        WorkerEvent::PointStopped {
            point,
            seeds_used,
            reason,
        } => vec![
            ("event".to_string(), Value::Str("point_stopped".to_string())),
            ("point".to_string(), Value::Int(*point as i64)),
            ("seeds_used".to_string(), Value::Int(*seeds_used as i64)),
            ("reason".to_string(), Value::Str(reason.name().to_string())),
        ],
        WorkerEvent::ShardBusy { .. } => return None,
    };
    fields.push(("worker".to_string(), Value::Str(holder.to_string())));
    Some(fields)
}

/// The sweep-job orchestration: fabric worker threads drain the sweep
/// against the shared store directory, then a resume pass aggregates and
/// streams per-point stats and probe outputs into the job log.
fn run_sweep_job(state: &State, job: &Job, sweep: SweepSpec) {
    let watch = Stopwatch::start();
    let store_dir: &Path = &state.store_dir;
    std::thread::scope(|scope| {
        for k in 0..state.fabric_workers {
            let holder = format!("{}-w{k}", job.id());
            let sweep = &sweep;
            scope.spawn(move || {
                let config = FabricConfig::new(holder.clone());
                let result = fabric::run_worker(store_dir, sweep, &config, |event| {
                    if let Some(fields) = worker_event_fields(&holder, event) {
                        push_event(job, fields);
                    }
                });
                if let Err(e) = result {
                    push_error(job, format!("fabric worker {holder}: {e}"));
                }
            });
        }
    });
    // The workers have finished (or failed). Aggregate from the store via
    // `open_shared` — other jobs and /run handlers may still be writing.
    if let Err(message) = aggregate_sweep(state, job, &sweep, &watch) {
        push_error(job, message);
    }
    job.finish();
}

/// The post-fabric aggregation pass: re-reads the store, streams
/// per-point stats and probe samples, and closes with a `done` event.
fn aggregate_sweep(
    state: &State,
    job: &Job,
    sweep: &SweepSpec,
    watch: &Stopwatch,
) -> Result<(), String> {
    let store = ResultStore::open_shared(&state.store_dir).map_err(|e| e.to_string())?;
    let points: Vec<(String, ScenarioSpec)> = sweep
        .expand()
        .map_err(|e| e.to_string())?
        .into_iter()
        .map(|p| (p.label, p.spec))
        .collect();
    let seeds = sweep.effective_seeds().map_err(|e| e.to_string())?;
    let labels: Vec<String> = points
        .iter()
        .map(|(label, _)| {
            if label.is_empty() {
                "(base)".to_string()
            } else {
                label.clone()
            }
        })
        .collect();
    let mut rounds = 0u64;
    let mut probe_samples: Vec<Option<Vec<(String, Value)>>> = vec![None; points.len()];
    let runner = SweepRunner::new().store(Arc::new(store));
    let mut sample = |point: usize, outcome: &SyncOutcome, probes: Option<&[ProbeOutput]>| {
        rounds += outcome.result.metrics.rounds;
        if probe_samples[point].is_none() {
            if let Some(outputs) = probes {
                probe_samples[point] = Some(
                    outputs
                        .iter()
                        .map(|o| (o.name.clone(), o.value.clone()))
                        .collect(),
                );
            }
        }
    };
    // Same dispatch as the workers: with a `"stop"` rule this pass folds
    // the stored trials through the rule's batch schedule, reproducing the
    // workers' stop decisions from the store bytes alone.
    let report = match &sweep.stop {
        None => {
            runner.run_points_probed_first_each(points, seeds.clone(), |p, o, pr| sample(p, o, pr))
        }
        Some(rule) => {
            runner.run_points_adaptive_probed_first_each(points, seeds.clone(), rule, |p, o, pr| {
                sample(p, o, pr)
            })
        }
    }
    .map_err(|e| e.to_string())?;
    for (point, label) in report.points.iter().zip(&labels) {
        let mut fields = vec![
            ("event".to_string(), Value::Str("point".to_string())),
            ("label".to_string(), Value::Str(label.clone())),
            ("cached".to_string(), Value::Int(point.cached as i64)),
            ("executed".to_string(), Value::Int(point.executed as i64)),
        ];
        if sweep.stop.is_some() {
            fields.push((
                "seeds_used".to_string(),
                Value::Int(point.seeds_used() as i64),
            ));
            fields.push((
                "stopped_early".to_string(),
                Value::Bool(point.stopped_early),
            ));
            if let Some(reason) = &point.stop {
                fields.push((
                    "stop_reason".to_string(),
                    Value::Str(reason.name().to_string()),
                ));
            }
        }
        fields.push(("stats".to_string(), stats_value(&point.stats)));
        push_event(job, fields);
    }
    for (sample, label) in probe_samples.into_iter().zip(&labels) {
        let Some(outputs) = sample else { continue };
        for (name, value) in outputs {
            push_event(
                job,
                vec![
                    ("event".to_string(), Value::Str("probe".to_string())),
                    ("label".to_string(), Value::Str(label.clone())),
                    ("name".to_string(), Value::Str(name)),
                    ("value".to_string(), value),
                ],
            );
        }
    }
    state.metrics.record_work(
        report.cached_trials(),
        report.executed_trials(),
        rounds,
        watch.elapsed_micros(),
    );
    let mut fields = vec![
        ("event".to_string(), Value::Str("done".to_string())),
        (
            "cached".to_string(),
            Value::Int(report.cached_trials() as i64),
        ),
        (
            "executed".to_string(),
            Value::Int(report.executed_trials() as i64),
        ),
    ];
    if sweep.stop.is_some() {
        let budget = (seeds.end - seeds.start) * report.points.len() as u64;
        let saved = budget.saturating_sub(report.total_trials());
        state
            .metrics
            .record_stops(report.stopped_early_points(), saved);
        fields.push((
            "stopped_early".to_string(),
            Value::Int(report.stopped_early_points() as i64),
        ));
        fields.push(("trial_budget".to_string(), Value::Int(budget as i64)));
        fields.push(("trials_saved".to_string(), Value::Int(saved as i64)));
        // Stop markers are fabric-local acceleration; with the job done
        // they are dead weight in the store directory.
        let _ = fabric::clean_stop_markers(&state.store_dir);
    }
    push_event(job, fields);
    Ok(())
}

fn handle_job_stream(state: &State, stream: &mut TcpStream, id: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let Some(job) = state.jobs.get(id) else {
        return http::respond_error(stream, 404, "Not Found", "no such job");
    };
    http::start_ndjson(stream)?;
    let mut cursor = 0usize;
    loop {
        // `events_from` reads the log and the done flag under one lock, and
        // `finish()` happens strictly after the final push — so observing
        // `done` here means `fresh` already holds every remaining line.
        let (fresh, done) = job.events_from(cursor);
        for line in &fresh {
            stream.write_all(line.as_bytes())?;
            stream.write_all(b"\n")?;
        }
        if !fresh.is_empty() {
            stream.flush()?;
            cursor += fresh.len();
        }
        if done {
            return stream.flush();
        }
        std::thread::sleep(JOB_POLL);
    }
}
