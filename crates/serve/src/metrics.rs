//! Service counters behind `GET /metrics`.
//!
//! Counters are cumulative over the server's lifetime and updated
//! lock-free by handler threads. The headline figures:
//!
//! * `store_hits` / `store_misses` — trials served straight from the
//!   content-addressed store versus trials the engine had to execute.
//!   The CI smoke asserts a repeated `POST /run` is all hits.
//! * `rounds_per_sec` — simulated rounds streamed per wall-clock second
//!   of request execution time (cache hits make this large by design:
//!   it measures *serving* throughput, not raw engine speed — the bench
//!   suite owns that number).
//! * `accepted` / `rejected` — connections admitted to a handler thread
//!   versus connections turned away with a `503` because the server was
//!   already at its concurrent-handler cap. The saturation smoke asserts
//!   a burst past the cap moves `rejected`, not the thread count.

use std::sync::atomic::{AtomicU64, Ordering};

use wsync_core::json::Value;

/// Lock-free cumulative service counters.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    sim_rounds: AtomicU64,
    exec_micros: AtomicU64,
    points_stopped: AtomicU64,
    trials_saved: AtomicU64,
}

impl Metrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Counts one handled request (any route).
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection admitted to a handler thread.
    pub fn record_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection refused with a `503` at the handler cap.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections admitted to a handler thread over the server's
    /// lifetime. Every handler thread ever spawned is counted here —
    /// the saturation test uses this as its "no thread growth" witness.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections refused with a `503` over the server's lifetime.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Folds one completed run/sweep into the counters: `hits` trials
    /// from cache, `misses` executed, `rounds` simulated rounds streamed,
    /// over `micros` of wall-clock execution.
    pub fn record_work(&self, hits: u64, misses: u64, rounds: u64, micros: u64) {
        self.store_hits.fetch_add(hits, Ordering::Relaxed);
        self.store_misses.fetch_add(misses, Ordering::Relaxed);
        self.sim_rounds.fetch_add(rounds, Ordering::Relaxed);
        self.exec_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Folds one adaptive sweep's stopping outcome into the counters:
    /// `stopped` grid points halted before their seed budget, together
    /// saving `saved` trials against a fixed-count run of the budget.
    pub fn record_stops(&self, stopped: u64, saved: u64) {
        self.points_stopped.fetch_add(stopped, Ordering::Relaxed);
        self.trials_saved.fetch_add(saved, Ordering::Relaxed);
    }

    /// Grid points stopped early by a sweep's stopping rule over the
    /// server's lifetime.
    pub fn points_stopped(&self) -> u64 {
        self.points_stopped.load(Ordering::Relaxed)
    }

    /// Trials adaptive stopping avoided over the server's lifetime.
    pub fn trials_saved(&self) -> u64 {
        self.trials_saved.load(Ordering::Relaxed)
    }

    /// Trials served from the store over the server's lifetime.
    pub fn store_hits(&self) -> u64 {
        self.store_hits.load(Ordering::Relaxed)
    }

    /// Trials the engine executed over the server's lifetime.
    pub fn store_misses(&self) -> u64 {
        self.store_misses.load(Ordering::Relaxed)
    }

    /// The `GET /metrics` body.
    pub fn to_value(&self) -> Value {
        let hits = self.store_hits();
        let misses = self.store_misses();
        let rounds = self.sim_rounds.load(Ordering::Relaxed);
        let micros = self.exec_micros.load(Ordering::Relaxed);
        let rounds_per_sec = if micros == 0 {
            0.0
        } else {
            rounds as f64 / (micros as f64 / 1_000_000.0)
        };
        Value::Object(vec![
            (
                "requests".to_string(),
                Value::Int(self.requests.load(Ordering::Relaxed) as i64),
            ),
            ("accepted".to_string(), Value::Int(self.accepted() as i64)),
            ("rejected".to_string(), Value::Int(self.rejected() as i64)),
            ("store_hits".to_string(), Value::Int(hits as i64)),
            ("store_misses".to_string(), Value::Int(misses as i64)),
            (
                "trials_served".to_string(),
                Value::Int((hits + misses) as i64),
            ),
            ("sim_rounds".to_string(), Value::Int(rounds as i64)),
            ("exec_micros".to_string(), Value::Int(micros as i64)),
            ("rounds_per_sec".to_string(), Value::Float(rounds_per_sec)),
            (
                "points_stopped".to_string(),
                Value::Int(self.points_stopped() as i64),
            ),
            (
                "trials_saved".to_string(),
                Value::Int(self.trials_saved() as i64),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let metrics = Metrics::new();
        metrics.record_request();
        metrics.record_accepted();
        metrics.record_accepted();
        metrics.record_rejected();
        metrics.record_work(3, 2, 1_000, 500_000);
        metrics.record_work(5, 0, 0, 0);
        metrics.record_stops(2, 48);
        assert_eq!(metrics.store_hits(), 8);
        assert_eq!(metrics.store_misses(), 2);
        assert_eq!(metrics.points_stopped(), 2);
        assert_eq!(metrics.trials_saved(), 48);
        assert_eq!(metrics.accepted(), 2);
        assert_eq!(metrics.rejected(), 1);
        let value = metrics.to_value();
        assert_eq!(value.get("trials_served").unwrap().as_u64(), Some(10));
        assert_eq!(value.get("points_stopped").unwrap().as_u64(), Some(2));
        assert_eq!(value.get("trials_saved").unwrap().as_u64(), Some(48));
        assert_eq!(value.get("accepted").unwrap().as_u64(), Some(2));
        assert_eq!(value.get("rejected").unwrap().as_u64(), Some(1));
        let rps = value.get("rounds_per_sec").unwrap().as_f64().unwrap();
        assert!((rps - 2_000.0).abs() < 1e-9, "{rps}");
    }

    #[test]
    fn zero_execution_time_yields_zero_throughput() {
        let metrics = Metrics::new();
        let rps = metrics
            .to_value()
            .get("rounds_per_sec")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(rps, 0.0);
    }
}
