//! The `wsync-serve` binary: parse flags, bind, serve forever.
//!
//! ```text
//! wsync-serve --store <dir> [--addr 127.0.0.1:7077] [--fabric-workers 2] [--max-handlers 64]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use wsync_serve::{ServeConfig, Server, DEFAULT_MAX_HANDLERS};

const USAGE: &str =
    "usage: wsync-serve --store <dir> [--addr HOST:PORT] [--fabric-workers N] [--max-handlers N]

  --store <dir>        result-store directory to serve from (created if missing)
  --addr HOST:PORT     bind address (default 127.0.0.1:7077; port 0 picks one)
  --fabric-workers N   fabric worker threads per sweep job (default 2)
  --max-handlers N     concurrent connection handlers; beyond this the
                       server answers 503 + Retry-After (default 64)";

fn main() -> ExitCode {
    let mut store: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:7077".to_string();
    let mut fabric_workers = 2usize;
    let mut max_handlers = DEFAULT_MAX_HANDLERS;
    let mut arguments = std::env::args().skip(1);
    while let Some(argument) = arguments.next() {
        match argument.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--store" => match arguments.next() {
                Some(dir) => store = Some(PathBuf::from(dir)),
                None => return usage_error("--store needs a directory"),
            },
            "--addr" => match arguments.next() {
                Some(a) => addr = a,
                None => return usage_error("--addr needs HOST:PORT"),
            },
            "--fabric-workers" => match arguments.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => fabric_workers = n,
                _ => return usage_error("--fabric-workers needs a positive integer"),
            },
            "--max-handlers" => match arguments.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => max_handlers = n,
                _ => return usage_error("--max-handlers needs a positive integer"),
            },
            other => return usage_error(&format!("unknown argument: {other}")),
        }
    }
    let Some(store_dir) = store else {
        return usage_error("--store is required");
    };
    let server = match Server::bind(ServeConfig {
        addr,
        store_dir,
        fabric_workers,
        max_handlers,
    }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("wsync-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        // CI and scripts wait for this exact line before issuing requests.
        Ok(addr) => println!("wsync-serve listening on http://{addr}"),
        Err(e) => {
            eprintln!("wsync-serve: cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.run() {
        eprintln!("wsync-serve: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("wsync-serve: {message}\n{USAGE}");
    ExitCode::FAILURE
}
