//! The job registry: every `POST /sweep` becomes a [`Job`] whose progress
//! events `GET /jobs/<id>` streams back as JSON lines.
//!
//! A job is an append-only log of pre-serialized JSON lines plus a done
//! flag. Producers (the orchestration thread and its fabric workers) push
//! lines; any number of consumers read from their own cursor, so a client
//! that connects mid-run still sees the full history before the live
//! tail. Job ids are sequential (`job-1`, `job-2`, …) — no ambient
//! randomness anywhere in the workspace, the serving layer included.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Recovers a poisoned mutex: job state is an append-only log plus a
/// flag, both valid at every instant, so a panicking producer cannot
/// leave it inconsistent — consumers keep serving what was logged.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[derive(Debug, Default)]
struct JobState {
    events: Vec<String>,
    done: bool,
}

/// One scheduled sweep: an identifier and its event log.
#[derive(Debug)]
pub struct Job {
    id: String,
    state: Mutex<JobState>,
}

impl Job {
    /// The job's identifier (`job-<n>`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Appends one event line (a complete JSON document, no newline).
    pub fn push(&self, line: String) {
        lock(&self.state).events.push(line);
    }

    /// Marks the job finished; streams drain and close.
    pub fn finish(&self) {
        lock(&self.state).done = true;
    }

    /// Whether the job has finished.
    pub fn is_done(&self) -> bool {
        lock(&self.state).done
    }

    /// The events at positions `>= cursor`, plus the done flag — the
    /// polling read a streaming handler advances its cursor with.
    pub fn events_from(&self, cursor: usize) -> (Vec<String>, bool) {
        let state = lock(&self.state);
        let fresh = state.events.get(cursor..).unwrap_or(&[]).to_vec();
        (fresh, state.done)
    }
}

/// The server's job table: sequential ids mapping to shared [`Job`]s.
#[derive(Debug, Default)]
pub struct JobRegistry {
    jobs: Mutex<BTreeMap<String, Arc<Job>>>,
    next_id: AtomicU64,
}

impl JobRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        JobRegistry::default()
    }

    /// Creates and registers a fresh job.
    pub fn create(&self) -> Arc<Job> {
        let n = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let job = Arc::new(Job {
            id: format!("job-{n}"),
            state: Mutex::new(JobState::default()),
        });
        lock(&self.jobs).insert(job.id.clone(), Arc::clone(&job));
        job
    }

    /// Looks a job up by id.
    pub fn get(&self, id: &str) -> Option<Arc<Job>> {
        lock(&self.jobs).get(id).cloned()
    }

    /// Jobs created over the server's lifetime.
    pub fn total(&self) -> usize {
        lock(&self.jobs).len()
    }

    /// Jobs still running.
    pub fn active(&self) -> usize {
        lock(&self.jobs).values().filter(|j| !j.is_done()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursors_see_history_then_tail_then_done() {
        let registry = JobRegistry::new();
        let job = registry.create();
        assert_eq!(job.id(), "job-1");
        job.push("{\"a\":1}".to_string());
        job.push("{\"a\":2}".to_string());
        let (history, done) = job.events_from(0);
        assert_eq!(history.len(), 2);
        assert!(!done);
        let (tail, _) = job.events_from(2);
        assert!(tail.is_empty());
        job.push("{\"a\":3}".to_string());
        job.finish();
        let (tail, done) = job.events_from(2);
        assert_eq!(tail, vec!["{\"a\":3}".to_string()]);
        assert!(done);
    }

    #[test]
    fn registry_tracks_totals_and_activity() {
        let registry = JobRegistry::new();
        let a = registry.create();
        let b = registry.create();
        assert_eq!(registry.total(), 2);
        assert_eq!(registry.active(), 2);
        a.finish();
        assert_eq!(registry.active(), 1);
        assert!(registry.get(b.id()).is_some());
        assert!(registry.get("job-99").is_none());
    }
}
