//! Minimal hand-rolled HTTP/1.1 plumbing on `std::net` — the same
//! no-crates.io discipline as `wsync_core::json` and `wsync-lint`.
//!
//! The server speaks exactly the subset a JSON API needs: one request per
//! connection (`Connection: close` on every response), `Content-Length`
//! bodies on the way in, and either a fixed JSON body or a
//! close-delimited `application/x-ndjson` stream on the way out. No
//! keep-alive, no chunked encoding, no TLS — this is an internal service
//! front-end, not a general web server.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (a `SweepSpec` is a few hundred bytes;
/// a megabyte is generous headroom, and anything larger is a client bug).
pub const MAX_BODY: usize = 1 << 20;

/// One parsed request: method, path, and raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// The request target path, e.g. `/jobs/job-3` (query strings are
    /// kept verbatim; no route in this API uses them).
    pub path: String,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed into a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The connection closed before a full request arrived, or the
    /// request line / headers were not valid HTTP.
    Malformed,
    /// The declared `Content-Length` exceeds [`MAX_BODY`].
    BodyTooLarge,
}

/// Reads one HTTP/1.1 request from `stream`. `Ok(Err(_))` is a protocol
/// error to answer with a 4xx; `Err(_)` is a transport error to drop.
pub fn read_request(stream: &TcpStream) -> io::Result<Result<Request, RequestError>> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(Err(RequestError::Malformed));
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Ok(Err(RequestError::Malformed));
    };
    let method = method.to_string();
    let path = path.to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Ok(Err(RequestError::Malformed));
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let Ok(n) = value.trim().parse::<usize>() else {
                    return Ok(Err(RequestError::Malformed));
                };
                content_length = n;
            }
        }
    }
    if content_length > MAX_BODY {
        return Ok(Err(RequestError::BodyTooLarge));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Ok(Request { method, path, body }))
}

/// Writes a complete JSON response and closes the exchange.
pub fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
) -> io::Result<()> {
    respond_json_with(stream, status, reason, &[], body)
}

/// [`respond_json`] with extra response headers (e.g. `Retry-After` on a
/// `503`), written between the fixed header set and the blank line.
pub fn respond_json_with(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    write!(stream, "\r\n{body}")?;
    stream.flush()
}

/// Writes a JSON error body `{"error": message}` with the given status.
pub fn respond_error(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    message: &str,
) -> io::Result<()> {
    let body = wsync_core::json::Value::Object(vec![(
        "error".to_string(),
        wsync_core::json::Value::Str(message.to_string()),
    )])
    .to_json_compact();
    respond_json(stream, status, reason, &body)
}

/// Starts a close-delimited ndjson stream: status line and headers only.
/// The caller then writes one JSON document per line (flushing each) and
/// signals completion by closing the connection.
pub fn start_ndjson(stream: &mut TcpStream) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn request_roundtrip(raw: &str) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut out = TcpStream::connect(addr).unwrap();
            out.write_all(raw.as_bytes()).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let parsed = read_request(&stream).unwrap();
        writer.join().unwrap();
        parsed
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = request_roundtrip(
            "POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = request_roundtrip("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_oversized_bodies() {
        assert_eq!(request_roundtrip("\r\n\r\n"), Err(RequestError::Malformed));
        assert_eq!(
            request_roundtrip("POST /run HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(RequestError::Malformed)
        );
        assert_eq!(
            request_roundtrip(&format!(
                "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY + 1
            )),
            Err(RequestError::BodyTooLarge)
        );
    }
}
