//! The serving layer's wall-clock boundary.
//!
//! Simulated executions are round-driven and never read the clock; the
//! *service* wrapped around them legitimately wants one wall-clock
//! quantity — how long request handling spent executing trials, which
//! `GET /metrics` turns into a rounds-per-second throughput figure. All
//! such reads live here, mirroring `wsync_core::fabric`'s clock boundary:
//! nothing measured in this module ever feeds a simulated outcome, a
//! digest, or a store record.

// lint:allow(wall-clock): throughput metrics (rounds/s) are wall-clock by definition; confined to this boundary module and never fed into simulation state
use std::time::Instant;

/// A started stopwatch, for measuring one handler's execution time.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    // lint:allow(wall-clock): the stopwatch's origin; see module docs
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        // lint:allow(wall-clock): metrics-only read; see module docs
        let start = Instant::now();
        Stopwatch { start }
    }

    /// Microseconds elapsed since [`start`](Self::start), saturating at
    /// `u64::MAX` (584 thousand years of uptime).
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotonic() {
        let watch = Stopwatch::start();
        let a = watch.elapsed_micros();
        let b = watch.elapsed_micros();
        assert!(b >= a);
    }
}
