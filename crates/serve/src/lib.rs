//! `wsync-serve` — simulation-as-a-service for the wireless
//! synchronization workspace.
//!
//! A dependency-free HTTP/1.1 + JSON daemon on `std::net` that fronts the
//! content-addressed [`ResultStore`](wsync_core::store::ResultStore) and
//! the multi-process sweep fabric ([`wsync_core::fabric`]):
//!
//! * [`http`] — the hand-rolled request/response plumbing.
//! * [`server`] — routing and handlers (`/run`, `/sweep`, `/jobs/<id>`,
//!   `/catalog`, `/healthz`, `/metrics`).
//! * [`jobs`] — the job registry behind `POST /sweep` scheduling and
//!   `GET /jobs/<id>` streaming.
//! * [`metrics`] — lock-free service counters.
//! * [`clock`] — the crate's only wall-clock boundary (request timing for
//!   the throughput metric).
//!
//! Everything a response contains is derived from deterministic simulation
//! state: repeated requests against a warm store re-serve stored outcomes
//! bit-for-bit without executing the engine.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clock;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod server;

pub use server::{ServeConfig, ServeError, Server, DEFAULT_MAX_HANDLERS, MAX_RUN_SEEDS};
