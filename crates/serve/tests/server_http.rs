//! End-to-end HTTP tests: a real [`Server`] bound on port 0, exercised by
//! raw `TcpStream` clients (the same no-dependency discipline as the
//! server itself).
//!
//! The load-bearing assertions mirror the CI smoke: a repeated `POST /run`
//! is a full cache hit (`"executed":0`), and a `POST /sweep` job streams
//! valid JSON lines from `GET /jobs/<id>` through to a `done` event.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

use wsync_core::json::{self, Value};
use wsync_serve::{ServeConfig, Server};

/// A small scenario: tiny ensemble, quick to execute, exercises probes.
const RUN_BODY: &str = r#"{
  "spec": {
    "protocol": "trapdoor",
    "adversary": "random",
    "probes": ["metrics", "checker"],
    "num_nodes": 6,
    "num_frequencies": 4,
    "disruption_bound": 1,
    "max_rounds": 20000
  },
  "seeds": {"start": 0, "end": 4}
}"#;

const SWEEP_BODY: &str = r#"{
  "base": {
    "protocol": "trapdoor",
    "adversary": "random",
    "num_nodes": 6,
    "num_frequencies": 4,
    "disruption_bound": 1,
    "max_rounds": 20000
  },
  "seeds": {"start": 0, "end": 6},
  "grid": [{"field": "num_frequencies", "values": [4, 8]}]
}"#;

fn temp_dir_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("wsync-serve-http-{tag}-{}", std::process::id()))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = temp_dir_path(tag);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Starts a server on an ephemeral port; the accept loop runs on a
/// detached thread for the life of the test process.
fn start_server(tag: &str) -> SocketAddr {
    start_server_with(tag, wsync_serve::DEFAULT_MAX_HANDLERS)
}

fn start_server_with(tag: &str, max_handlers: usize) -> SocketAddr {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: temp_dir(tag),
        fabric_workers: 2,
        max_handlers,
    })
    .expect("bind");
    let addr = server.local_addr().expect("local_addr");
    std::thread::spawn(move || server.run());
    addr
}

/// One full HTTP exchange; returns the raw response text (status line,
/// headers, and body) for header-level assertions.
fn exchange_raw(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    raw
}

/// One full HTTP exchange; returns (status line, body).
fn exchange(addr: SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().expect("status line").to_string();
    (status, body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (String, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn healthz_catalog_and_unknown_routes() {
    let addr = start_server("basic");

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let health = json::parse(&body).expect("healthz is JSON");
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));

    let (status, body) = get(addr, "/catalog");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let catalog = json::parse(&body).expect("catalog is JSON");
    let protocols = catalog
        .get("protocols")
        .and_then(Value::as_array)
        .expect("protocols array");
    assert!(
        protocols.iter().any(|p| p.as_str() == Some("trapdoor")),
        "catalog lists the paper's trapdoor protocol: {body}"
    );
    for section in ["adversaries", "probes", "faults"] {
        let names = catalog
            .get(section)
            .and_then(Value::as_array)
            .unwrap_or_else(|| panic!("{section} array missing: {body}"));
        assert!(!names.is_empty(), "{section} is empty");
    }

    let (status, _) = get(addr, "/no-such-route");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    let (status, _) = exchange(addr, "DELETE /run HTTP/1.1\r\n\r\n");
    assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");
    let (status, _) = post(addr, "/run", "{not json");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
}

#[test]
fn repeated_run_is_a_full_cache_hit() {
    let addr = start_server("run-cache");

    let (status, body) = post(addr, "/run", RUN_BODY);
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    let first = json::parse(&body).expect("run response is JSON");
    assert_eq!(first.get("executed").and_then(Value::as_u64), Some(4));
    assert_eq!(first.get("cached").and_then(Value::as_u64), Some(0));
    let digest = first
        .get("digest")
        .and_then(Value::as_str)
        .expect("digest")
        .to_string();
    assert_eq!(digest.len(), 16, "digest is 16 hex chars: {digest}");
    let stats = first.get("stats").expect("stats object");
    assert_eq!(stats.get("trials").and_then(Value::as_u64), Some(4));
    let probes = first
        .get("probes")
        .and_then(Value::as_array)
        .expect("probes array");
    assert!(
        probes
            .iter()
            .any(|p| p.get("name").and_then(Value::as_str) == Some("metrics")),
        "probe sample includes the metrics probe: {body}"
    );

    // The identical request again: same digest, same stats, zero executions.
    let (status, body) = post(addr, "/run", RUN_BODY);
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    let second = json::parse(&body).expect("second run response is JSON");
    assert_eq!(second.get("executed").and_then(Value::as_u64), Some(0));
    assert_eq!(second.get("cached").and_then(Value::as_u64), Some(4));
    assert_eq!(
        second.get("digest").and_then(Value::as_str),
        Some(digest.as_str())
    );
    assert_eq!(
        second.get("stats").map(Value::to_json_compact),
        first.get("stats").map(Value::to_json_compact),
        "cache-served stats are bit-identical"
    );

    // Metrics saw 4 misses then 4 hits.
    let (_, body) = get(addr, "/metrics");
    let metrics = json::parse(&body).expect("metrics is JSON");
    assert_eq!(metrics.get("store_misses").and_then(Value::as_u64), Some(4));
    assert_eq!(metrics.get("store_hits").and_then(Value::as_u64), Some(4));
}

#[test]
fn run_rejects_bad_seed_ranges_and_unknown_components() {
    let addr = start_server("run-reject");
    let empty_range = RUN_BODY.replace(r#"{"start": 0, "end": 4}"#, r#"{"start": 4, "end": 4}"#);
    let (status, _) = post(addr, "/run", &empty_range);
    assert_eq!(status, "HTTP/1.1 400 Bad Request");

    let huge_range = RUN_BODY.replace(r#"{"start": 0, "end": 4}"#, r#"{"start": 0, "end": 99999}"#);
    let (status, body) = post(addr, "/run", &huge_range);
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(body.contains("/sweep"), "points at the job queue: {body}");

    let unknown = RUN_BODY.replace("\"trapdoor\"", "\"no-such-protocol\"");
    let (status, _) = post(addr, "/run", &unknown);
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
}

#[test]
fn sweep_schedules_a_job_that_streams_json_lines_to_done() {
    let addr = start_server("sweep-job");

    let (status, body) = post(addr, "/sweep", SWEEP_BODY);
    assert_eq!(status, "HTTP/1.1 202 Accepted", "{body}");
    let accepted = json::parse(&body).expect("sweep response is JSON");
    let job = accepted
        .get("job")
        .and_then(Value::as_str)
        .expect("job id")
        .to_string();
    assert_eq!(
        accepted.get("events").and_then(Value::as_str),
        Some(format!("/jobs/{job}").as_str())
    );

    // Stream the job to completion: the connection closes after `done`.
    let (status, body) = get(addr, &format!("/jobs/{job}"));
    assert_eq!(status, "HTTP/1.1 200 OK");
    let lines: Vec<Value> = body
        .lines()
        .map(|line| json::parse(line).unwrap_or_else(|e| panic!("invalid JSON line {line:?}: {e}")))
        .collect();
    assert!(lines.len() >= 4, "scheduled + work + points + done: {body}");
    let event = |v: &Value| v.get("event").and_then(Value::as_str).map(String::from);
    assert_eq!(event(&lines[0]).as_deref(), Some("scheduled"));
    assert_eq!(
        event(lines.last().expect("at least one line")).as_deref(),
        Some("done")
    );
    let done = lines.last().expect("done line");
    // 2 grid points x 6 seeds, all executed by the fabric then served to
    // the aggregation pass from the store.
    assert_eq!(done.get("cached").and_then(Value::as_u64), Some(12));
    assert_eq!(done.get("executed").and_then(Value::as_u64), Some(0));
    let points: Vec<&Value> = lines
        .iter()
        .filter(|v| event(v).as_deref() == Some("point"))
        .collect();
    assert_eq!(points.len(), 2, "one point event per grid point: {body}");
    for point in points {
        let stats = point.get("stats").expect("point stats");
        assert_eq!(stats.get("trials").and_then(Value::as_u64), Some(6));
    }

    // A late subscriber replays the full history instantly.
    let (_, replay) = get(addr, &format!("/jobs/{job}"));
    assert_eq!(replay, body, "replayed stream is identical");

    // Unknown jobs are a 404, not a hung stream.
    let (status, _) = get(addr, "/jobs/job-999");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    // A sweep without a "base" key is rejected up front.
    let (status, body) = post(addr, "/sweep", r#"{"protocol": "trapdoor"}"#);
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(body.contains("base"), "{body}");
}

/// The adaptive variant of [`SWEEP_BODY`]: a 32-seed budget per point,
/// with a stopping rule loose enough that the sync-rate CI settles within
/// the first 4-seed batch (trapdoor at this size synchronizes reliably).
const ADAPTIVE_SWEEP_BODY: &str = r#"{
  "base": {
    "protocol": "trapdoor",
    "adversary": "random",
    "num_nodes": 6,
    "num_frequencies": 4,
    "disruption_bound": 1,
    "max_rounds": 20000
  },
  "seeds": {"start": 0, "end": 32},
  "grid": [{"field": "num_frequencies", "values": [4, 8]}],
  "stop": {"metric": "sync_rate", "half_width": 0.3, "min_seeds": 4, "batch": 4}
}"#;

#[test]
fn adaptive_sweep_job_reports_stops_and_savings() {
    let addr = start_server("sweep-adaptive");

    let (status, body) = post(addr, "/sweep", ADAPTIVE_SWEEP_BODY);
    assert_eq!(status, "HTTP/1.1 202 Accepted", "{body}");
    let accepted = json::parse(&body).expect("sweep response is JSON");
    let job = accepted
        .get("job")
        .and_then(Value::as_str)
        .expect("job id")
        .to_string();

    let (status, body) = get(addr, &format!("/jobs/{job}"));
    assert_eq!(status, "HTTP/1.1 200 OK");
    let lines: Vec<Value> = body
        .lines()
        .map(|line| json::parse(line).unwrap_or_else(|e| panic!("invalid JSON line {line:?}: {e}")))
        .collect();
    let event = |v: &Value| v.get("event").and_then(Value::as_str).map(String::from);

    // The schedule line advertises the budget and flags the job adaptive.
    let scheduled = &lines[0];
    assert_eq!(event(scheduled).as_deref(), Some("scheduled"));
    assert_eq!(
        scheduled.get("adaptive").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(scheduled.get("seed_end").and_then(Value::as_u64), Some(32));

    // Every point event carries its stopping outcome.
    let points: Vec<&Value> = lines
        .iter()
        .filter(|v| event(v).as_deref() == Some("point"))
        .collect();
    assert_eq!(points.len(), 2, "{body}");
    for point in &points {
        let used = point
            .get("seeds_used")
            .and_then(Value::as_u64)
            .expect("seeds_used");
        assert!(used < 32, "point ran its whole budget: {point:?}");
        assert_eq!(
            point.get("stopped_early").and_then(Value::as_bool),
            Some(true)
        );
        assert_eq!(
            point.get("stop_reason").and_then(Value::as_str),
            Some("half_width")
        );
        let stats = point.get("stats").expect("point stats");
        assert_eq!(stats.get("trials").and_then(Value::as_u64), Some(used));
    }

    // The done event totals the savings against the declared budget.
    let done = lines.last().expect("done line");
    assert_eq!(event(done).as_deref(), Some("done"));
    assert_eq!(done.get("stopped_early").and_then(Value::as_u64), Some(2));
    assert_eq!(done.get("trial_budget").and_then(Value::as_u64), Some(64));
    let saved = done
        .get("trials_saved")
        .and_then(Value::as_u64)
        .expect("trials_saved");
    assert!(
        saved >= 32,
        "expected at least half the budget saved: {done:?}"
    );

    // Savings surface in /metrics, and stop markers are cleaned up.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let metrics = json::parse(&metrics).expect("metrics JSON");
    assert_eq!(
        metrics.get("points_stopped").and_then(Value::as_u64),
        Some(2)
    );
    assert_eq!(
        metrics.get("trials_saved").and_then(Value::as_u64),
        Some(saved)
    );
    let leftovers: Vec<String> = std::fs::read_dir(temp_dir_path("sweep-adaptive"))
        .expect("store dir")
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.file_name().to_string_lossy().into_owned())
        .filter(|name| name.starts_with("stop-"))
        .collect();
    assert!(leftovers.is_empty(), "stop markers survived: {leftovers:?}");
}

/// OS threads in this test process (Linux); `None` elsewhere.
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|n| n.trim().parse().ok())
}

#[test]
fn flooding_past_the_handler_cap_yields_503s_not_threads() {
    const FLOOD: usize = 16;
    let addr = start_server_with("saturate", 2);

    // Occupy both permits with connections that never finish sending
    // their request: each one holds a handler thread inside the request
    // parser until we hang up.
    let stalled: Vec<TcpStream> = (0..2)
        .map(|_| {
            let mut stream = TcpStream::connect(addr).expect("connect stall");
            stream.write_all(b"GET /healthz HT").expect("partial write");
            stream
        })
        .collect();
    // Let the accept loop hand both connections to handlers.
    std::thread::sleep(std::time::Duration::from_millis(200));

    // Flood past the cap: every request is refused with a 503 carrying
    // Retry-After, straight from the accept loop.
    let before = process_threads();
    for _ in 0..FLOOD {
        let raw = exchange_raw(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(
            raw.starts_with("HTTP/1.1 503 Service Unavailable"),
            "saturated server must answer 503: {raw}"
        );
        assert!(
            raw.contains("Retry-After:"),
            "503 carries Retry-After: {raw}"
        );
    }
    let after = process_threads();
    if let (Some(before), Some(after)) = (before, after) {
        // Rejected connections spawn no handler threads. Other tests in
        // this process spawn threads of their own, so allow slack well
        // below the flood size.
        assert!(
            after <= before + FLOOD / 2,
            "thread count grew from {before} to {after} across {FLOOD} rejected connections"
        );
    }

    // Hang up the stalled connections; their handlers finish and the
    // permits come back.
    drop(stalled);
    let mut probes = 0usize;
    loop {
        probes += 1;
        let raw = exchange_raw(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        if raw.starts_with("HTTP/1.1 200 OK") {
            break;
        }
        assert!(
            probes < 100,
            "server never recovered after saturation: {raw}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // The metrics agree: every flood connection was rejected, and the
    // accepted count — which counts every handler thread ever spawned —
    // covers only the stalls and the post-recovery probes.
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let metrics = json::parse(&body).expect("metrics is JSON");
    let accepted = metrics
        .get("accepted")
        .and_then(Value::as_u64)
        .expect("accepted counter");
    let rejected = metrics
        .get("rejected")
        .and_then(Value::as_u64)
        .expect("rejected counter");
    assert!(
        rejected >= FLOOD as u64,
        "all {FLOOD} flood connections rejected, saw {rejected}"
    );
    assert!(
        accepted <= 2 + probes as u64 + 1,
        "no handler was spawned for a flooded connection: accepted {accepted}, probes {probes}"
    );
}
