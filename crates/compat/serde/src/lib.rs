//! Offline facade for the `serde` crate.
//!
//! This workspace builds in environments with no crates.io access. Nothing
//! in the codebase serializes data yet — types only *derive*
//! `Serialize`/`Deserialize` so that a later PR can add persistence — so
//! this facade provides marker traits and re-exports the no-op derives from
//! the sibling `serde_derive` stub. Swapping in the real `serde` later is a
//! one-line Cargo.toml change per crate.

#![forbid(unsafe_code)]

// The derive macros live in the macro namespace, the traits below in the
// type namespace, so `use serde::{Serialize, Deserialize}` imports both —
// exactly like the real crate with its `derive` feature enabled.
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
