//! Minimal offline replacement for the `criterion` benchmark harness.
//!
//! This workspace builds in environments with no crates.io access, so the
//! Criterion bench targets link against this self-contained harness
//! instead. It supports the subset of the API the benches use —
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `Throughput`, `BenchmarkId`, `sample_size`, and the
//! `criterion_group!`/`criterion_main!` macros — and reports wall-clock
//! statistics per benchmark to stdout. It performs real timed measurement
//! (warm-up plus a fixed number of timed samples) but none of Criterion's
//! statistical analysis or HTML reporting.
//!
//! When the `CRITERION_JSON_OUT` environment variable names a file, every
//! benchmark additionally appends one JSON object per line to that file
//! (benchmark id, mean/median/min/max in nanoseconds, and elements-per-second
//! throughput when annotated). The repository's committed `BENCH_*.json`
//! baselines are produced from this output.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], as `criterion::black_box`.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs closures under measurement; handed to every benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: a short warm-up, then `sample_size` timed runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// The top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Vec<String>,
    considered: usize,
    ran: usize,
}

impl Drop for Criterion {
    /// Flags a filter that deselected every benchmark — e.g. a value of a
    /// real-Criterion flag this stub does not parse being mistaken for a
    /// name filter — so an empty run is never silent.
    fn drop(&mut self) {
        if !self.filter.is_empty() && self.considered > 0 && self.ran == 0 {
            eprintln!(
                "criterion: no benchmark matched filter {:?} ({} considered); \
                 note: this stub treats every non-flag argument as a name filter",
                self.filter, self.considered
            );
        }
    }
}

impl Criterion {
    /// Reads the benchmark name filter from the process arguments, as real
    /// Criterion does: positional arguments select benchmarks by substring
    /// match; flags are ignored; no positional argument selects everything.
    /// Called by [`criterion_group!`]; a `Criterion::default()` is
    /// unfiltered.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        self
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.is_empty() || self.filter.iter().any(|f| name.contains(f.as_str()))
    }

    /// Filter check that also keeps the considered/ran tally used by the
    /// empty-run warning in [`Drop`].
    fn select_and_count(&mut self, name: &str) -> bool {
        self.considered += 1;
        let selected = self.selected(name);
        if selected {
            self.ran += 1;
        }
        selected
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if self.select_and_count(&id.id) {
            run_one(&id.id, 10, None, f);
        }
        self
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates the group's per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.select_and_count(&full) {
            run_one(&full, self.sample_size, self.throughput, f);
        }
        self
    }

    /// Runs one benchmark that borrows a prepared input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.select_and_count(&full) {
            run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        }
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<60} (no measurement: Bencher::iter never called)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{name:<60} mean {mean:>12?}  median {median:>12?}  [{min:?} .. {max:?}]{rate}");
    append_json_record(name, mean, median, min, max, throughput);
}

/// Escapes `s` for use inside a JSON string literal: backslash, double
/// quote, and control characters only (everything else, including non-ASCII,
/// is valid JSON as-is).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Appends one JSON-lines record for a finished benchmark to the file named
/// by `CRITERION_JSON_OUT`, if set. Errors are reported to stderr and
/// otherwise ignored — a broken results file must never fail a bench run.
fn append_json_record(
    name: &str,
    mean: Duration,
    median: Duration,
    min: Duration,
    max: Duration,
    throughput: Option<Throughput>,
) {
    let Ok(path) = std::env::var("CRITERION_JSON_OUT") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let per_sec = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!(
                ",\"per_iter\":{n},\"per_sec\":{:.1}",
                n as f64 / mean.as_secs_f64()
            )
        }
        _ => String::new(),
    };
    let line = format!(
        "{{\"id\":\"{}\",\"mean_ns\":{},\"median_ns\":{},\"min_ns\":{},\"max_ns\":{}{per_sec}}}\n",
        json_escape(name),
        mean.as_nanos(),
        median.as_nanos(),
        min.as_nanos(),
        max.as_nanos(),
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = result {
        eprintln!("criterion: could not append to {path}: {e}");
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(4));
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &5u32, |b, input| {
            b.iter(|| {
                calls += 1;
                *input * 2
            })
        });
        group.finish();
        // one warm-up call plus three timed samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_function_accepts_str_ids() {
        let mut c = Criterion::default();
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g2");
        group.bench_function("inner", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn json_escape_produces_valid_json_escapes() {
        assert_eq!(json_escape("plain/id"), "plain/id");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\there");
        assert_eq!(json_escape("ctl\u{1}"), "ctl\\u0001");
        // Non-ASCII and single quotes are valid JSON as-is.
        assert_eq!(json_escape("N\u{2265}16'x"), "N\u{2265}16'x");
    }

    fn with_filter(v: &[&str]) -> Criterion {
        Criterion {
            filter: v.iter().map(|s| s.to_string()).collect(),
            considered: 0,
            ran: 0,
        }
    }

    #[test]
    fn filter_selects_by_substring_and_defaults_to_everything() {
        assert!(Criterion::default().selected("group/bench"));
        assert!(with_filter(&["group"]).selected("group/bench"));
        assert!(with_filter(&["bench"]).selected("group/bench"));
        assert!(!with_filter(&["other"]).selected("group/bench"));
        assert!(with_filter(&["other", "bench"]).selected("group/bench"));
    }

    #[test]
    fn filtered_out_benchmarks_do_not_run() {
        let mut c = with_filter(&["only-this"]);
        let mut ran = 0u32;
        c.bench_function("something-else", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 0);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut group_ran = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &1u32, |b, _| {
            b.iter(|| group_ran += 1)
        });
        group.finish();
        assert_eq!(group_ran, 0);
    }
}
