//! Offline drop-in subset of the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external `rand` dependency is replaced by this vendored implementation of
//! exactly the API surface the simulator uses:
//!
//! * [`RngCore`], [`SeedableRng`] and [`rngs::StdRng`] (a xoshiro256++
//!   generator seeded through SplitMix64),
//! * the [`Rng`] extension trait with `gen`, `gen_range` and `gen_bool`,
//! * [`seq::index::sample`] (Floyd's algorithm for distinct indices).
//!
//! Determinism is the only contract that matters here: every generator is a
//! pure function of its 64-bit seed, on every platform. Statistical quality
//! is provided by xoshiro256++, which passes BigCrush.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type returned by [`RngCore::try_fill_bytes`].
///
/// The vendored generators are infallible, so this is never constructed,
/// but the type keeps signatures source-compatible with the real crate.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`]; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// SplitMix64 step, used to expand a 64-bit seed into generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The standard deterministic generator: xoshiro256++.
    ///
    /// Not the same algorithm as the real `rand`'s `StdRng` (ChaCha12), but
    /// this workspace never promises cross-crate stream compatibility —
    /// only that the same seed yields the same stream forever.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is unreachable from SplitMix64 expansion in
            // practice, but guard anyway: xoshiro must not be all zeros.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

/// Draws a uniform value in `[0, span)` without modulo bias
/// (Lemire's widening-multiply rejection method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            if low < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (uniform over all values; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related sampling helpers.
pub mod seq {
    /// Index sampling (subset of `rand::seq::index`).
    pub mod index {
        use crate::{uniform_below, RngCore};

        /// Samples `amount` distinct indices from `0..length`, uniformly at
        /// random, using Floyd's combination algorithm.
        ///
        /// # Panics
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> Vec<usize> {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            let mut chosen: Vec<usize> = Vec::with_capacity(amount);
            for j in length - amount..length {
                let t = uniform_below(rng, j as u64 + 1) as usize;
                if chosen.contains(&t) {
                    chosen.push(j);
                } else {
                    chosen.push(t);
                }
            }
            chosen
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: usize = rng.gen_range(0..=3);
            assert!(z <= 3);
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..6);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut buf2 = [0u8; 37];
        let mut rng2 = StdRng::seed_from_u64(5);
        rng2.try_fill_bytes(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn index_sample_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let picks = seq::index::sample(&mut rng, 10, 4);
            assert_eq!(picks.len(), 4);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "duplicates in {picks:?}");
            assert!(picks.iter().all(|&i| i < 10));
        }
        assert_eq!(seq::index::sample(&mut rng, 3, 3).len(), 3);
        assert!(seq::index::sample(&mut rng, 3, 0).is_empty());
    }
}
