//! Minimal offline replacement for the `proptest` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! property-based tests link against this self-contained harness. It
//! supports the subset of the API the tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * strategies: integer and float ranges, tuples, [`any`] and
//!   [`collection::vec`],
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Unlike the real proptest there is **no shrinking** and no persisted
//! failure seeds: each test derives a fixed RNG seed from its own name, so
//! every run explores the same deterministic case sequence and failures are
//! reproducible by construction.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose seed is a stable hash of `name` (FNV-1a), so a
    /// given test always replays the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            let low = m as u64;
            if low < span {
                let threshold = span.wrapping_neg() % span;
                if low < threshold {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }
}

/// How a generated case ended without passing.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; it does not count.
    Reject,
}

/// Per-test configuration; only the case count is configurable.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_uint_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_strategy_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_strategy_int_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        // f32 rounding of `start + frac * span` can land exactly on the
        // exclusive upper bound; reject and redraw to keep the range
        // half-open (terminates with overwhelming probability).
        loop {
            let x = self.start + rng.next_f64() as f32 * (self.end - self.start);
            if x < self.end {
                return x;
            }
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:ident . $i:tt),+)),* $(,)?) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Types with a canonical "anything" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy drawing any value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A vector-length specification (mirrors `proptest::collection::SizeRange`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        length: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.length.lo..=self.length.hi_inclusive).generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors whose elements come from `element` and
    /// whose length comes from `length` (a `usize`, `usize` range, or
    /// inclusive range).
    pub fn vec<S: Strategy, L: Into<SizeRange>>(element: S, length: L) -> VecStrategy<S> {
        VecStrategy {
            element,
            length: length.into(),
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Asserts a condition inside a property; panics with the failing
/// expression (and optional formatted message) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current case (it is regenerated and does not count towards
/// the configured case total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministically generated
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                let case = (|rng: &mut $crate::TestRng|
                    -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $pat = $crate::Strategy::generate(&($strategy), rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })(&mut rng);
                match case {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 64 * config.cases.max(16),
                            "property {} rejected too many cases ({} accepted, {} rejected)",
                            stringify!($name), accepted, rejected,
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_replays() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn strategies_respect_ranges() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (1u64..=4).generate(&mut rng);
            assert!((1..=4).contains(&y));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let (a, b) = (0usize..5, any::<bool>()).generate(&mut rng);
            assert!(a < 5);
            let _ = b;
            let v = crate::collection::vec(0u32..3, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 3));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, assume, and asserts all work.
        #[test]
        fn macro_smoke(x in 0u32..10, mut v in crate::collection::vec(0i64..5, 0..6)) {
            prop_assume!(x != 3);
            v.sort_unstable();
            prop_assert!(x < 10 && x != 3);
            prop_assert_eq!(v.len(), v.capacity().min(v.len()));
        }
    }
}
