//! No-op `Serialize`/`Deserialize` derive macros for offline builds.
//!
//! The workspace's types carry `#[derive(Serialize, Deserialize)]` so that a
//! future PR can turn on real serialization, but nothing currently consumes
//! the trait impls. In environments without crates.io access the real
//! `serde_derive` is unavailable, so these derives expand to nothing; the
//! `#[serde(...)]` helper attribute is registered and ignored.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
