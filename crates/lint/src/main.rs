//! The `wsync-lint` CLI: audit the workspace determinism contract.
//!
//! ```text
//! wsync-lint [--root DIR] [--format human|json] [--deny-all]
//!            [--rule NAME]... [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error —
//! suitable for CI gates (`cargo run -p wsync-lint -- --deny-all`).

#![forbid(unsafe_code)]

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use wsync_lint::lint_workspace;
use wsync_lint::rules::RuleRegistry;

/// Writes `text` to stdout, swallowing `BrokenPipe` (piping into `head`
/// must not look like a crash) while still surfacing real write errors.
fn emit(text: &str) -> std::io::Result<()> {
    match std::io::stdout().write_all(text.as_bytes()) {
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        other => other,
    }
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = "human".to_string();
    let mut deny_all = false;
    let mut only_rules: Vec<String> = Vec::new();
    let mut list_rules = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root requires a directory"),
            },
            "--format" => match args.next().as_deref() {
                Some("human") => format = "human".to_string(),
                Some("json") => format = "json".to_string(),
                other => {
                    return usage_error(&format!(
                        "--format must be `human` or `json`, got {other:?}"
                    ))
                }
            },
            "--deny-all" => deny_all = true,
            "--rule" => match args.next() {
                Some(name) => only_rules.push(name),
                None => return usage_error("--rule requires a rule name"),
            },
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                let _ = emit(&help_text());
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let mut registry = RuleRegistry::with_defaults();
    if list_rules {
        let mut listing = String::new();
        for rule in registry.rules() {
            let policy = if rule.deny_by_default { "deny" } else { "warn" };
            listing.push_str(&format!(
                "{:28} [{policy}] {}\n",
                rule.name, rule.description
            ));
        }
        let _ = emit(&listing);
        return ExitCode::SUCCESS;
    }
    if !only_rules.is_empty() {
        let mut filtered = RuleRegistry::new();
        for name in &only_rules {
            match registry.get(name) {
                Some(_) => {}
                None => return usage_error(&format!("unknown rule `{name}` (see --list-rules)")),
            }
        }
        let defaults = std::mem::take(&mut registry);
        for rule in defaults.into_rules() {
            if only_rules.iter().any(|n| n == rule.name) {
                filtered.register(rule);
            }
        }
        registry = filtered;
    }

    match lint_workspace(&root, &registry) {
        Ok(report) => {
            let mut rendered = match format.as_str() {
                "json" => report.render_json(deny_all),
                _ => report.render_human(deny_all),
            };
            if !rendered.ends_with('\n') {
                rendered.push('\n');
            }
            if let Err(e) = emit(&rendered) {
                eprintln!("wsync-lint: I/O error: {e}");
                return ExitCode::from(2);
            }
            ExitCode::from(u8::try_from(report.exit_code(deny_all)).unwrap_or(1))
        }
        Err(e) => {
            eprintln!("wsync-lint: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("wsync-lint: {msg}");
    eprint!("{}", help_text());
    ExitCode::from(2)
}

fn help_text() -> String {
    "usage: wsync-lint [--root DIR] [--format human|json] [--deny-all] \
     [--rule NAME]... [--list-rules]\n\
     \n\
     Audits the workspace determinism contract: nondeterministic iteration,\n\
     ambient randomness, wall-clock reads, unsafe code, and panicky hot\n\
     paths. Exit codes: 0 clean, 1 findings, 2 usage/I-O error.\n"
        .to_string()
}
