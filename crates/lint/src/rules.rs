//! The determinism rule set and its string-keyed registry.
//!
//! Every rule audits one way a change could silently break the
//! reproducibility contract the golden-digest tests and `--resume`
//! equality rest on. Rules see one file at a time as a lexed token
//! stream plus a [`FileScope`] describing where the file sits in the
//! workspace; they emit [`Finding`]s, which the driver then filters
//! against the file's `lint:allow` suppressions.

use crate::lexer::{LexedFile, Token};

/// Where a source file sits in the workspace — the inputs rule scoping
/// decisions are made from.
#[derive(Debug, Clone, Default)]
pub struct FileScope {
    /// Workspace-relative path with `/` separators, e.g.
    /// `crates/core/src/batch.rs`.
    pub rel_path: String,
    /// The owning crate's package name (`wsync-core`, `wireless-sync`,
    /// `compat/rand`, …).
    pub crate_name: String,
    /// Whether the file belongs to a vendored compat crate
    /// (`crates/compat/*`) — the designated home for entropy and time.
    pub is_compat: bool,
    /// Whether the file is benchmark code (`crates/bench` or any
    /// `benches/` directory) — wall-clock reads are its job.
    pub is_bench: bool,
    /// Whether the file is a crate root (`src/lib.rs`), where
    /// `#![forbid(unsafe_code)]` must live.
    pub is_crate_root: bool,
}

/// A single diagnostic: one rule firing at one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (registry key).
    pub rule: String,
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Whether this finding fails the build under the default policy
    /// (advisory rules are promoted by `--deny-all`).
    pub deny: bool,
}

/// Everything a rule can look at for one file.
pub struct FileContext<'a> {
    /// The file's workspace scope.
    pub scope: &'a FileScope,
    /// The lexed token stream and suppression markers.
    pub lexed: &'a LexedFile,
    /// Per-token flag: `true` for tokens inside `#[cfg(test)]` items.
    pub in_test: &'a [bool],
}

impl FileContext<'_> {
    fn finding(&self, rule: &Rule, line: u32, message: String) -> Finding {
        Finding {
            rule: rule.name.to_string(),
            path: self.scope.rel_path.clone(),
            line,
            message,
            deny: rule.deny_by_default,
        }
    }
}

/// One registered rule: a name, its documentation, its default policy,
/// and the check itself.
pub struct Rule {
    /// The registry key, as written in `lint:allow(…)` markers.
    pub name: &'static str,
    /// One-line description shown by `--list-rules`.
    pub description: &'static str,
    /// `true` for rules that fail the build by default; advisory rules
    /// only fail under `--deny-all`.
    pub deny_by_default: bool,
    check: fn(&Rule, &FileContext<'_>, &mut Vec<Finding>),
}

impl std::fmt::Debug for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule")
            .field("name", &self.name)
            .field("deny_by_default", &self.deny_by_default)
            .finish()
    }
}

impl Rule {
    /// Builds a rule from its parts — the public face of the open
    /// registry, so downstream tooling can register custom checks.
    pub const fn new(
        name: &'static str,
        description: &'static str,
        deny_by_default: bool,
        check: fn(&Rule, &FileContext<'_>, &mut Vec<Finding>),
    ) -> Self {
        Rule {
            name,
            description,
            deny_by_default,
            check,
        }
    }

    /// Runs this rule over one file.
    pub fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
        (self.check)(self, ctx, out)
    }
}

/// A string-keyed, insertion-ordered rule registry (the same open-registry
/// shape as `wsync-core`'s protocol/adversary registry).
#[derive(Debug, Default)]
pub struct RuleRegistry {
    rules: Vec<Rule>,
}

impl RuleRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        RuleRegistry::default()
    }

    /// The registry with every built-in determinism rule.
    pub fn with_defaults() -> Self {
        let mut reg = RuleRegistry::new();
        reg.register(NONDETERMINISTIC_ITERATION);
        reg.register(AMBIENT_RNG);
        reg.register(WALL_CLOCK);
        reg.register(UNSAFE_CODE);
        reg.register(PANICKY_LIBRARY);
        reg
    }

    /// Adds a rule. A duplicate name replaces the earlier registration
    /// (latest wins, like the core registry).
    pub fn register(&mut self, rule: Rule) {
        self.rules.retain(|r| r.name != rule.name);
        self.rules.push(rule);
    }

    /// Looks a rule up by its string key.
    pub fn get(&self, name: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.name == name)
    }

    /// The registered rules, in registration order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Consumes the registry, yielding its rules in registration order.
    pub fn into_rules(self) -> Vec<Rule> {
        self.rules
    }

    /// Whether `name` names a registered rule *or* one of the meta
    /// findings the driver itself emits (valid in `lint:allow` markers).
    pub fn is_known_name(&self, name: &str) -> bool {
        self.get(name).is_some() || name == UNEXPLAINED_SUPPRESSION || name == UNKNOWN_RULE
    }
}

/// Meta finding: a `lint:allow` marker with no reason after the `):`.
pub const UNEXPLAINED_SUPPRESSION: &str = "unexplained-suppression";
/// Meta finding: a `lint:allow` marker naming a rule that does not exist.
pub const UNKNOWN_RULE: &str = "unknown-rule";

/// The crates whose state feeds golden digests and store records — a
/// nondeterministically ordered collection reaching any fold here can
/// silently change pinned results.
const DIGEST_FEEDING_CRATES: &[&str] = &["wsync-core", "wsync-radio"];

/// Hot-path files where a stray `unwrap`/`expect` aborts a whole sweep
/// instead of surfacing as a per-trial error.
const HOT_PATH_FILES: &[&str] = &[
    "crates/radio/src/engine.rs",
    "crates/core/src/store.rs",
    "crates/core/src/sweep.rs",
    "crates/core/src/batch.rs",
];

fn idents<'a>(ctx: &'a FileContext<'_>) -> impl Iterator<Item = (usize, &'a Token)> {
    ctx.lexed.tokens.iter().enumerate().filter(|(_, t)| t.ident)
}

/// `nondeterministic-iteration`: `HashMap`/`HashSet` in digest-feeding
/// code. Also covers the umbrella `tests/` directory, because that is
/// where the golden FNV digests are computed.
pub const NONDETERMINISTIC_ITERATION: Rule = Rule {
    name: "nondeterministic-iteration",
    description: "HashMap/HashSet in digest-feeding code (wsync-core, wsync-radio, tests/): \
                  iteration order is randomized per process; use BTreeMap/BTreeSet or sort \
                  before iterating",
    deny_by_default: true,
    check: |rule, ctx, out| {
        let in_scope = DIGEST_FEEDING_CRATES.contains(&ctx.scope.crate_name.as_str())
            || ctx.scope.rel_path.starts_with("tests/");
        if !in_scope || ctx.scope.is_compat {
            return;
        }
        for (_, t) in idents(ctx) {
            if t.text == "HashMap" || t.text == "HashSet" {
                out.push(ctx.finding(
                    rule,
                    t.line,
                    format!(
                        "`{}` has randomized iteration order; in a digest-feeding crate use \
                         `BTree{}`, sort before iterating, or justify with \
                         `// lint:allow({}): <reason>`",
                        t.text,
                        &t.text[4..],
                        rule.name
                    ),
                ));
            }
        }
    },
};

/// `ambient-rng`: entropy outside the vendored `compat` layer. Every
/// random draw must descend from the trial's master seed via `SimRng`.
pub const AMBIENT_RNG: Rule = Rule {
    name: "ambient-rng",
    description: "ambient randomness (thread_rng/from_entropy/OsRng) outside crates/compat: \
                  every draw must descend from the (spec, seed) master seed via SimRng",
    deny_by_default: true,
    check: |rule, ctx, out| {
        if ctx.scope.is_compat {
            return;
        }
        for (_, t) in idents(ctx) {
            if matches!(
                t.text.as_str(),
                "thread_rng" | "ThreadRng" | "from_entropy" | "OsRng" | "getrandom"
            ) {
                out.push(ctx.finding(
                    rule,
                    t.line,
                    format!(
                        "`{}` draws ambient entropy, breaking the (spec, seed) purity every \
                         resume/parallel-equality claim rests on; derive a SimRng stream instead",
                        t.text
                    ),
                ));
            }
        }
    },
};

/// `wall-clock`: `Instant`/`SystemTime` outside the criterion compat
/// shim and bench code. Simulation logic must be round-driven, not
/// time-driven.
pub const WALL_CLOCK: Rule = Rule {
    name: "wall-clock",
    description: "Instant/SystemTime outside compat/criterion and bench code: simulated time \
                  is round-driven; wall-clock reads make runs machine-dependent",
    deny_by_default: true,
    check: |rule, ctx, out| {
        let exempt = ctx.scope.is_bench || ctx.scope.rel_path.starts_with("crates/compat/");
        if exempt {
            return;
        }
        for (_, t) in idents(ctx) {
            if t.text == "Instant" || t.text == "SystemTime" {
                out.push(ctx.finding(
                    rule,
                    t.line,
                    format!(
                        "`{}` reads the wall clock; outside bench/compat code that makes \
                         behaviour machine- and load-dependent",
                        t.text
                    ),
                ));
            }
        }
    },
};

/// `unsafe-code`: every non-compat crate root must carry
/// `#![forbid(unsafe_code)]`, and no `unsafe` token may appear anywhere
/// outside `compat`.
pub const UNSAFE_CODE: Rule = Rule {
    name: "unsafe-code",
    description: "non-compat crates must carry #![forbid(unsafe_code)] at their root, and no \
                  `unsafe` token may appear outside crates/compat",
    deny_by_default: true,
    check: |rule, ctx, out| {
        if ctx.scope.is_compat {
            return;
        }
        if ctx.scope.is_crate_root {
            let tokens = &ctx.lexed.tokens;
            let has_forbid = tokens.iter().enumerate().any(|(i, t)| {
                t.is_ident("forbid")
                    && tokens[i + 1..]
                        .iter()
                        .take(3)
                        .any(|n| n.is_ident("unsafe_code"))
            });
            if !has_forbid {
                out.push(ctx.finding(
                    rule,
                    1,
                    format!(
                        "crate root of `{}` is missing `#![forbid(unsafe_code)]`",
                        ctx.scope.crate_name
                    ),
                ));
            }
        }
        for (_, t) in idents(ctx) {
            if t.text == "unsafe" {
                out.push(
                    ctx.finding(
                        rule,
                        t.line,
                        "`unsafe` outside crates/compat: this workspace is 100% safe Rust by \
                     policy"
                            .to_string(),
                    ),
                );
            }
        }
    },
};

/// `panicky-library`: `.unwrap()`/`.expect()` in the engine/store/sweep
/// hot paths (shipping code only — `#[cfg(test)]` modules are exempt).
/// Advisory by default; CI promotes it with `--deny-all`.
pub const PANICKY_LIBRARY: Rule = Rule {
    name: "panicky-library",
    description: ".unwrap()/.expect() in engine/store/sweep hot paths: a panic there aborts a \
                  whole sweep; return an error or justify the invariant (advisory unless \
                  --deny-all)",
    deny_by_default: false,
    check: |rule, ctx, out| {
        if !HOT_PATH_FILES.contains(&ctx.scope.rel_path.as_str()) {
            return;
        }
        let tokens = &ctx.lexed.tokens;
        for (i, t) in idents(ctx) {
            if ctx.in_test.get(i).copied().unwrap_or(false) {
                continue;
            }
            let is_method = i > 0 && tokens[i - 1].is_punct(".");
            if is_method && (t.text == "unwrap" || t.text == "expect") {
                out.push(ctx.finding(
                    rule,
                    t.line,
                    format!(
                        "`.{}()` on a hot path panics the worker pool on failure; bubble an \
                         error, recover explicitly, or justify the invariant with \
                         `// lint:allow({}): <reason>`",
                        t.text, rule.name
                    ),
                ));
            }
        }
    },
};
