//! Workspace discovery: find every `.rs` file and classify where it sits.
//!
//! Dependency-free by design — a plain recursive directory walk over the
//! workspace root, skipping build output and VCS metadata, with crate
//! names recovered from each crate's `Cargo.toml` (a one-line scan, in
//! the same hand-rolled spirit as the JSON layer; no TOML parser needed).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::FileScope;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// Discovers every Rust source file under `root` and classifies it.
/// Results are sorted by relative path, so reports are byte-stable
/// across filesystems and platforms.
pub fn discover(root: &Path) -> io::Result<Vec<(FileScope, PathBuf)>> {
    let mut files = Vec::new();
    walk_dir(root, root, &mut files)?;
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(files
        .into_iter()
        .map(|(rel, abs)| (classify(root, &rel), abs))
        .collect())
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Classifies one workspace-relative path into a [`FileScope`].
pub fn classify(root: &Path, rel: &str) -> FileScope {
    let is_compat = rel.starts_with("crates/compat/");
    let is_bench = rel.starts_with("crates/bench/") || rel.contains("/benches/");
    let crate_name = if let Some(rest) = rel.strip_prefix("crates/") {
        let dir: String = if is_compat {
            let sub = rest.trim_start_matches("compat/");
            format!("compat/{}", sub.split('/').next().unwrap_or(sub))
        } else {
            rest.split('/').next().unwrap_or(rest).to_string()
        };
        package_name(&root.join("crates").join(&dir)).unwrap_or(dir)
    } else {
        // Umbrella crate: `src/`, `tests/`, `examples/` at the root.
        package_name(root).unwrap_or_else(|| "workspace-root".to_string())
    };
    FileScope {
        rel_path: rel.to_string(),
        crate_name,
        is_compat,
        is_bench,
        is_crate_root: rel.ends_with("src/lib.rs"),
    }
}

/// Reads `name = "…"` from the `[package]` section of a crate's
/// `Cargo.toml`. Falls back to `None` on any surprise — the caller then
/// uses the directory name, which is close enough for scoping.
fn package_name(crate_dir: &Path) -> Option<String> {
    let manifest = fs::read_to_string(crate_dir.join("Cargo.toml")).ok()?;
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}
