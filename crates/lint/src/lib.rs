//! `wsync-lint` — the workspace determinism auditor.
//!
//! Every claim this reproduction makes — golden FNV digests, bit-identical
//! `--resume`, parallel == serial outcomes — rests on a determinism
//! contract that ordinary tests cannot enforce: a single `HashMap`
//! iteration leaking into a fold, an ambient RNG, or a wall-clock read in
//! simulation logic breaks reproducibility *silently*. This crate is the
//! static-analysis gate that makes aggressive refactors of the hottest
//! code safe to attempt: a hand-rolled comment/string-aware lexer
//! ([`lexer`]) feeds a string-keyed rule registry ([`rules`]) over every
//! source file in the workspace ([`walk`]).
//!
//! # Rules
//!
//! | rule | scope | what it catches |
//! |------|-------|-----------------|
//! | `nondeterministic-iteration` | `wsync-core`, `wsync-radio`, `tests/` | `HashMap`/`HashSet` tokens |
//! | `ambient-rng` | everything except `crates/compat` | `thread_rng`, `from_entropy`, `OsRng`, … |
//! | `wall-clock` | everything except compat + bench code | `Instant`, `SystemTime` |
//! | `unsafe-code` | every non-compat crate | missing `#![forbid(unsafe_code)]`, any `unsafe` token |
//! | `panicky-library` | engine/store/sweep hot paths | `.unwrap()` / `.expect()` (advisory unless `--deny-all`) |
//!
//! # Suppressions
//!
//! A finding is scoped out with an inline marker on the offending line or
//! the line directly above it:
//!
//! ```text
//! // lint:allow(nondeterministic-iteration): drained by keyed remove in seed order
//! ```
//!
//! The reason after `):` is **mandatory** — a marker without one
//! suppresses nothing and is itself reported (`unexplained-suppression`),
//! as is a marker naming a rule that does not exist (`unknown-rule`).
//!
//! # Exit codes
//!
//! `0` — clean (denied findings: none); `1` — findings; `2` — usage or
//! I/O error. CI runs `wsync-lint --deny-all`, which promotes advisory
//! rules to errors.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

use wsync_core::json::Value;

use lexer::{lex, test_regions, Suppression};
use rules::{FileContext, FileScope, Finding, RuleRegistry, UNEXPLAINED_SUPPRESSION, UNKNOWN_RULE};

/// The outcome of linting a set of files.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Findings that survived suppression, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of findings scoped out by reasoned `lint:allow` markers.
    pub suppressed: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Findings that fail the build under `deny_all`.
    pub fn denied(&self, deny_all: bool) -> usize {
        self.findings.iter().filter(|f| f.deny || deny_all).count()
    }

    /// The process exit code this report maps to: `0` when no finding is
    /// denied (advisory findings may remain unless `deny_all`), else `1`.
    pub fn exit_code(&self, deny_all: bool) -> i32 {
        if self.denied(deny_all) == 0 {
            0
        } else {
            1
        }
    }

    /// Renders the human `file:line: [rule] message` form, one finding
    /// per line, followed by a one-line summary.
    pub fn render_human(&self, deny_all: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let sev = if f.deny || deny_all { "deny" } else { "warn" };
            out.push_str(&format!(
                "{}:{}: [{}] ({}) {}\n",
                f.path, f.line, f.rule, sev, f.message
            ));
        }
        out.push_str(&format!(
            "{} files scanned: {} finding(s) ({} denied), {} suppressed by reasoned markers\n",
            self.files_scanned,
            self.findings.len(),
            self.denied(deny_all),
            self.suppressed
        ));
        out
    }

    /// Renders the report as a JSON document via the in-repo writer —
    /// byte-stable for golden tests and machine consumers.
    pub fn render_json(&self, deny_all: bool) -> String {
        let findings: Vec<Value> = self
            .findings
            .iter()
            .map(|f| {
                Value::Object(vec![
                    ("rule".to_string(), Value::Str(f.rule.clone())),
                    ("path".to_string(), Value::Str(f.path.clone())),
                    ("line".to_string(), Value::Int(i64::from(f.line))),
                    ("severity".to_string(), {
                        let sev = if f.deny || deny_all { "deny" } else { "warn" };
                        Value::Str(sev.to_string())
                    }),
                    ("message".to_string(), Value::Str(f.message.clone())),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "files_scanned".to_string(),
                Value::Int(self.files_scanned as i64),
            ),
            ("findings".to_string(), Value::Array(findings)),
            (
                "denied".to_string(),
                Value::Int(self.denied(deny_all) as i64),
            ),
            ("suppressed".to_string(), Value::Int(self.suppressed as i64)),
        ])
        .to_json()
    }
}

/// Lints one in-memory source file against `registry`, applying the
/// file's `lint:allow` suppressions. This is the unit the fixture tests
/// drive; [`lint_workspace`] is a fold of it over [`walk::discover`].
pub fn lint_source(scope: &FileScope, source: &str, registry: &RuleRegistry) -> LintReport {
    let lexed = lex(source);
    let in_test = test_regions(&lexed.tokens);
    let ctx = FileContext {
        scope,
        lexed: &lexed,
        in_test: &in_test,
    };

    let mut raw: Vec<Finding> = Vec::new();
    for rule in registry.rules() {
        rule.check(&ctx, &mut raw);
    }

    // Apply suppressions: a reasoned marker covers its own line and the
    // line directly below, for the rules it names.
    let mut suppressed = 0usize;
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        let covered = lexed.suppressions.iter().any(|s: &Suppression| {
            s.reason.is_some()
                && s.rules.iter().any(|r| r == &f.rule)
                && (s.line == f.line || s.line + 1 == f.line)
        });
        if covered {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }

    // Meta findings: reasonless markers and unknown rule names always
    // deny — an unexplained suppression is itself a violation of the
    // contract.
    for s in &lexed.suppressions {
        if s.reason.is_none() {
            findings.push(Finding {
                rule: UNEXPLAINED_SUPPRESSION.to_string(),
                path: scope.rel_path.clone(),
                line: s.line,
                message: format!(
                    "suppression `lint:allow({})` carries no reason; write \
                     `// lint:allow(<rule>): <why this is sound>`",
                    s.rules.join(", ")
                ),
                deny: true,
            });
        }
        for r in &s.rules {
            if !registry.is_known_name(r) {
                findings.push(Finding {
                    rule: UNKNOWN_RULE.to_string(),
                    path: scope.rel_path.clone(),
                    line: s.line,
                    message: format!(
                        "suppression names unknown rule `{r}`; known rules: {}",
                        registry
                            .rules()
                            .iter()
                            .map(|r| r.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    deny: true,
                });
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.as_str()).cmp(&(b.path.as_str(), b.line, b.rule.as_str()))
    });
    LintReport {
        findings,
        suppressed,
        files_scanned: 1,
    }
}

/// Lints every Rust source file under `root`, folding the per-file
/// reports into one.
pub fn lint_workspace(root: &Path, registry: &RuleRegistry) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    for (scope, abs_path) in walk::discover(root)? {
        let source = std::fs::read_to_string(&abs_path)?;
        let file_report = lint_source(&scope, &source, registry);
        report.findings.extend(file_report.findings);
        report.suppressed += file_report.suppressed;
        report.files_scanned += 1;
    }
    report.findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.as_str()).cmp(&(b.path.as_str(), b.line, b.rule.as_str()))
    });
    Ok(report)
}
