//! A hand-rolled, comment- and string-aware Rust token scanner.
//!
//! The rules in this crate only need to know *which identifiers appear in
//! executable positions* — an `unsafe` inside a string literal or a
//! `HashMap` inside a doc comment must never trigger a finding. A full
//! Rust parser would be wildly out of proportion; instead this module
//! scans source text into a flat [`Token`] stream, skipping:
//!
//! * line comments (`//`, `///`, `//!`),
//! * block comments with arbitrary nesting (`/* /* */ */`),
//! * string literals with escapes (`"…\"…"`, plus `b"…"` / `c"…"`),
//! * raw strings with any hash depth (`r"…"`, `r#"…"#`, `br##"…"##`),
//! * character literals (`'x'`, `'\n'`, `'\''`) while still stepping
//!   over lifetimes (`'a`, `'static`) and raw identifiers (`r#type`).
//!
//! Comments are not discarded entirely: they are mined for the inline
//! suppression markers of the form
//! `// lint:allow(rule-a, rule-b): reason text` that scope a finding out
//! (see [`Suppression`]). Everything else — identifiers and single-char
//! punctuation — lands in the token stream with a 1-based line number, in
//! the same spirit as the hand-rolled JSON layer in `wsync-core`.

/// One lexed token: an identifier (including keywords and numeric
/// literals' alphanumeric tails) or a single punctuation character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text; single character for punctuation.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Whether the token is an identifier/keyword (as opposed to
    /// punctuation).
    pub ident: bool,
}

impl Token {
    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.ident && self.text == text
    }

    /// Whether this token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        !self.ident && self.text == text
    }
}

/// An inline suppression marker mined from a comment:
/// `lint:allow(rule-a, rule-b): reason`.
///
/// A marker scopes the named rules out on **its own line and the line
/// immediately below it** (so it can sit either as a trailing comment on
/// the offending line or on its own line directly above). The reason text
/// after the closing `):` is mandatory — a marker without one does *not*
/// suppress anything and is itself reported (the `unexplained-suppression`
/// meta finding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule names listed inside `lint:allow(…)`.
    pub rules: Vec<String>,
    /// 1-based line the marker appears on.
    pub line: u32,
    /// The justification after `):` — `None` when missing or empty.
    pub reason: Option<String>,
}

/// The result of lexing one source file.
#[derive(Debug, Clone, Default)]
pub struct LexedFile {
    /// The token stream, in source order.
    pub tokens: Vec<Token>,
    /// Every suppression marker found in comments, in source order.
    pub suppressions: Vec<Suppression>,
}

/// Lexes `source` into tokens and suppression markers. Never fails:
/// malformed input (an unterminated string, say) simply ends the stream
/// at the point the scanner runs out of characters.
pub fn lex(source: &str) -> LexedFile {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: LexedFile::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: LexedFile,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn run(mut self) -> LexedFile {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.char_or_lifetime(),
                _ if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_literal(),
                _ if c.is_ascii_digit() => self.numeric_literal(),
                _ => {
                    self.out.tokens.push(Token {
                        text: c.to_string(),
                        line: self.line,
                        ident: false,
                    });
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    /// `// …` to end of line; the newline itself is left for `run`.
    ///
    /// Doc comments (`///`, `//!`) are documentation, not directives —
    /// markers are only mined from regular comments, so prose *about*
    /// `lint:allow` never acts as a suppression.
    fn line_comment(&mut self) {
        let is_doc = matches!(self.peek(2), Some('/' | '!'));
        let start = self.pos + 2;
        let mut end = start;
        while end < self.chars.len() && self.chars[end] != '\n' {
            end += 1;
        }
        if !is_doc {
            let text: String = self.chars[start..end].iter().collect();
            let line = self.line;
            self.mine_suppressions(&text, line);
        }
        self.pos = end;
    }

    /// `/* … */` with nesting; suppression markers keep their exact line.
    /// Doc blocks (`/** */`, `/*! */`) are skipped for mining, like line
    /// doc comments.
    fn block_comment(&mut self) {
        let is_doc = matches!(self.peek(2), Some('*' | '!')) && self.peek(3) != Some('/');
        self.pos += 2;
        let mut depth = 1usize;
        let mut line_text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some('\n'), _) => {
                    if !is_doc {
                        let line = self.line;
                        self.mine_suppressions(&line_text, line);
                    }
                    line_text.clear();
                    self.line += 1;
                    self.pos += 1;
                }
                (Some(c), _) => {
                    line_text.push(c);
                    self.pos += 1;
                }
                (None, _) => break, // unterminated: end of input
            }
        }
        if !is_doc {
            let line = self.line;
            self.mine_suppressions(&line_text, line);
        }
    }

    /// `"…"` with backslash escapes; multi-line strings keep the line
    /// counter honest.
    fn string_literal(&mut self) {
        self.pos += 1; // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    // An escape's payload can't contain an unescaped quote.
                    if self.peek(1) == Some('\n') {
                        self.line += 1;
                    }
                    self.pos += 2;
                }
                '"' => {
                    self.pos += 1;
                    return;
                }
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// `r"…"` / `r#"…"#` / `br##"…"##`: consume until `"` followed by
    /// `hashes` hash marks.
    fn raw_string(&mut self, hashes: usize) {
        self.pos += 1; // opening quote
        loop {
            match self.peek(0) {
                None => return, // unterminated
                Some('\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some('"') => {
                    let mut matched = 0;
                    while matched < hashes && self.peek(1 + matched) == Some('#') {
                        matched += 1;
                    }
                    self.pos += 1 + matched;
                    if matched == hashes {
                        return;
                    }
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// A character literal (`'x'`, `'\n'`) or a lifetime/label (`'a`,
    /// `'static`). Disambiguation: a backslash or a `<char>'` pair means
    /// a literal; otherwise it is a lifetime and only the quote plus the
    /// identifier are consumed.
    fn char_or_lifetime(&mut self) {
        if self.peek(1) == Some('\\') {
            // Escaped char literal: skip until the closing quote.
            self.pos += 2; // quote + backslash
            self.pos += 1; // escaped char (or the 'u' of \u{…})
            while let Some(c) = self.peek(0) {
                self.pos += 1;
                if c == '\'' {
                    break;
                }
            }
        } else if self.peek(2) == Some('\'') && self.peek(1) != Some('\'') {
            if self.peek(1) == Some('\n') {
                self.line += 1;
            }
            self.pos += 3;
        } else {
            // Lifetime or loop label: consume the identifier after the quote.
            self.pos += 1;
            while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
                self.pos += 1;
            }
        }
    }

    /// An identifier — unless it turns out to be the prefix of a (raw)
    /// string literal (`r"…"`, `br#"…"#`, `b"…"`, `c"…"`) or a raw
    /// identifier (`r#type`).
    fn ident_or_prefixed_literal(&mut self) {
        let start = self.pos;
        while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        match text.as_str() {
            "r" | "br" | "cr" => {
                let mut hashes = 0;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    self.pos += hashes; // step onto the opening quote
                    self.raw_string(hashes);
                    return;
                }
                if text == "r" && hashes == 1 {
                    // Raw identifier `r#ident`: emit the identifier itself.
                    self.pos += 1; // the hash
                    let id_start = self.pos;
                    while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
                        self.pos += 1;
                    }
                    let ident: String = self.chars[id_start..self.pos].iter().collect();
                    if !ident.is_empty() {
                        self.out.tokens.push(Token {
                            text: ident,
                            line: self.line,
                            ident: true,
                        });
                        return;
                    }
                }
                self.push_ident(text);
            }
            "b" | "c" if self.peek(0) == Some('"') => self.string_literal(),
            "b" if self.peek(0) == Some('\'') => self.char_or_lifetime(),
            _ => self.push_ident(text),
        }
    }

    fn push_ident(&mut self, text: String) {
        self.out.tokens.push(Token {
            text,
            line: self.line,
            ident: true,
        });
    }

    /// Numeric literals (including type suffixes like `1u32` and hex
    /// bodies) carry no signal for any rule; consume and drop them. Dots
    /// are *not* consumed, so `0..n` and `1.5` still lex predictably.
    fn numeric_literal(&mut self) {
        while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
            self.pos += 1;
        }
    }

    /// Extracts every `lint:allow(rules): reason` marker from one line of
    /// comment text.
    fn mine_suppressions(&mut self, text: &str, line: u32) {
        const MARKER: &str = "lint:allow(";
        let mut rest = text;
        while let Some(at) = rest.find(MARKER) {
            let after = &rest[at + MARKER.len()..];
            let Some(close) = after.find(')') else {
                break;
            };
            let rules: Vec<String> = after[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let tail = after[close + 1..].trim_start();
            let reason = tail
                .strip_prefix(':')
                .map(str::trim)
                .filter(|r| !r.is_empty())
                .map(str::to_string);
            self.out.suppressions.push(Suppression {
                rules,
                line,
                reason,
            });
            rest = &after[close + 1..];
        }
    }
}

/// Marks the tokens that belong to `#[cfg(test)]` items (conventionally
/// the in-file test module at the bottom of a source file), so rules that
/// only audit shipping code can skip them.
///
/// The heuristic: a `#[cfg(…)]` attribute whose argument tokens mention
/// `test` marks the *next item* — every token through the matching `}` of
/// the item's first brace, or through the first `;` for brace-less items
/// (`#[cfg(test)] use …;`). Nested braces are tracked, attribute stacking
/// is supported, and anything unmatched degrades to "not test code"
/// (strictness wins on malformed input).
pub fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let Some(close) = matching(tokens, i + 1, "[", "]") else {
                i += 1;
                continue;
            };
            let attr = &tokens[i + 2..close];
            let is_cfg_test =
                attr.iter().any(|t| t.is_ident("cfg")) && attr.iter().any(|t| t.is_ident("test"));
            if !is_cfg_test {
                i = close + 1;
                continue;
            }
            // Skip any further stacked attributes before the item.
            let mut j = close + 1;
            while j < tokens.len()
                && tokens[j].is_punct("#")
                && tokens.get(j + 1).is_some_and(|t| t.is_punct("["))
            {
                match matching(tokens, j + 1, "[", "]") {
                    Some(c) => j = c + 1,
                    None => break,
                }
            }
            // The item extends to its first brace's match, or the first
            // semicolon if one comes sooner.
            let mut k = j;
            while k < tokens.len() && !tokens[k].is_punct("{") && !tokens[k].is_punct(";") {
                k += 1;
            }
            let end = if k < tokens.len() && tokens[k].is_punct("{") {
                matching(tokens, k, "{", "}").unwrap_or(tokens.len() - 1)
            } else {
                k.min(tokens.len() - 1)
            };
            for flag in &mut mask[i..=end] {
                *flag = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Index of the token matching the opener at `open_idx`, tracking nesting.
fn matching(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}
