//! Edge cases of the hand-rolled Rust lexer: the rules only ever see
//! identifiers in executable positions, so everything comment- and
//! string-shaped must vanish — while line numbers and suppression
//! markers stay exact.

use wsync_lint::lexer::{lex, test_regions};

fn ident_texts(source: &str) -> Vec<String> {
    lex(source)
        .tokens
        .into_iter()
        .filter(|t| t.ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn nested_block_comments_are_skipped_entirely() {
    let src = "a /* one /* two /* three */ still two */ back */ b";
    assert_eq!(ident_texts(src), ["a", "b"]);
}

#[test]
fn unterminated_block_comment_consumes_the_rest() {
    let src = "a /* unsafe HashMap thread_rng";
    assert_eq!(ident_texts(src), ["a"]);
}

#[test]
fn unsafe_inside_strings_is_not_a_token() {
    let src = r##"let x = "unsafe { HashMap }"; let y = r#"unsafe " still a string"#; safe"##;
    let idents = ident_texts(src);
    assert!(!idents.contains(&"unsafe".to_string()), "{idents:?}");
    assert!(!idents.contains(&"HashMap".to_string()), "{idents:?}");
    assert!(idents.contains(&"safe".to_string()));
}

#[test]
fn raw_strings_with_hashes_terminate_on_matching_depth() {
    // The `"#` inside the r##"…"## body must not end the literal.
    let src = r####"let s = r##"body with "# inside"##; tail"####;
    assert_eq!(ident_texts(src), ["let", "s", "tail"].map(String::from));
}

#[test]
fn raw_string_prefix_is_not_emitted_as_identifier() {
    let src = r####"let a = r"plain raw"; let b = br#"byte raw"#; end"####;
    let idents = ident_texts(src);
    assert!(!idents.contains(&"r".to_string()), "{idents:?}");
    assert!(!idents.contains(&"br".to_string()), "{idents:?}");
    assert!(idents.contains(&"end".to_string()));
}

#[test]
fn escaped_quotes_do_not_end_strings() {
    let src = r#"let s = "he said \"unsafe\" loudly"; done"#;
    let idents = ident_texts(src);
    assert!(!idents.contains(&"unsafe".to_string()));
    assert!(idents.contains(&"done".to_string()));
}

#[test]
fn char_literals_and_lifetimes_disambiguate() {
    let src = "fn f<'a>(x: &'a str) { let q = 'q'; let nl = '\\n'; let quote = '\\''; }";
    let idents = ident_texts(src);
    // Lifetime names are consumed, not emitted; char bodies vanish — so
    // `q` appears once (the binding), never twice (the 'q' literal).
    assert!(!idents.contains(&"a".to_string()), "{idents:?}");
    assert_eq!(idents.iter().filter(|t| *t == "q").count(), 1, "{idents:?}");
    assert!(idents.contains(&"str".to_string()));
}

#[test]
fn raw_identifiers_emit_the_inner_name() {
    let src = "let r#type = 1; let r#unsafe = 2;";
    let idents = ident_texts(src);
    assert!(idents.contains(&"type".to_string()));
    assert!(idents.contains(&"unsafe".to_string()));
}

#[test]
fn line_numbers_survive_multiline_constructs() {
    let src = "first\n/* two\nlines */\n\"str\ning\"\nlast";
    let lexed = lex(src);
    let first = lexed.tokens.iter().find(|t| t.is_ident("first")).unwrap();
    let last = lexed.tokens.iter().find(|t| t.is_ident("last")).unwrap();
    assert_eq!(first.line, 1);
    assert_eq!(last.line, 6);
}

#[test]
fn suppression_markers_parse_rules_and_reason() {
    let src = "// lint:allow(wall-clock, ambient-rng): bench-only scaffolding\nlet x = 1;";
    let lexed = lex(src);
    assert_eq!(lexed.suppressions.len(), 1);
    let s = &lexed.suppressions[0];
    assert_eq!(s.rules, ["wall-clock", "ambient-rng"]);
    assert_eq!(s.line, 1);
    assert_eq!(s.reason.as_deref(), Some("bench-only scaffolding"));
}

#[test]
fn suppression_without_reason_is_recorded_reasonless() {
    for src in [
        "// lint:allow(wall-clock)",
        "// lint:allow(wall-clock):",
        "// lint:allow(wall-clock):   ",
        "// lint:allow(wall-clock) no colon",
    ] {
        let lexed = lex(src);
        assert_eq!(lexed.suppressions.len(), 1, "{src}");
        assert_eq!(lexed.suppressions[0].reason, None, "{src}");
    }
}

#[test]
fn doc_comments_never_carry_suppressions() {
    let src = "/// lint:allow(wall-clock): prose about the marker\n\
               //! lint:allow(wall-clock): module prose\n\
               /** lint:allow(wall-clock): block prose */\n\
               // lint:allow(wall-clock): a real marker\n";
    let lexed = lex(src);
    assert_eq!(lexed.suppressions.len(), 1);
    assert_eq!(lexed.suppressions[0].line, 4);
}

#[test]
fn block_comment_markers_keep_their_exact_line() {
    let src = "/*\nline two\nlint:allow(wall-clock): inside a block\n*/";
    let lexed = lex(src);
    assert_eq!(lexed.suppressions.len(), 1);
    assert_eq!(lexed.suppressions[0].line, 3);
}

#[test]
fn cfg_test_modules_are_masked() {
    let src = "fn shipping() { a.unwrap(); }\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn t() { b.unwrap(); }\n\
               }\n\
               fn also_shipping() {}\n";
    let lexed = lex(src);
    let mask = test_regions(&lexed.tokens);
    let flagged: Vec<(&str, bool)> = lexed
        .tokens
        .iter()
        .zip(&mask)
        .filter(|(t, _)| t.ident)
        .map(|(t, &m)| (t.text.as_str(), m))
        .collect();
    let lookup = |name: &str| {
        flagged
            .iter()
            .find(|(t, _)| *t == name)
            .unwrap_or_else(|| panic!("{name} not lexed"))
            .1
    };
    assert!(!lookup("shipping"));
    assert!(lookup("tests"));
    assert!(lookup("t"));
    assert!(lookup("b"));
    assert!(!lookup("also_shipping"));
}

#[test]
fn cfg_test_on_braceless_item_masks_through_the_semicolon() {
    let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
    let lexed = lex(src);
    let mask = test_regions(&lexed.tokens);
    let hashmap = lexed
        .tokens
        .iter()
        .position(|t| t.is_ident("HashMap"))
        .unwrap();
    let live = lexed
        .tokens
        .iter()
        .position(|t| t.is_ident("live"))
        .unwrap();
    assert!(mask[hashmap]);
    assert!(!mask[live]);
}
