//! The gate the CI `lint` job enforces, as a test: the workspace itself
//! must be clean under `--deny-all`, and every suppression in the tree
//! must carry a reason.

use std::path::Path;

use wsync_lint::lint_workspace;
use wsync_lint::rules::RuleRegistry;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

#[test]
fn workspace_is_clean_under_deny_all() {
    let report = lint_workspace(workspace_root(), &RuleRegistry::with_defaults())
        .expect("workspace walk failed");
    assert!(
        report.findings.is_empty(),
        "unsuppressed findings:\n{}",
        report.render_human(true)
    );
    assert_eq!(report.exit_code(true), 0);
    assert!(
        report.files_scanned > 50,
        "suspiciously small walk: {} files — wrong root?",
        report.files_scanned
    );
    assert!(
        report.suppressed > 0,
        "the tree carries reasoned lint:allow markers; zero suppressions means they stopped matching"
    );
}
