//! The gate the CI `lint` job enforces, as a test: the workspace itself
//! must be clean under `--deny-all`, and every suppression in the tree
//! must carry a reason.

use std::path::Path;

use wsync_lint::lint_workspace;
use wsync_lint::rules::RuleRegistry;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

/// The serving/fabric layers' suppression audit: the only rule they are
/// allowed to suppress is `wall-clock`, and those markers must live in
/// the two designated boundary modules (lease staleness needs file
/// mtimes; the throughput metric needs request timing). Anywhere else, a
/// wall-clock read could leak into simulated state — so a marker drifting
/// out of these files fails this test even while the suppression itself
/// would keep `--deny-all` green.
#[test]
fn serve_and_fabric_confine_wall_clock_to_boundary_modules() {
    let boundary_files = [
        "crates/serve/src/clock.rs",
        "crates/core/src/fabric.rs", // its private `clock` boundary module
    ];
    let audited_roots = ["crates/serve/src", "crates/core/src/fabric.rs"];
    let mut markers = 0usize;
    for root in audited_roots {
        let root = workspace_root().join(root);
        let files: Vec<std::path::PathBuf> = if root.is_file() {
            vec![root]
        } else {
            std::fs::read_dir(&root)
                .expect("audited directory exists")
                .map(|e| e.unwrap().path())
                .filter(|p| p.extension().is_some_and(|x| x == "rs"))
                .collect()
        };
        for path in files {
            let rel = path
                .strip_prefix(workspace_root())
                .unwrap()
                .to_string_lossy()
                .replace('\\', "/");
            let source = std::fs::read_to_string(&path).unwrap();
            for (i, line) in source.lines().enumerate() {
                let Some(rest) = line.split("lint:allow(").nth(1) else {
                    continue;
                };
                markers += 1;
                let rule = rest.split(')').next().unwrap_or("");
                assert_eq!(
                    rule,
                    "wall-clock",
                    "{rel}:{}: the serve/fabric layers may only suppress wall-clock, found {rule}",
                    i + 1
                );
                assert!(
                    boundary_files.contains(&rel.as_str()),
                    "{rel}:{}: wall-clock suppression outside the designated boundary modules",
                    i + 1
                );
            }
        }
    }
    assert!(
        markers >= 2,
        "the boundary modules carry reasoned wall-clock markers; found {markers} — \
         did the suppressions stop matching?"
    );
}

#[test]
fn workspace_is_clean_under_deny_all() {
    let report = lint_workspace(workspace_root(), &RuleRegistry::with_defaults())
        .expect("workspace walk failed");
    assert!(
        report.findings.is_empty(),
        "unsuppressed findings:\n{}",
        report.render_human(true)
    );
    assert_eq!(report.exit_code(true), 0);
    assert!(
        report.files_scanned > 50,
        "suspiciously small walk: {} files — wrong root?",
        report.files_scanned
    );
    assert!(
        report.suppressed > 0,
        "the tree carries reasoned lint:allow markers; zero suppressions means they stopped matching"
    );
}
