//! Per-rule fixtures driven through `lint_source`: for every rule a
//! positive hit, a negative (out-of-scope or clean) case, a reasoned
//! suppression, and a reasonless marker that must itself be reported.
//! Fixtures are inline strings on purpose — files on disk would be
//! scanned by the workspace-wide pass and have to be clean themselves.

use wsync_lint::lint_source;
use wsync_lint::rules::{FileScope, RuleRegistry};

fn scope(rel_path: &str, crate_name: &str) -> FileScope {
    FileScope {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        is_compat: rel_path.starts_with("crates/compat/"),
        is_bench: rel_path.starts_with("crates/bench/") || rel_path.contains("/benches/"),
        is_crate_root: rel_path.ends_with("src/lib.rs"),
    }
}

fn rules_fired(scope: &FileScope, src: &str) -> Vec<String> {
    lint_source(scope, src, &RuleRegistry::with_defaults())
        .findings
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

// ---------------------------------------------------------------- nondeterministic-iteration

#[test]
fn nondeterministic_iteration_positive() {
    let sc = scope("crates/core/src/thing.rs", "wsync-core");
    let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
    let fired = rules_fired(&sc, src);
    assert_eq!(
        fired
            .iter()
            .filter(|r| *r == "nondeterministic-iteration")
            .count(),
        3,
        "{fired:?}"
    );
}

#[test]
fn nondeterministic_iteration_covers_umbrella_tests_dir() {
    let sc = scope("tests/engine_golden.rs", "wireless-sync");
    let src = "use std::collections::HashSet;";
    assert!(rules_fired(&sc, src).contains(&"nondeterministic-iteration".to_string()));
}

#[test]
fn nondeterministic_iteration_negative_out_of_scope_crate() {
    // wsync-cli does not feed digests; HashMap there is fine.
    let sc = scope("crates/cli/src/main.rs", "wsync-cli");
    let src = "use std::collections::HashMap;";
    assert!(!rules_fired(&sc, src).contains(&"nondeterministic-iteration".to_string()));
}

#[test]
fn nondeterministic_iteration_negative_btreemap_is_clean() {
    let sc = scope("crates/core/src/thing.rs", "wsync-core");
    let src =
        "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u8, u8> = BTreeMap::new(); }";
    assert!(rules_fired(&sc, src).is_empty());
}

#[test]
fn nondeterministic_iteration_suppressed_with_reason() {
    let sc = scope("crates/core/src/thing.rs", "wsync-core");
    let src =
        "// lint:allow(nondeterministic-iteration): drained by keyed remove, order unobserved\n\
               use std::collections::HashMap;";
    let report = lint_source(&sc, src, &RuleRegistry::with_defaults());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn nondeterministic_iteration_reasonless_marker_suppresses_nothing() {
    let sc = scope("crates/core/src/thing.rs", "wsync-core");
    let src = "// lint:allow(nondeterministic-iteration)\nuse std::collections::HashMap;";
    let report = lint_source(&sc, src, &RuleRegistry::with_defaults());
    let fired: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    assert!(fired.contains(&"nondeterministic-iteration"), "{fired:?}");
    assert!(fired.contains(&"unexplained-suppression"), "{fired:?}");
    assert_eq!(report.suppressed, 0);
}

// ---------------------------------------------------------------- ambient-rng

#[test]
fn ambient_rng_positive() {
    let sc = scope("crates/radio/src/engine.rs", "wsync-radio");
    let src = "fn f() { let mut rng = rand::thread_rng(); }";
    assert!(rules_fired(&sc, src).contains(&"ambient-rng".to_string()));
}

#[test]
fn ambient_rng_negative_inside_compat() {
    let sc = scope("crates/compat/rand/src/lib.rs", "rand");
    let src = "pub fn thread_rng() -> ThreadRng { ThreadRng }";
    assert!(!rules_fired(&sc, src).contains(&"ambient-rng".to_string()));
}

#[test]
fn ambient_rng_in_string_is_not_a_hit() {
    let sc = scope("crates/radio/src/engine.rs", "wsync-radio");
    let src = r#"fn f() { let s = "thread_rng is banned"; }"#;
    assert!(!rules_fired(&sc, src).contains(&"ambient-rng".to_string()));
}

#[test]
fn ambient_rng_suppressed_with_reason() {
    let sc = scope("crates/radio/src/engine.rs", "wsync-radio");
    let src = "// lint:allow(ambient-rng): doc example naming the banned symbol\n\
               fn f() { let _ = stringify!(thread_rng); }";
    let report = lint_source(&sc, src, &RuleRegistry::with_defaults());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn ambient_rng_reasonless_marker_is_a_finding() {
    let sc = scope("crates/radio/src/engine.rs", "wsync-radio");
    let src = "// lint:allow(ambient-rng):\nfn f() { let mut rng = rand::thread_rng(); }";
    let fired = rules_fired(&sc, src);
    assert!(fired.contains(&"ambient-rng".to_string()), "{fired:?}");
    assert!(
        fired.contains(&"unexplained-suppression".to_string()),
        "{fired:?}"
    );
}

// ---------------------------------------------------------------- wall-clock

#[test]
fn wall_clock_positive() {
    let sc = scope("crates/core/src/sim.rs", "wsync-core");
    let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
    let fired = rules_fired(&sc, src);
    assert_eq!(fired.iter().filter(|r| *r == "wall-clock").count(), 2);
}

#[test]
fn wall_clock_negative_in_bench_crate() {
    let sc = scope("crates/bench/benches/engine.rs", "wsync-bench");
    let src = "use std::time::Instant;";
    assert!(rules_fired(&sc, src).is_empty());
}

#[test]
fn wall_clock_negative_in_compat() {
    let sc = scope("crates/compat/criterion/src/lib.rs", "criterion");
    let src = "use std::time::{Instant, SystemTime};";
    assert!(rules_fired(&sc, src).is_empty());
}

#[test]
fn wall_clock_suppressed_with_reason() {
    let sc = scope("crates/core/src/sim.rs", "wsync-core");
    let src = "// lint:allow(wall-clock): progress display only, never feeds results\n\
               use std::time::Instant;";
    let report = lint_source(&sc, src, &RuleRegistry::with_defaults());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn wall_clock_reasonless_marker_is_a_finding() {
    let sc = scope("crates/core/src/sim.rs", "wsync-core");
    let src = "use std::time::SystemTime; // lint:allow(wall-clock)";
    let fired = rules_fired(&sc, src);
    assert!(fired.contains(&"wall-clock".to_string()), "{fired:?}");
    assert!(
        fired.contains(&"unexplained-suppression".to_string()),
        "{fired:?}"
    );
}

// ---------------------------------------------------------------- unsafe-code

#[test]
fn unsafe_code_positive_unsafe_block() {
    let sc = scope("crates/core/src/thing.rs", "wsync-core");
    let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }";
    assert!(rules_fired(&sc, src).contains(&"unsafe-code".to_string()));
}

#[test]
fn unsafe_code_positive_missing_forbid_at_crate_root() {
    let sc = scope("crates/core/src/lib.rs", "wsync-core");
    let src = "//! A crate root without the forbid attribute.\npub fn f() {}";
    let report = lint_source(&sc, src, &RuleRegistry::with_defaults());
    let hit = report
        .findings
        .iter()
        .find(|f| f.rule == "unsafe-code")
        .expect("missing-forbid finding");
    assert_eq!(hit.line, 1);
    assert!(
        hit.message.contains("forbid(unsafe_code)"),
        "{}",
        hit.message
    );
}

#[test]
fn unsafe_code_negative_forbidding_root_is_clean() {
    let sc = scope("crates/core/src/lib.rs", "wsync-core");
    let src = "#![forbid(unsafe_code)]\npub fn f() {}";
    assert!(rules_fired(&sc, src).is_empty());
}

#[test]
fn unsafe_code_negative_unsafe_in_string_or_comment() {
    let sc = scope("crates/core/src/thing.rs", "wsync-core");
    let src = "// unsafe is mentioned here\nfn f() { let s = \"unsafe\"; }";
    assert!(rules_fired(&sc, src).is_empty());
}

#[test]
fn unsafe_code_negative_compat_is_exempt() {
    let sc = scope("crates/compat/rand/src/lib.rs", "rand");
    let src = "fn f() { unsafe { core::mem::transmute::<u8, i8>(0) }; }";
    assert!(rules_fired(&sc, src).is_empty());
}

#[test]
fn unsafe_code_suppressed_with_reason() {
    let sc = scope("crates/core/src/thing.rs", "wsync-core");
    let src = "// lint:allow(unsafe-code): doc prose about the policy, not an unsafe block\n\
               fn unsafe_audit_notes() {}";
    // `unsafe_audit_notes` is not the token `unsafe`; nothing fires and the
    // unused (but reasoned) marker is not itself an error.
    let report = lint_source(&sc, src, &RuleRegistry::with_defaults());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn unsafe_code_reasonless_marker_is_a_finding() {
    let sc = scope("crates/core/src/thing.rs", "wsync-core");
    let src = "// lint:allow(unsafe-code)\nfn f() { unsafe {} }";
    let fired = rules_fired(&sc, src);
    assert!(fired.contains(&"unsafe-code".to_string()), "{fired:?}");
    assert!(
        fired.contains(&"unexplained-suppression".to_string()),
        "{fired:?}"
    );
}

// ---------------------------------------------------------------- panicky-library

#[test]
fn panicky_library_positive_and_advisory_by_default() {
    let sc = scope("crates/core/src/batch.rs", "wsync-core");
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
    let report = lint_source(&sc, src, &RuleRegistry::with_defaults());
    let hit = report
        .findings
        .iter()
        .find(|f| f.rule == "panicky-library")
        .expect("panicky-library should fire");
    assert!(!hit.deny, "advisory by default");
    assert_eq!(report.exit_code(false), 0, "warns do not fail the build");
    assert_eq!(report.exit_code(true), 1, "--deny-all promotes them");
}

#[test]
fn panicky_library_negative_outside_hot_paths() {
    let sc = scope("crates/core/src/report.rs", "wsync-core");
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
    assert!(!rules_fired(&sc, src).contains(&"panicky-library".to_string()));
}

#[test]
fn panicky_library_negative_in_cfg_test() {
    let sc = scope("crates/core/src/store.rs", "wsync-core");
    let src = "#[cfg(test)]\nmod tests {\n    fn t(x: Option<u8>) -> u8 { x.unwrap() }\n}";
    assert!(!rules_fired(&sc, src).contains(&"panicky-library".to_string()));
}

#[test]
fn panicky_library_negative_bare_expect_identifier() {
    // `expect` not preceded by `.` (e.g. a local named expect) is not a call.
    let sc = scope("crates/core/src/store.rs", "wsync-core");
    let src = "fn f() { let expect = 1; let _ = expect; }";
    assert!(!rules_fired(&sc, src).contains(&"panicky-library".to_string()));
}

#[test]
fn panicky_library_suppressed_with_reason() {
    let sc = scope("crates/core/src/store.rs", "wsync-core");
    let src = "fn f(x: Option<u8>) -> u8 {\n\
               x\n\
               // lint:allow(panicky-library): checked non-None two lines up\n\
               .unwrap()\n\
               }";
    let report = lint_source(&sc, src, &RuleRegistry::with_defaults());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn panicky_library_reasonless_marker_is_a_finding() {
    let sc = scope("crates/core/src/store.rs", "wsync-core");
    let src = "// lint:allow(panicky-library)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }";
    let fired = rules_fired(&sc, src);
    assert!(fired.contains(&"panicky-library".to_string()), "{fired:?}");
    assert!(
        fired.contains(&"unexplained-suppression".to_string()),
        "{fired:?}"
    );
}

// ---------------------------------------------------------------- suppression scoping + meta

#[test]
fn suppression_does_not_reach_two_lines_down() {
    let sc = scope("crates/core/src/thing.rs", "wsync-core");
    let src = "// lint:allow(nondeterministic-iteration): close but not close enough\n\
               \n\
               use std::collections::HashMap;";
    let fired = rules_fired(&sc, src);
    assert!(
        fired.contains(&"nondeterministic-iteration".to_string()),
        "{fired:?}"
    );
}

#[test]
fn suppression_only_covers_the_named_rule() {
    let sc = scope("crates/core/src/lib.rs", "wsync-core");
    let src = "#![forbid(unsafe_code)]\n\
               // lint:allow(wall-clock): wrong rule named on purpose\n\
               use std::collections::HashMap;";
    let fired = rules_fired(&sc, src);
    assert!(
        fired.contains(&"nondeterministic-iteration".to_string()),
        "{fired:?}"
    );
}

#[test]
fn unknown_rule_in_marker_is_denied() {
    let sc = scope("crates/cli/src/main.rs", "wsync-cli");
    let src = "// lint:allow(no-such-rule): the rule name has a typo\nfn f() {}";
    let report = lint_source(&sc, src, &RuleRegistry::with_defaults());
    let hit = report
        .findings
        .iter()
        .find(|f| f.rule == "unknown-rule")
        .expect("unknown-rule should fire");
    assert!(hit.deny);
    assert!(hit.message.contains("no-such-rule"), "{}", hit.message);
}

#[test]
fn findings_sort_by_path_line_rule() {
    let sc = scope("crates/core/src/thing.rs", "wsync-core");
    let src = "use std::time::Instant;\nuse std::collections::HashMap;\nfn f() { unsafe {} }";
    let report = lint_source(&sc, src, &RuleRegistry::with_defaults());
    let lines: Vec<u32> = report.findings.iter().map(|f| f.line).collect();
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted);
}

// ---------------------------------------------------------------- registry semantics

#[test]
fn registry_latest_registration_wins() {
    use wsync_lint::rules::Rule;
    let mut reg = RuleRegistry::with_defaults();
    let before = reg.rules().len();
    reg.register(Rule::new(
        "wall-clock",
        "replacement that never fires",
        false,
        |_, _, _| {},
    ));
    assert_eq!(reg.rules().len(), before, "replacement, not addition");
    let sc = scope("crates/core/src/sim.rs", "wsync-core");
    let report = lint_source(&sc, "use std::time::Instant;", &reg);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn registry_knows_meta_finding_names() {
    let reg = RuleRegistry::with_defaults();
    assert!(reg.is_known_name("unexplained-suppression"));
    assert!(reg.is_known_name("unknown-rule"));
    assert!(!reg.is_known_name("made-up"));
}

// ---------------------------------------------------------------- JSON golden

#[test]
fn json_output_is_byte_stable() {
    let sc = scope("crates/core/src/thing.rs", "wsync-core");
    let src = "use std::collections::HashMap;";
    let report = lint_source(&sc, src, &RuleRegistry::with_defaults());
    let expected = r#"{
  "files_scanned": 1,
  "findings": [
    {
      "rule": "nondeterministic-iteration",
      "path": "crates/core/src/thing.rs",
      "line": 1,
      "severity": "deny",
      "message": "`HashMap` has randomized iteration order; in a digest-feeding crate use `BTreeMap`, sort before iterating, or justify with `// lint:allow(nondeterministic-iteration): <reason>`"
    }
  ],
  "denied": 1,
  "suppressed": 0
}"#;
    assert_eq!(report.render_json(false), expected);
}

#[test]
fn json_output_clean_file() {
    let sc = scope("crates/cli/src/main.rs", "wsync-cli");
    let report = lint_source(&sc, "fn main() {}", &RuleRegistry::with_defaults());
    let expected = r#"{
  "files_scanned": 1,
  "findings": [],
  "denied": 0,
  "suppressed": 0
}"#;
    assert_eq!(report.render_json(true), expected);
}

#[test]
fn human_output_format() {
    let sc = scope("crates/core/src/thing.rs", "wsync-core");
    let report = lint_source(
        &sc,
        "use std::collections::HashSet;",
        &RuleRegistry::with_defaults(),
    );
    let human = report.render_human(false);
    assert!(
        human.starts_with("crates/core/src/thing.rs:1: [nondeterministic-iteration] (deny) "),
        "{human}"
    );
    assert!(
        human.ends_with(
            "1 files scanned: 1 finding(s) (1 denied), 0 suppressed by reasoned markers\n"
        ),
        "{human}"
    );
}
