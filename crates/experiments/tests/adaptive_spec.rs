//! The adaptive-sweep headline claim, pinned as a test: on the committed
//! example spec (`examples/specs/adaptive_sweep.json`), adaptive stopping
//! runs **at most half** the fixed run's trials, and every per-point mean
//! lands **inside the fixed run's 95% confidence interval** — the tables
//! say the same thing for a fraction of the compute. CI runs the same
//! spec through the `run_experiments --spec` binary and checks the
//! printed savings note.

use wsync_core::json;
use wsync_core::spec::SweepSpec;
use wsync_core::sweep::SweepRunner;
use wsync_stats::ConfidenceInterval;

fn example_spec() -> SweepSpec {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/specs/adaptive_sweep.json"
    );
    let text = std::fs::read_to_string(path).expect("committed example spec");
    SweepSpec::from_value(&json::parse(&text).expect("spec is JSON")).expect("spec is valid")
}

#[test]
fn adaptive_run_halves_trials_and_stays_inside_the_fixed_ci() {
    let adaptive_spec = example_spec();
    let rule = adaptive_spec.stop.clone().expect("example declares a rule");
    let mut fixed_spec = example_spec();
    fixed_spec.stop = None;

    let fixed = SweepRunner::new().run(&fixed_spec).expect("fixed run");
    let adaptive = SweepRunner::new()
        .run(&adaptive_spec)
        .expect("adaptive run");
    assert_eq!(fixed.points.len(), adaptive.points.len());

    // Headline: at most half the trials (the example stops far earlier).
    assert!(
        2 * adaptive.total_trials() <= fixed.total_trials(),
        "adaptive used {}/{} trials — more than half the fixed run",
        adaptive.total_trials(),
        fixed.total_trials()
    );
    assert_eq!(
        adaptive.stopped_early_points() as usize,
        adaptive.points.len()
    );

    // Accuracy: the rule promises each point's estimate is within the
    // declared half-width of the truth (at the declared confidence), so
    // the adaptive and full-budget estimates must agree to within that
    // half-width — that is the precision the adaptive table advertises.
    // The achieved intervals must also be defined and overlap once the
    // adaptive one is widened to the declared target: the two runs are
    // estimating the same quantity.
    for (fixed_point, adaptive_point) in fixed.points.iter().zip(&adaptive.points) {
        let fixed_ci = rule
            .metric
            .ci(&fixed_point.stats, rule.ci_level)
            .expect("fixed run has a defined CI");
        let adaptive_ci = rule
            .metric
            .ci(&adaptive_point.stats, rule.ci_level)
            .expect("adaptive run has a defined CI");
        let fixed_mean = midpoint(&fixed_ci);
        let adaptive_mean = midpoint(&adaptive_ci);
        let target = rule.target_half_width(fixed_mean);
        assert!(
            (adaptive_mean - fixed_mean).abs() <= target,
            "{}: adaptive estimate {adaptive_mean} vs full-budget {fixed_mean} — \
             differ by more than the declared half-width {target}",
            fixed_point.label
        );
        assert!(
            fixed_ci.lower <= adaptive_mean + target && adaptive_mean - target <= fixed_ci.upper,
            "{}: fixed CI [{}, {}] disjoint from the adaptive declared interval {} ± {}",
            fixed_point.label,
            fixed_ci.lower,
            fixed_ci.upper,
            adaptive_mean,
            target
        );
    }
}

fn midpoint(ci: &ConfidenceInterval) -> f64 {
    (ci.lower + ci.upper) / 2.0
}
