//! `run_experiments --workers K`, with real OS processes: the parent
//! forks K `--fabric-worker` children over one store directory, and the
//! result — both the printed aggregate tables and the sorted shard
//! bytes — is identical to a 1-process `--out` run.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

const SPEC_JSON: &str = r#"{
    "base": {
        "protocol": "trapdoor",
        "adversary": "random",
        "num_nodes": 8,
        "num_frequencies": 8,
        "disruption_bound": 2
    },
    "seeds": {"start": 0, "end": 6},
    "grid": [{"field": "num_nodes", "values": [8, 12]}]
}"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wsync-fabric-proc-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sorted_shards(dir: &Path) -> Vec<(String, Vec<String>)> {
    let mut shards = Vec::new();
    for entry in fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        let mut lines: Vec<String> = fs::read_to_string(entry.path())
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        lines.sort();
        shards.push((name, lines));
    }
    shards.sort();
    shards
}

/// Runs the real binary; returns stdout. Panics on nonzero exit.
fn run(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_run_experiments"))
        .args(args)
        .output()
        .expect("spawn run_experiments");
    assert!(
        output.status.success(),
        "run_experiments {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 stdout")
}

#[test]
fn workers_flag_matches_a_single_process_run_bit_for_bit() {
    let spec_path = temp_dir("spec").with_extension("json");
    fs::write(&spec_path, SPEC_JSON).unwrap();
    let spec = spec_path.to_str().unwrap();

    let solo_dir = temp_dir("solo");
    let fabric_dir = temp_dir("fabric");

    let solo_stdout = run(&["--spec", spec, "smoke", "--out", solo_dir.to_str().unwrap()]);
    let fabric_stdout = run(&[
        "--spec",
        spec,
        "smoke",
        "--out",
        fabric_dir.to_str().unwrap(),
        "--workers",
        "3",
    ]);

    assert_eq!(
        fabric_stdout, solo_stdout,
        "--workers 3 must print the identical aggregate tables"
    );
    assert_eq!(
        sorted_shards(&fabric_dir),
        sorted_shards(&solo_dir),
        "--workers 3 must leave byte-identical sorted shard contents"
    );
    // Every shard file is a .jsonl — the parent cleaned up all leases.
    for (name, _) in sorted_shards(&fabric_dir) {
        assert!(name.ends_with(".jsonl"), "stray fabric file: {name}");
    }

    // A rerun with --resume over the fabric-filled store executes nothing
    // new and prints the same tables again.
    let resumed_stdout = run(&[
        "--spec",
        spec,
        "smoke",
        "--out",
        fabric_dir.to_str().unwrap(),
        "--resume",
    ]);
    assert_eq!(resumed_stdout, solo_stdout);

    let _ = fs::remove_file(&spec_path);
    let _ = fs::remove_dir_all(&solo_dir);
    let _ = fs::remove_dir_all(&fabric_dir);
}

#[test]
fn a_directly_launched_fabric_worker_drains_the_sweep() {
    let spec_path = temp_dir("worker-spec").with_extension("json");
    fs::write(&spec_path, SPEC_JSON).unwrap();
    let spec = spec_path.to_str().unwrap();
    let dir = temp_dir("worker");
    fs::create_dir_all(&dir).unwrap();

    // The hidden child mode is also a standalone entry point: one worker
    // launched by hand completes the whole sweep.
    run(&[
        "--fabric-worker",
        "--spec",
        spec,
        "smoke",
        "--out",
        dir.to_str().unwrap(),
        "--holder",
        "manual-worker",
    ]);
    let trials: usize = sorted_shards(&dir)
        .iter()
        .filter(|(name, _)| name.ends_with(".jsonl"))
        .map(|(_, lines)| lines.len())
        .sum();
    assert_eq!(trials, 2 * 6, "every trial of the sweep is stored");

    let _ = fs::remove_file(&spec_path);
    let _ = fs::remove_dir_all(&dir);
}
