//! A1 / A2 — design ablations called out in DESIGN.md.
//!
//! * A1 sweeps the Trapdoor epoch-length constant: shorter epochs terminate
//!   faster but risk electing more than one leader (the w.h.p. guarantees
//!   need long enough epochs).
//! * A2 ablates the `F′ = min(F, 2t)` restriction: spreading over the whole
//!   band when `F ≫ 2t` slows the competition down (the reason the paper's
//!   bound has `F·t/(F−t)` rather than `F²/(F−t)`), while restricting to a
//!   single frequency destroys agreement under jamming.
//!
//! Both ablations are expressed as [`SweepSpec`] parameter grids over the
//! `trapdoor` factory's declarative parameters — the same knobs a JSON spec
//! file can sweep via `run_experiments --spec`.

use wsync_core::spec::{ScenarioSpec, SweepSpec};
use wsync_core::sweep::SweepRunner;
use wsync_core::trapdoor::TrapdoorConfig;
use wsync_stats::Table;

use crate::output::{fmt, Effort, ExperimentReport};

/// A1 — epoch-length constant sweep.
pub fn a1_epoch_constant(effort: Effort) -> ExperimentReport {
    let n_nodes = 24usize;
    let f = 16u32;
    let t = 6u32;
    let seeds = effort.seeds();
    let constants: Vec<f64> = match effort {
        Effort::Smoke => vec![0.5, 2.0],
        Effort::Quick => vec![0.5, 1.0, 2.0, 4.0],
        Effort::Full => vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0],
    };
    let mut report = ExperimentReport::new(
        "A1",
        "Ablation: Trapdoor epoch-length constant (termination time vs single-leader rate)",
    );
    let mut table = Table::new(
        format!("Epoch-constant ablation (n={n_nodes}, F={f}, t={t}, random adversary)"),
        &[
            "epoch constant c",
            "mean completion",
            "single-leader rate",
            "clean rate",
        ],
    );
    // The paired (epoch_constant, final_epoch_constant) grid is not an
    // axis cross product, so it runs as an explicit point list.
    let points = constants
        .iter()
        .map(|&c| {
            let spec = ScenarioSpec::new("trapdoor", n_nodes, f, t)
                .with_adversary("random")
                .with_protocol_param("epoch_constant", c)
                .with_protocol_param("final_epoch_constant", c);
            (format!("c={c}"), spec)
        })
        .collect();
    let sweep = SweepRunner::new()
        .run_points(points, 0..seeds)
        .expect("valid specs");
    for (&c, point) in constants.iter().zip(&sweep.points) {
        let stats = &point.stats;
        table.push_row(vec![
            fmt(c),
            fmt(stats.completion_rounds.mean),
            format!("{:.0}%", stats.single_leader_rate() * 100.0),
            format!("{:.0}%", stats.clean_rate() * 100.0),
        ]);
    }
    report.push_table(table);
    report.note("larger constants slow termination roughly linearly but push the single-leader rate to 100%; the defaults (c₁ = 2 for regular epochs, c₂ = 6 for the final epoch) are the smallest values that kept the multi-leader rate at the 1/N level in the full run");
    report
}

/// A2 — ablation of the `F′ = min(F, 2t)` frequency restriction, expressed
/// as a declarative [`SweepSpec`] over the `frequency_limit` parameter.
pub fn a2_frequency_limit(effort: Effort) -> ExperimentReport {
    let n_nodes = 24usize;
    let f = 32u32;
    let t = 4u32;
    let seeds = effort.seeds();
    let mut report = ExperimentReport::new(
        "A2",
        "Ablation: the F' = min(F, 2t) restriction (why the bound is F·t/(F−t) and not F²/(F−t))",
    );
    let mut table = Table::new(
        format!("Frequency-limit ablation (n={n_nodes}, F={f}, t={t}, random adversary)"),
        &[
            "frequency limit",
            "mean completion",
            "single-leader rate",
            "clean rate",
        ],
    );
    let base = ScenarioSpec::new("trapdoor", n_nodes, f, t).with_adversary("random");
    let paper_limit = TrapdoorConfig::new(base.scenario().upper_bound(), f, t).f_prime();
    let mut limits: Vec<(String, u32)> = vec![
        (format!("paper F' = min(F,2t) = {paper_limit}"), paper_limit),
        (format!("full band F = {f}"), f),
        ("single frequency".to_string(), 1),
    ];
    if effort == Effort::Smoke {
        limits.truncate(2);
    }
    let sweep = SweepSpec::new(base, 0..seeds).with_axis(
        "protocol.frequency_limit",
        limits.iter().map(|&(_, limit)| limit.into()).collect(),
    );
    let result = SweepRunner::new().run(&sweep).expect("valid sweep");
    for ((label, _), point) in limits.iter().zip(&result.points) {
        let stats = &point.stats;
        table.push_row(vec![
            label.clone(),
            fmt(stats.completion_rounds.mean),
            format!("{:.0}%", stats.single_leader_rate() * 100.0),
            format!("{:.0}%", stats.clean_rate() * 100.0),
        ]);
    }
    report.push_table(table);
    report.note("restricting to F' = min(F, 2t) terminates faster than using the whole band when F ≫ 2t because the final epoch needs Θ(F'²/(F'−t)·logN) rounds; a single frequency is fast when it works but is trivially starved or split-brained once the adversary targets it");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_smoke_larger_constant_is_slower() {
        let report = a1_epoch_constant(Effort::Smoke);
        let rows = report.tables[0].rows();
        let fast: f64 = rows[0][1].parse().unwrap();
        let slow: f64 = rows[rows.len() - 1][1].parse().unwrap();
        assert!(
            slow > fast,
            "longer epochs must take longer ({slow} vs {fast})"
        );
    }

    #[test]
    fn a2_smoke_has_expected_rows() {
        let report = a2_frequency_limit(Effort::Smoke);
        assert_eq!(report.tables[0].len(), 2);
    }
}
