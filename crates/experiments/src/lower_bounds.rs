//! LB1 / LB2 / LB3 — the lower bounds of Section 5.
//!
//! * LB1 validates Lemma 2 (balls-in-bins no-singleton probability ≥ `2^{-s}`)
//!   and the Claim 3 good-probability structure numerically.
//! * LB2 plays the Theorem 4 two-node rendezvous game against the
//!   pq-product adversary and compares the measured meeting times with the
//!   `F·t/(F−t)·log(1/ε)` expression.
//! * LB3 tabulates the gap between the combined lower bound (Theorem 5) and
//!   the Trapdoor upper bound (Theorem 10).

use wsync_analysis::balls_in_bins::{no_singleton_probability_exact, BallsInBins};
use wsync_analysis::formulas::Bounds;
use wsync_analysis::good_probability::Claim3Ladder;
use wsync_analysis::two_node::{RendezvousGame, RendezvousStrategy};
use wsync_core::batch::BatchRunner;
use wsync_stats::{fit_through_origin, Table};

use crate::output::{fmt, Effort, ExperimentReport};

/// Parallel drop-in for [`RendezvousGame::mean_rounds`]: plays the trials
/// across cores (each trial is a pure function of `seed + i`) and applies
/// the identical mean-over-finishers fold, so the result is bit-identical
/// to the serial method.
fn mean_rounds_sharded(
    runner: &BatchRunner,
    game: &RendezvousGame,
    trials: usize,
    max_rounds: u64,
    seed: u64,
) -> f64 {
    let results = runner.map(0..trials as u64, |i| {
        game.simulate(max_rounds, seed.wrapping_add(i))
    });
    let met = results.iter().flatten().count();
    let total: u64 = results.iter().flatten().sum();
    if met == 0 {
        f64::INFINITY
    } else {
        total as f64 / met as f64
    }
}

/// LB1 — Lemma 2 and Claim 3.
pub fn lb1_balls_in_bins(effort: Effort) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "LB1",
        "Lemma 2: P[no good frequency gets exactly one broadcaster] ≥ 2^{-s}; Claim 3: no probability is good for two ladder populations",
    );
    let mut table = Table::new(
        "Lemma 2: exact no-singleton probability vs the 2^{-s} bound",
        &[
            "s (good bins)",
            "balls m",
            "good mass",
            "exact P",
            "2^{-s}",
            "P / bound",
        ],
    );
    let ss: Vec<usize> = match effort {
        Effort::Smoke => vec![1, 3],
        Effort::Quick => vec![1, 2, 3, 4, 6],
        Effort::Full => vec![1, 2, 3, 4, 6, 8, 10],
    };
    let ms: Vec<usize> = match effort {
        Effort::Smoke => vec![4, 64],
        _ => vec![4, 16, 64, 256, 1024],
    };
    let mut min_ratio = f64::INFINITY;
    for &s in &ss {
        for &m in &ms {
            for &mass in &[0.25, 0.5] {
                let instance = BallsInBins::uniform_good_bins(m, s, mass);
                let p = no_singleton_probability_exact(&instance);
                let bound = instance.lemma2_lower_bound();
                let ratio = p / bound;
                min_ratio = min_ratio.min(ratio);
                table.push_row(vec![
                    s.to_string(),
                    m.to_string(),
                    fmt(mass),
                    fmt(p),
                    fmt(bound),
                    fmt(ratio),
                ]);
            }
        }
    }
    report.push_table(table);
    report.note(format!(
        "minimum P/bound ratio over the sweep: {:.3} (Lemma 2 requires ≥ 1)",
        min_ratio
    ));

    // Claim 3: sweep probabilities and count good populations.
    let n_bound = 1u64 << 40;
    let ladder = Claim3Ladder::for_upper_bound(n_bound);
    let mut claim3 = Table::new(
        format!(
            "Claim 3 check (N = 2^40, ladder populations: {:?})",
            ladder.exponents
        ),
        &["broadcast prob. p", "# ladder populations where p is good"],
    );
    let mut worst = 0usize;
    let mut p = 0.5f64;
    let steps = match effort {
        Effort::Smoke => 12,
        Effort::Quick => 40,
        Effort::Full => 120,
    };
    for _ in 0..steps {
        let good = ladder.count_good_populations(p, n_bound);
        worst = worst.max(good);
        claim3.push_row(vec![fmt(p), good.to_string()]);
        p *= 0.55;
    }
    report.push_table(claim3);
    report.note(format!(
        "maximum number of ladder populations any probability is good for: {worst} (Claim 3 requires ≤ 1)"
    ));
    report
}

/// LB2 — the Theorem 4 two-node rendezvous game.
pub fn lb2_two_node(effort: Effort) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "LB2",
        "Theorem 4: two nodes need Ω(F·t/(F−t)·log(1/ε)) rounds against the pq-product adversary",
    );
    let trials = match effort {
        Effort::Smoke => 200,
        Effort::Quick => 2_000,
        Effort::Full => 20_000,
    };
    let eps = 0.01;
    let settings: Vec<(u32, u32)> = match effort {
        Effort::Smoke => vec![(8, 2), (16, 12)],
        Effort::Quick => vec![
            (8, 2),
            (8, 6),
            (16, 4),
            (16, 8),
            (16, 12),
            (32, 16),
            (32, 28),
        ],
        Effort::Full => vec![
            (8, 2),
            (8, 4),
            (8, 6),
            (16, 4),
            (16, 8),
            (16, 12),
            (16, 15),
            (32, 8),
            (32, 16),
            (32, 28),
            (64, 32),
            (64, 56),
        ],
    };
    let mut table = Table::new(
        "Two-node rendezvous under the product adversary (uniform strategy, broadcast prob. 1/2)",
        &[
            "F",
            "t",
            "mean rounds (simulated)",
            "expected rounds (closed form)",
            "Ft/(F−t)·log(1/ε)",
            "measured / bound",
        ],
    );
    let mut measured = Vec::new();
    let mut bound_vals = Vec::new();
    let runner = BatchRunner::new();
    for &(f, t) in &settings {
        let game = RendezvousGame::symmetric(f, t, RendezvousStrategy::UniformAll);
        let mean = mean_rounds_sharded(&runner, &game, trials, 10_000_000, 42);
        let expected = game.expected_rounds();
        let bound = game.theorem4_bound(eps);
        measured.push(mean);
        bound_vals.push(bound.max(1.0));
        table.push_row(vec![
            f.to_string(),
            t.to_string(),
            fmt(mean),
            fmt(expected),
            fmt(bound),
            fmt(mean / bound.max(1.0)),
        ]);
    }
    report.push_table(table);
    let fit = fit_through_origin(&bound_vals, &measured);
    report.note(format!(
        "origin fit: measured meeting time ≈ {:.3} × Theorem-4 expression (rms relative deviation {:.0}%)",
        fit.ratio,
        fit.rms_relative_deviation * 100.0
    ));
    report.note(
        "the measured time must stay at or above a constant multiple of the Theorem-4 expression — it is a lower bound",
    );
    report
}

/// LB3 — the gap between the Theorem 5 lower bound and the Theorem 10
/// upper bound.
pub fn lb3_gap(effort: Effort) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "LB3",
        "Theorem 5 vs Theorem 10: the Trapdoor Protocol is within a polylogarithmic factor of the lower bound",
    );
    let ns: Vec<u64> = match effort {
        Effort::Smoke => vec![64, 4096],
        _ => vec![64, 256, 1024, 4096, 1 << 14, 1 << 16, 1 << 20],
    };
    let mut table = Table::new(
        "Lower bound vs upper bound (F=32, t=16)",
        &[
            "N",
            "Theorem 5 (lower)",
            "Theorem 10 (upper)",
            "gap (upper/lower)",
        ],
    );
    for &n in &ns {
        let b = Bounds::new(n, 32, 16);
        table.push_row(vec![
            n.to_string(),
            fmt(b.theorem5()),
            fmt(b.theorem10()),
            fmt(b.upper_to_lower_gap()),
        ]);
    }
    report.push_table(table);
    report.note("the gap grows only polylogarithmically in N, consistent with the paper's conjecture that the Trapdoor Protocol is near-optimal");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb1_lemma2_holds_in_smoke_run() {
        let report = lb1_balls_in_bins(Effort::Smoke);
        // the note records the minimum ratio; the bound requires ≥ 1
        let note = &report.notes[0];
        assert!(note.contains("minimum P/bound ratio"));
        for row in report.tables[0].rows() {
            let ratio: f64 = row[5].parse().unwrap();
            assert!(ratio >= 0.999, "Lemma 2 violated in row {row:?}");
        }
        for row in report.tables[1].rows() {
            let good: usize = row[1].parse().unwrap();
            assert!(good <= 1, "Claim 3 violated in row {row:?}");
        }
    }

    #[test]
    fn lb2_measured_at_least_bound_shape() {
        let report = lb2_two_node(Effort::Smoke);
        for row in report.tables[0].rows() {
            let ratio: f64 = row[5].parse().unwrap();
            assert!(
                ratio > 0.1,
                "measured time collapsed below the bound shape: {row:?}"
            );
        }
    }

    #[test]
    fn lb3_gap_is_polylog() {
        let report = lb3_gap(Effort::Smoke);
        let rows = report.tables[0].rows();
        let first_gap: f64 = rows.first().unwrap()[3].parse().unwrap();
        let last_gap: f64 = rows.last().unwrap()[3].parse().unwrap();
        // gap grows, but far slower than N itself
        assert!(last_gap >= first_gap * 0.5);
        assert!(last_gap < 1000.0);
    }
}
