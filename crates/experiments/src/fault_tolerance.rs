//! FT1 — the Section 8 fault-tolerance discussion: what happens when the
//! elected leader crashes.
//!
//! The paper sketches a crash-tolerant extension (nodes restart when they
//! have not heard from the leader for `Ω(F²/(F−t)·logN)` rounds, and delay
//! outputting a number until they have heard the leader sufficiently
//! often). This experiment demonstrates the problem that extension solves:
//! with the unmodified Trapdoor Protocol, nodes that synchronized before
//! the crash keep a *mutually* consistent numbering (their local counters
//! keep incrementing), but a device that joins *after* the crash never
//! hears the dead leader, wins its own competition, and starts announcing a
//! **second, disagreeing** numbering — a split-brain that shows up as
//! agreement violations in the checker.
//!
//! [`CrashWrapper`] wraps any protocol and silences its radio from a given
//! local round onwards (the device's clock keeps running, so its output —
//! if it had one — keeps incrementing, which models a leader whose
//! transmitter died rather than a full machine wipe).

use wsync_core::batch::BatchRunner;
use wsync_core::runner::{run_protocol, Scenario, SyncProtocol};
use wsync_core::trapdoor::{TrapdoorConfig, TrapdoorProtocol};
use wsync_radio::action::Action;
use wsync_radio::activation::ActivationSchedule;
use wsync_radio::message::Feedback;
use wsync_radio::node::{ActivationInfo, NodeId};
use wsync_radio::protocol::Protocol;
use wsync_radio::rng::SimRng;
use wsync_stats::Table;

use crate::output::{fmt, Effort, ExperimentReport};

/// Wraps a protocol and stops all radio activity from `crash_round`
/// (local rounds) onwards. `None` means the node never crashes.
#[derive(Debug, Clone)]
pub struct CrashWrapper<P> {
    inner: P,
    crash_round: Option<u64>,
}

impl<P> CrashWrapper<P> {
    /// Wraps `inner`, crashing its radio at local round `crash_round`.
    pub fn new(inner: P, crash_round: Option<u64>) -> Self {
        CrashWrapper { inner, crash_round }
    }

    /// Whether the node's radio is down at `local_round`.
    pub fn is_crashed(&self, local_round: u64) -> bool {
        self.crash_round.is_some_and(|c| local_round >= c)
    }

    /// Read access to the wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Protocol> Protocol for CrashWrapper<P> {
    type Msg = P::Msg;

    fn on_activate(&mut self, info: ActivationInfo, rng: &mut SimRng) {
        self.inner.on_activate(info, rng);
    }

    fn choose_action(&mut self, local_round: u64, rng: &mut SimRng) -> Action<Self::Msg> {
        if self.is_crashed(local_round) {
            Action::Sleep
        } else {
            self.inner.choose_action(local_round, rng)
        }
    }

    fn on_feedback(&mut self, local_round: u64, feedback: Feedback<Self::Msg>, rng: &mut SimRng) {
        if self.is_crashed(local_round) {
            // The device's clock keeps running even though the radio is
            // dead, so the inner protocol still sees the round pass.
            self.inner.on_feedback(local_round, Feedback::Slept, rng);
        } else {
            self.inner.on_feedback(local_round, feedback, rng);
        }
    }

    fn output(&self) -> Option<u64> {
        self.inner.output()
    }
}

impl<P: SyncProtocol> SyncProtocol for CrashWrapper<P> {
    fn is_leader(&self) -> bool {
        self.inner.is_leader()
    }

    fn protocol_name(&self) -> &'static str {
        "crash-wrapped"
    }
}

/// FT1 — leader crash: already-synchronized devices keep counting
/// consistently, but a late joiner elects itself and splits the numbering
/// (motivating the paper's restart/delayed-output extension).
pub fn ft1_leader_crash(effort: Effort) -> ExperimentReport {
    let seeds = effort.seeds();
    let f = 8u32;
    let t = 2u32;
    let n_nodes = 6usize;
    let mut report = ExperimentReport::new(
        "FT1",
        "Section 8: leader crash — safety is preserved for synchronized nodes, liveness is lost for late joiners (motivating the restart extension)",
    );
    let mut table = Table::new(
        format!("Leader crash (n={n_nodes} + 1 late joiner, F={f}, t={t})"),
        &[
            "seed",
            "all synced before crash",
            "agreement violations after crash",
            "late joiner self-elected",
        ],
    );
    let mut early_synced_all = 0u64;
    let mut late_synced = 0u64;
    let mut total_violations = 0u64;
    // Node 0 is activated first (largest timestamp) so it wins the
    // competition w.h.p.; we crash it shortly after it would have finished
    // disseminating, and activate one extra node long after the crash.
    let config = TrapdoorConfig::new(64, f, t);
    let crash_at = config.total_contention_rounds() * 4;
    let late_activation = crash_at * 3;
    let mut activations: Vec<u64> = (0..n_nodes as u64).map(|i| i * 3).collect();
    activations.push(late_activation);
    let scenario = Scenario::new(n_nodes + 1, f, t)
        .with_upper_bound(64)
        .with_adversary("random")
        .with_activation(ActivationSchedule::Explicit(activations))
        .with_max_rounds(late_activation + 30_000);
    let outcomes = BatchRunner::new().run_with(&scenario, 0..seeds, |s, seed| {
        run_protocol(
            s,
            |id: NodeId| {
                let crash = if id.index() == 0 {
                    Some(crash_at)
                } else {
                    None
                };
                CrashWrapper::new(TrapdoorProtocol::new(config), crash)
            },
            seed,
        )
    });
    for (seed, outcome) in outcomes.iter().enumerate() {
        let early_ok = outcome.result.nodes[..n_nodes]
            .iter()
            .all(|nd| nd.sync_round.is_some());
        let late_ok = outcome.result.nodes[n_nodes].sync_round.is_some();
        if early_ok {
            early_synced_all += 1;
        }
        if late_ok {
            late_synced += 1;
        }
        total_violations += outcome.properties.total_violations;
        table.push_row(vec![
            seed.to_string(),
            early_ok.to_string(),
            fmt(outcome.properties.total_violations as f64),
            late_ok.to_string(),
        ]);
    }
    report.push_table(table);
    report.note(format!(
        "early devices all synchronized in {early_synced_all}/{seeds} runs; late joiners self-elected in {late_synced}/{seeds} runs, producing {total_violations} agreement violations in total — after a leader crash the unmodified protocol splits the numbering, exactly the gap the paper's proposed restart/delayed-output extension addresses"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_wrapper_silences_radio_after_crash() {
        let config = TrapdoorConfig::new(16, 4, 1);
        let mut wrapped = CrashWrapper::new(TrapdoorProtocol::new(config), Some(3));
        let mut rng = SimRng::from_seed(1);
        wrapped.on_activate(ActivationInfo::new(16, 4, 1), &mut rng);
        assert!(!wrapped.is_crashed(2));
        assert!(wrapped.is_crashed(3));
        let action = wrapped.choose_action(5, &mut rng);
        assert!(matches!(action, Action::Sleep));
    }

    #[test]
    fn ft1_smoke_shows_split_brain_after_leader_crash() {
        let report = ft1_leader_crash(Effort::Smoke);
        for row in report.tables[0].rows() {
            assert_eq!(
                row[1], "true",
                "early devices must sync before the crash: {row:?}"
            );
            assert_eq!(
                row[3], "true",
                "the late joiner must self-elect after the crash: {row:?}"
            );
            let violations: f64 = row[2].parse().unwrap();
            assert!(
                violations > 0.0,
                "the split numbering must be flagged as agreement violations: {row:?}"
            );
        }
    }
}
