//! L9 — Lemma 9: the total broadcast weight `W(r) = Σ_u p_u^r` of the
//! Trapdoor Protocol stays below `6F′` with high probability (the
//! "self-regulating feedback circuit" argument).
//!
//! The experiment steps the engine round by round and sums each active
//! node's current broadcast probability (exposed by
//! [`TrapdoorProtocol::broadcast_weight_at`]), recording the maximum weight
//! ever observed.

use wsync_core::batch::BatchRunner;
use wsync_core::registry;
use wsync_core::runner::Scenario;
use wsync_core::trapdoor::{TrapdoorConfig, TrapdoorProtocol};
use wsync_radio::engine::Engine;
use wsync_stats::Table;

use crate::output::{fmt, Effort, ExperimentReport};

/// Runs one Trapdoor execution and returns the maximum broadcast weight
/// observed over all rounds, together with the number of rounds executed.
pub fn max_broadcast_weight(scenario: &Scenario, seed: u64) -> (f64, u64) {
    let config = TrapdoorConfig::new(
        scenario.upper_bound(),
        scenario.num_frequencies,
        scenario.disruption_bound,
    );
    let adversary = registry::build_adversary(&scenario.adversary, scenario, seed)
        .expect("scenario adversary resolves against the default registry");
    let mut engine = Engine::new(
        scenario.sim_config(),
        |_| TrapdoorProtocol::new(config),
        adversary,
        scenario.activation.clone(),
        seed,
    )
    .expect("valid scenario");
    let activation_rounds = engine.activation_rounds().to_vec();
    let mut max_weight: f64 = 0.0;
    let mut round = 0u64;
    while round < scenario.max_rounds {
        engine.step();
        round += 1;
        let weight: f64 = engine
            .protocols()
            .iter()
            .zip(&activation_rounds)
            .filter(|(_, &act)| act < round)
            .map(|(p, &act)| p.broadcast_weight_at(round - 1 - act))
            .sum();
        max_weight = max_weight.max(weight);
        if engine.all_synchronized() {
            break;
        }
    }
    (max_weight, round)
}

/// L9 — maximum broadcast weight vs the `6F′` bound, sweeping the number of
/// participants under an adversarial batch activation pattern.
pub fn l9_weight_bound(effort: Effort) -> ExperimentReport {
    let f = 16u32;
    let t = 6u32;
    let seeds = effort.seeds().min(10);
    let ns: Vec<usize> = match effort {
        Effort::Smoke => vec![8, 32],
        Effort::Quick => vec![8, 16, 32, 64, 128],
        Effort::Full => vec![8, 16, 32, 64, 128, 256, 512],
    };
    let mut report = ExperimentReport::new(
        "L9",
        "Lemma 9: the Trapdoor broadcast weight W(r) stays below 6F' w.h.p.",
    );
    let mut table = Table::new(
        format!("Maximum broadcast weight (F={f}, t={t}, batch activation, random adversary)"),
        &["n", "F'", "max W(r) over seeds", "6F'", "max W / 6F'"],
    );
    let f_prime = TrapdoorConfig::new(64, f, t).f_prime();
    let bound = 6.0 * f64::from(f_prime);
    let mut worst_ratio: f64 = 0.0;
    for &n in &ns {
        let scenario = Scenario::new(n, f, t)
            .with_adversary("random")
            .with_activation(wsync_radio::activation::ActivationSchedule::Batches {
                batch_size: (n / 4).max(1),
                gap: 13,
            });
        let max_w = BatchRunner::new()
            .map(0..seeds, |seed| max_broadcast_weight(&scenario, seed).0)
            .into_iter()
            .fold(0.0f64, f64::max);
        let ratio = max_w / bound;
        worst_ratio = worst_ratio.max(ratio);
        table.push_row(vec![
            n.to_string(),
            f_prime.to_string(),
            fmt(max_w),
            fmt(bound),
            fmt(ratio),
        ]);
    }
    report.push_table(table);
    report.note(format!(
        "worst observed W(r)/(6F') ratio: {worst_ratio:.3} (Lemma 9 predicts < 1 w.h.p.)"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_stays_below_lemma9_bound_in_smoke_run() {
        let report = l9_weight_bound(Effort::Smoke);
        for row in report.tables[0].rows() {
            let ratio: f64 = row[4].parse().unwrap();
            assert!(ratio < 1.0, "Lemma 9 bound exceeded: {row:?}");
        }
    }

    #[test]
    fn max_weight_positive_for_nontrivial_run() {
        let scenario = Scenario::new(8, 8, 2).with_adversary("random");
        let (w, rounds) = max_broadcast_weight(&scenario, 1);
        assert!(w > 0.0);
        assert!(rounds > 0);
    }
}
