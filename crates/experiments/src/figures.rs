//! FIG1 / FIG2 — regenerate the paper's two protocol-schedule figures from
//! the implementation's configuration types.

use wsync_core::good_samaritan::GoodSamaritanConfig;
use wsync_core::trapdoor::TrapdoorConfig;
use wsync_stats::{Align, Table};

use crate::output::{fmt, Effort, ExperimentReport};

/// Reference parameters used when regenerating the figures.
fn reference_params(effort: Effort) -> (u64, u32, u32) {
    match effort {
        Effort::Smoke => (64, 8, 3),
        Effort::Quick => (1024, 16, 6),
        Effort::Full => (4096, 32, 12),
    }
}

/// FIG1 — Figure 1: epoch lengths and contender broadcast probabilities of
/// the Trapdoor Protocol.
pub fn figure1(effort: Effort) -> ExperimentReport {
    let (n, f, t) = reference_params(effort);
    let config = TrapdoorConfig::new(n, f, t);
    let mut report = ExperimentReport::new(
        "FIG1",
        "Figure 1: Trapdoor Protocol epoch lengths and broadcast probabilities",
    );
    let mut table = Table::new(
        format!(
            "Trapdoor schedule for N={}, F={}, t={} (F'={})",
            config.upper_bound_n,
            f,
            t,
            config.f_prime()
        ),
        &[
            "epoch",
            "length (rounds)",
            "broadcast prob.",
            "paper prob. (2^e/2N)",
        ],
    );
    for spec in config.schedule() {
        let paper_prob = 2f64.powi(spec.epoch as i32) / (2.0 * config.upper_bound_n as f64);
        table.push_row(vec![
            spec.epoch.to_string(),
            spec.length.to_string(),
            fmt(spec.broadcast_probability),
            fmt(paper_prob),
        ]);
    }
    report.push_table(table);
    report.note(format!(
        "regular epoch length Θ(F'/(F'-t)·lgN) = {}, final epoch length Θ(F'²/(F'-t)·lgN) = {}",
        config.epoch_length(1),
        config.epoch_length(config.num_epochs())
    ));
    report.note(format!(
        "total contention rounds if never knocked out: {}",
        config.total_contention_rounds()
    ));
    report
}

/// FIG2 — Figure 2: super-epoch structure, broadcast probabilities and
/// frequency distributions of the Good Samaritan Protocol.
pub fn figure2(effort: Effort) -> ExperimentReport {
    let (n, f, t) = reference_params(effort);
    let config = GoodSamaritanConfig::new(n, f, t);
    let mut report = ExperimentReport::new(
        "FIG2",
        "Figure 2: Good Samaritan super-epoch structure, probabilities and frequency distributions",
    );

    let mut schedule = Table::new(
        format!(
            "Good Samaritan schedule for N={}, F={}, t={} (lgF={} super-epochs, lgN+2={} epochs each)",
            config.upper_bound_n,
            f,
            t,
            config.lg_f(),
            config.epochs_per_super_epoch()
        ),
        &[
            "super-epoch k",
            "epoch length s(k)",
            "super-epoch length",
            "leader threshold s(k)/2^{k+6}",
        ],
    );
    for k in 1..=config.lg_f() {
        schedule.push_row(vec![
            k.to_string(),
            config.epoch_length(k).to_string(),
            config.super_epoch_length(k).to_string(),
            config.success_threshold(k).to_string(),
        ]);
    }
    report.push_table(schedule);

    let mut probs = Table::new(
        "Per-epoch broadcast probabilities (any super-epoch)",
        &["epoch e", "broadcast prob."],
    );
    for e in 1..=config.epochs_per_super_epoch() {
        probs.push_row(vec![e.to_string(), fmt(config.broadcast_probability(e))]);
    }
    report.push_table(probs);

    // Frequency distributions for a representative super-epoch.
    let k = (config.lg_f() / 2).max(1);
    let regular = config.regular_frequency_distribution(k);
    let last = config.last_epochs_frequency_distribution(k);
    let special = config.special_frequency_distribution();
    let mut dist = Table::new(
        format!("Frequency selection distributions (super-epoch k={k})"),
        &[
            "frequency f",
            "regular epochs P[f]",
            "last two epochs P[f]",
            "special round P[f]",
        ],
    );
    dist.set_align(0, Align::Right);
    let shown = (f as usize).min(16);
    for i in 0..shown {
        dist.push_row(vec![
            (i + 1).to_string(),
            fmt(regular[i]),
            fmt(last[i]),
            fmt(special[i]),
        ]);
    }
    report.push_table(dist);
    report.note(format!(
        "fallback: {} modified-Trapdoor epochs of {} rounds each (≥ 4× the longest optimistic epoch of {})",
        config.fallback_epochs(),
        config.fallback_epoch_length(),
        config.epoch_length(config.lg_f())
    ));
    report.note(
        "regular-epoch distribution P[f] = 1/2^{k+1} + 1/2F for f ≤ 2^k and 1/2F otherwise, as in Figure 2",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_rows_match_epoch_count() {
        let report = figure1(Effort::Smoke);
        let config = TrapdoorConfig::new(64, 8, 3);
        assert_eq!(report.tables[0].len() as u32, config.num_epochs());
        assert_eq!(report.id, "FIG1");
        assert!(report.to_markdown().contains("Trapdoor schedule"));
    }

    #[test]
    fn figure2_contains_all_super_epochs_and_distributions() {
        let report = figure2(Effort::Smoke);
        let config = GoodSamaritanConfig::new(64, 8, 3);
        assert_eq!(report.tables[0].len() as u32, config.lg_f());
        assert_eq!(
            report.tables[1].len() as u32,
            config.epochs_per_super_epoch()
        );
        assert!(report.tables[2].len() <= 16);
        assert!(!report.notes.is_empty());
    }
}
