//! T18a / T18b — Theorem 18: the Good Samaritan Protocol terminates in
//! `O(t′·log³N)` rounds in good executions (simultaneous wake-up, oblivious
//! adversary disrupting at most `t′ < t` frequencies) and in `O(F·log³N)`
//! rounds in every execution.

use wsync_core::good_samaritan::GoodSamaritanConfig;
use wsync_core::spec::{ComponentSpec, ScenarioSpec};
use wsync_core::sweep::SweepRunner;
use wsync_radio::activation::ActivationSchedule;
use wsync_stats::{fit_through_origin, Summary, Table};

use crate::output::{fmt, Effort, ExperimentReport};

/// Runs the Good Samaritan protocol over several seeds (sharded across
/// cores) and reports the mean completion round, the fraction of runs
/// finishing during the optimistic portion, and the fraction of clean runs.
/// `config` supplies the schedule thresholds (`fallback_start`) used to
/// classify an execution as optimistic; it mirrors the spec's parameters.
///
/// The bespoke optimistic/clean counters fold through
/// [`SweepRunner::run_points_each`], which streams every outcome past the
/// closure in seed order and then drops it — no outcome vector is held.
pub fn measure_samaritan(
    spec: &ScenarioSpec,
    config: GoodSamaritanConfig,
    seeds: u64,
) -> (Summary, f64, f64) {
    let mut optimistic = 0usize;
    let mut clean = 0usize;
    let report = SweepRunner::new()
        .run_points_each(
            vec![(String::new(), spec.clone())],
            0..seeds,
            |_, outcome| {
                if let Some(r) = outcome.completion_round() {
                    if r < config.fallback_start() {
                        optimistic += 1;
                    }
                }
                if outcome.result.all_synchronized
                    && outcome.leaders >= 1
                    && outcome.properties.safety_holds()
                {
                    clean += 1;
                }
            },
        )
        .expect("valid experiment spec");
    (
        report.points[0].stats.completion_rounds,
        optimistic as f64 / seeds as f64,
        clean as f64 / seeds as f64,
    )
}

/// T18a — adaptive termination: sweep the actual disruption level `t′` in
/// good executions and compare against `t′·log³N`.
pub fn t18a_adaptive(effort: Effort) -> ExperimentReport {
    let n_nodes = 8usize;
    let f = 16u32;
    let t = 8u32;
    let seeds = effort.seeds();
    let t_actuals: Vec<u32> = match effort {
        Effort::Smoke => vec![1, 4],
        Effort::Quick => vec![1, 2, 4, 8],
        Effort::Full => vec![1, 2, 3, 4, 6, 8],
    };
    let mut report = ExperimentReport::new(
        "T18a",
        "Theorem 18 (optimistic): good executions terminate in O(t'·log³N) rounds",
    );
    let mut table = Table::new(
        format!("Good Samaritan adaptivity (n={n_nodes}, F={f}, t={t}, simultaneous wake-up)"),
        &[
            "t'",
            "mean completion round",
            "std dev",
            "t'·log³N",
            "ratio",
            "finished in optimistic portion",
            "clean runs",
        ],
    );
    let mut measured = Vec::new();
    let mut predicted = Vec::new();
    for &t_actual in &t_actuals {
        let spec = ScenarioSpec::new("good-samaritan", n_nodes, f, t)
            .with_adversary(
                ComponentSpec::named("oblivious-random").with("t_actual", u64::from(t_actual)),
            )
            .with_activation(ActivationSchedule::Simultaneous);
        let config = GoodSamaritanConfig::new(spec.scenario().upper_bound(), f, t);
        let (summary, optimistic, clean) = measure_samaritan(&spec, config, seeds);
        let expr = config.theorem18_optimistic_bound(t_actual);
        measured.push(summary.mean);
        predicted.push(expr);
        table.push_row(vec![
            t_actual.to_string(),
            fmt(summary.mean),
            fmt(summary.std_dev),
            fmt(expr),
            fmt(summary.mean / expr.max(1.0)),
            format!("{:.0}%", optimistic * 100.0),
            format!("{:.0}%", clean * 100.0),
        ]);
    }
    report.push_table(table);
    if predicted.len() >= 2 {
        let fit = fit_through_origin(&predicted, &measured);
        report.note(format!(
            "origin fit: measured ≈ {:.3} × t'·log³N (max relative deviation {:.0}%)",
            fit.ratio,
            fit.max_relative_deviation * 100.0
        ));
    }
    report.note(
        "smaller actual disruption t' must give smaller completion times — the adaptivity claim",
    );
    report
}

/// T18b — fallback bound: executions that are *not* good (staggered
/// activation) still terminate, within a constant multiple of `F·log³N`.
pub fn t18b_fallback(effort: Effort) -> ExperimentReport {
    let n_nodes = 6usize;
    let t = 4u32;
    let seeds = effort.seeds().min(8);
    let fs: Vec<u32> = match effort {
        Effort::Smoke => vec![8],
        Effort::Quick => vec![8, 16],
        Effort::Full => vec![8, 16, 32],
    };
    let mut report = ExperimentReport::new(
        "T18b",
        "Theorem 18 (general): every execution terminates within O(F·log³N) rounds",
    );
    let mut table = Table::new(
        format!("Good Samaritan fallback bound (n={n_nodes}, t={t}, staggered wake-up, random adversary)"),
        &[
            "F",
            "mean completion round",
            "max completion round",
            "F·log³N",
            "max/bound ratio",
            "clean runs",
        ],
    );
    for &f in &fs {
        let spec = ScenarioSpec::new("good-samaritan", n_nodes, f, t)
            .with_adversary("random")
            .with_activation(ActivationSchedule::Staggered { gap: 37 })
            .with_max_rounds(4_000_000);
        let config = GoodSamaritanConfig::new(spec.scenario().upper_bound(), f, t);
        let (summary, _optimistic, clean) = measure_samaritan(&spec, config, seeds);
        let bound = config.theorem18_fallback_bound();
        table.push_row(vec![
            f.to_string(),
            fmt(summary.mean),
            fmt(summary.max),
            fmt(bound),
            fmt(summary.max / bound.max(1.0)),
            format!("{:.0}%", clean * 100.0),
        ]);
    }
    report.push_table(table);
    report.note("the max/bound ratio should stay bounded by a constant as F grows");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t18a_smoke_adaptivity_direction() {
        let report = t18a_adaptive(Effort::Smoke);
        assert_eq!(report.id, "T18a");
        let rows = report.tables[0].rows();
        assert!(rows.len() >= 2);
        // completion time for the smallest t' should not exceed that of the
        // largest t' (column 1 holds the mean completion round)
        let first: f64 = rows.first().unwrap()[1].parse().unwrap_or(f64::MAX);
        let last: f64 = rows.last().unwrap()[1].parse().unwrap_or(0.0);
        assert!(
            first <= last * 1.5,
            "t'=min should not be much slower than t'=max ({first} vs {last})"
        );
    }

    #[test]
    fn t18b_smoke_produces_bound_rows() {
        let report = t18b_fallback(Effort::Smoke);
        assert_eq!(report.tables[0].len(), 1);
    }
}
