//! T10a–T10d — Theorem 10: the Trapdoor Protocol synchronizes within
//! `O(F/(F−t)·log²N + F·t/(F−t)·log N)` rounds w.h.p., electing exactly one
//! leader, and satisfies all five problem requirements.
//!
//! The scaling experiments sweep one parameter at a time, average the
//! worst per-node rounds-to-synchronization over several seeds, and fit a
//! single proportionality constant against the Theorem 10 expression: if the
//! measured/predicted ratio stays roughly constant across the sweep, the
//! claimed shape is reproduced.

use wsync_analysis::formulas::Bounds;
use wsync_core::spec::ScenarioSpec;
use wsync_core::sweep::{StopMetric, SweepRunner};
use wsync_radio::activation::ActivationSchedule;
use wsync_stats::{fit_through_origin, Summary, Table};

use crate::output::{fmt, Effort, ExperimentReport};

/// Measures the mean (over seeds) of the worst per-node rounds-to-sync for a
/// spec, along with the fraction of clean runs (all synced, one leader,
/// no safety violations). Trials stream through a [`SweepRunner`] (sharded
/// across cores, folded incrementally); the aggregates are identical to a
/// serial seed loop.
pub fn measure_trapdoor(spec: &ScenarioSpec, seeds: u64) -> (Summary, f64) {
    let report = SweepRunner::new()
        .run_points(vec![(String::new(), spec.clone())], 0..seeds)
        .expect("valid experiment spec");
    let stats = &report.points[0].stats;
    (stats.rounds_to_sync, stats.clean_rate())
}

fn scaling_report(
    id: &str,
    claim: &str,
    title: &str,
    points: Vec<(String, ScenarioSpec, Bounds)>,
    effort: Effort,
) -> ExperimentReport {
    let seeds = effort.seeds();
    let mut report = ExperimentReport::new(id, claim);
    let mut table = Table::new(
        title,
        &[
            "point",
            "mean rounds to sync",
            "std dev",
            "theorem-10 expr.",
            "ratio",
            "clean runs",
        ],
    );
    let mut measured = Vec::new();
    let mut predicted = Vec::new();
    // One pass over the whole grid: the worker pool steals (point × seed)
    // trials globally, so a slow sweep point cannot leave cores idle while
    // a cheap one drains. At Quick/Full the pass is adaptive — each point
    // stops once its mean-rounds CI is tight (see `run_effort_grid`).
    let sweep = crate::run_effort_grid(
        points
            .iter()
            .map(|(label, spec, _)| (label.clone(), spec.clone()))
            .collect(),
        0..seeds,
        effort,
        StopMetric::SyncRoundsMean,
    );
    for ((label, _, bounds), point) in points.iter().zip(&sweep.points) {
        let summary = point.stats.rounds_to_sync;
        let clean = point.stats.clean_rate();
        let expr = bounds.theorem10();
        let ratio = if expr > 0.0 { summary.mean / expr } else { 0.0 };
        measured.push(summary.mean);
        predicted.push(expr);
        table.push_row(vec![
            label.clone(),
            fmt(summary.mean),
            fmt(summary.std_dev),
            fmt(expr),
            fmt(ratio),
            format!("{:.0}%", clean * 100.0),
        ]);
    }
    report.push_table(table);
    if let Some(note) = crate::adaptive_note(&sweep, &(0..seeds)) {
        report.note(note);
    }
    if predicted.iter().all(|&p| p > 0.0) && predicted.len() >= 2 {
        let fit = fit_through_origin(&predicted, &measured);
        report.note(format!(
            "origin fit: measured ≈ {:.2} × theorem-10 expression (max relative deviation {:.0}%, rms {:.0}%)",
            fit.ratio,
            fit.max_relative_deviation * 100.0,
            fit.rms_relative_deviation * 100.0
        ));
    }
    report
}

/// T10a — running time as a function of `N` (and `n = N/2`).
pub fn t10a_sweep_n(effort: Effort) -> ExperimentReport {
    let f = 16u32;
    let t = 8u32;
    let ns: Vec<u64> = match effort {
        Effort::Smoke => vec![16, 64],
        Effort::Quick => vec![16, 32, 64, 128, 256, 512],
        Effort::Full => vec![16, 32, 64, 128, 256, 512, 1024, 2048],
    };
    let points = ns
        .into_iter()
        .map(|n| {
            let participants = (n / 2).max(2) as usize;
            let spec = ScenarioSpec::new("trapdoor", participants, f, t)
                .with_upper_bound(n)
                .with_adversary("random");
            (format!("N={n}"), spec, Bounds::new(n, f, t))
        })
        .collect();
    scaling_report(
        "T10a",
        "Theorem 10: rounds to synchronize scale as F/(F−t)·log²N + Ft/(F−t)·logN (sweep N)",
        &format!("Trapdoor scaling in N (F={f}, t={t}, random adversary)"),
        points,
        effort,
    )
}

/// T10b — running time as a function of `t` at fixed `F` (blow-up as
/// `t → F`).
pub fn t10b_sweep_t(effort: Effort) -> ExperimentReport {
    let f = 16u32;
    let n = 128u64;
    let ts: Vec<u32> = match effort {
        Effort::Smoke => vec![2, 12],
        Effort::Quick => vec![0, 2, 4, 8, 12, 14],
        Effort::Full => vec![0, 1, 2, 4, 6, 8, 10, 12, 14, 15],
    };
    let points = ts
        .into_iter()
        .map(|t| {
            let spec = ScenarioSpec::new("trapdoor", 32, f, t)
                .with_upper_bound(n)
                .with_adversary("random");
            (format!("t={t}"), spec, Bounds::new(n, f, t))
        })
        .collect();
    scaling_report(
        "T10b",
        "Theorem 10: running time blows up as t approaches F (sweep t)",
        &format!("Trapdoor scaling in t (F={f}, N={n}, random adversary)"),
        points,
        effort,
    )
}

/// T10c — running time as a function of `F` at fixed `t`.
pub fn t10c_sweep_f(effort: Effort) -> ExperimentReport {
    let t = 4u32;
    let n = 128u64;
    let fs: Vec<u32> = match effort {
        Effort::Smoke => vec![6, 32],
        Effort::Quick => vec![6, 8, 12, 16, 32, 64],
        Effort::Full => vec![5, 6, 8, 12, 16, 24, 32, 64, 128],
    };
    let points = fs
        .into_iter()
        .map(|f| {
            let spec = ScenarioSpec::new("trapdoor", 32, f, t)
                .with_upper_bound(n)
                .with_adversary("random");
            (format!("F={f}"), spec, Bounds::new(n, f, t))
        })
        .collect();
    scaling_report(
        "T10c",
        "Theorem 10: more frequencies beyond 2t stop helping (sweep F at fixed t)",
        &format!("Trapdoor scaling in F (t={t}, N={n}, random adversary)"),
        points,
        effort,
    )
}

/// T10d — the five problem properties and single-leader agreement across
/// adversaries and activation schedules.
pub fn t10d_properties(effort: Effort) -> ExperimentReport {
    let seeds = effort.seeds().max(4);
    let mut report = ExperimentReport::new(
        "T10d",
        "Theorem 10 (agreement + Section 3 properties): one leader, no safety violations, liveness",
    );
    let mut table = Table::new(
        "Trapdoor property check (n=24, F=16, t=6)",
        &[
            "adversary",
            "activation",
            "runs",
            "all synced",
            "exactly 1 leader",
            "safety violations",
        ],
    );
    let adversaries = ["none", "fixed-band", "random", "sweep", "adaptive-greedy"];
    let activations = [
        ("simultaneous", ActivationSchedule::Simultaneous),
        ("staggered", ActivationSchedule::Staggered { gap: 11 }),
        ("window", ActivationSchedule::UniformWindow { window: 100 }),
    ];
    let mut combos = Vec::new();
    let mut points = Vec::new();
    for adversary in &adversaries {
        for (act_name, activation) in &activations {
            let spec = ScenarioSpec::new("trapdoor", 24, 16, 6)
                .with_adversary(*adversary)
                .with_activation(activation.clone());
            combos.push((adversary.to_string(), act_name.to_string()));
            points.push((format!("{adversary}/{act_name}"), spec));
        }
    }
    let sweep = SweepRunner::new()
        .run_points(points, 1000..1000 + seeds)
        .expect("valid experiment specs");
    let mut total_runs = 0u64;
    let mut total_single_leader = 0u64;
    for ((adversary, act_name), point) in combos.into_iter().zip(&sweep.points) {
        let stats = &point.stats;
        let (synced, one_leader, violations) =
            (stats.synced, stats.single_leader, stats.total_violations);
        total_runs += seeds;
        total_single_leader += one_leader;
        table.push_row(vec![
            adversary,
            act_name,
            seeds.to_string(),
            format!("{synced}/{seeds}"),
            format!("{one_leader}/{seeds}"),
            violations.to_string(),
        ]);
    }
    report.push_table(table);
    report.note(format!(
        "single-leader rate across all settings: {}/{} runs",
        total_single_leader, total_runs
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t10a_smoke_ratio_is_bounded() {
        let report = t10a_sweep_n(Effort::Smoke);
        assert_eq!(report.id, "T10a");
        assert!(report.tables[0].len() >= 2);
        assert!(!report.notes.is_empty());
    }

    #[test]
    fn t10d_smoke_has_rows_for_each_combination() {
        let report = t10d_properties(Effort::Smoke);
        assert_eq!(report.tables[0].len(), 5 * 3);
    }
}
