//! Command-line generator for every experiment in EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p wsync-experiments --bin run_experiments -- <ID|all> [smoke|quick|full] [--markdown]
//! cargo run --release -p wsync-experiments --bin run_experiments -- --spec <file.json> [smoke|quick|full] [--markdown] [--out <dir> [--resume] [--workers K]]
//! ```
//!
//! `<ID>` is an experiment identifier (`FIG1`, `FIG2`, `LB1`, `LB2`, `LB3`,
//! `T10a`–`T10d`, `L9`, `T18a`, `T18b`, `X1`, `X2`, `A1`, `A2`, `FT1`,
//! `NF1`, `NF2`) or `all`. The default effort is `quick`; `full` reproduces the settings
//! recorded in EXPERIMENTS.md. With `--markdown` the tables are emitted as
//! GitHub-flavoured Markdown instead of aligned plain text.
//!
//! `--spec <file.json>` runs a declarative scenario file (a `ScenarioSpec`
//! or a `SweepSpec`, see `examples/specs/`) with zero recompilation: the
//! protocol and adversary names resolve against the registry at run time.
//! For a bare `ScenarioSpec` the effort level picks the seed count.
//!
//! `--out <dir>` persists every completed trial of a `--spec` run into a
//! content-addressed result store (sharded JSONL files under `<dir>`).
//! `--resume` additionally serves already-stored trials from that store:
//! a sweep that was killed midway re-runs only the missing trials and
//! prints tables bit-identical to an uninterrupted run (cache totals go
//! to stderr). Without `--resume`, `--out` refuses a non-empty store so a
//! stale cache is never mixed into a run silently.
//!
//! `--workers K` drains the sweep on the **multi-process fabric**: K child
//! processes (re-invocations of this binary in its hidden
//! `--fabric-worker` mode) claim store shards via lease files and execute
//! the trials routed to them, after which the parent runs an ordinary
//! resume pass to aggregate — so stdout is bit-identical to a 1-process
//! run, and a worker killed mid-sweep (stale lease reclaimed by its
//! peers, or finished by the parent's resume pass) never costs more than
//! its unfinished trials. `--lease-ttl-ms <n>` tunes how long a silent
//! worker's lease survives before peers reclaim it (default 30000).
use std::env;
use std::process::{Command, ExitCode};
use std::sync::Arc;
use std::time::Duration;

use wsync_core::fabric::{self, FabricConfig, WorkerEvent};
use wsync_core::store::ResultStore;
use wsync_experiments::output::{Effort, ExperimentReport};
use wsync_experiments::{
    ablation, baseline_comparison, crossover, fault_tolerance, figures, lower_bounds,
    network_faults, run_all, run_spec_file_stored, samaritan_adaptive, trapdoor_scaling,
    weight_bound, SpecFile, StoreMode,
};

fn run_one(id: &str, effort: Effort) -> Option<ExperimentReport> {
    let report = match id.to_ascii_uppercase().as_str() {
        "FIG1" => figures::figure1(effort),
        "FIG2" => figures::figure2(effort),
        "LB1" => lower_bounds::lb1_balls_in_bins(effort),
        "LB2" => lower_bounds::lb2_two_node(effort),
        "LB3" => lower_bounds::lb3_gap(effort),
        "T10A" => trapdoor_scaling::t10a_sweep_n(effort),
        "T10B" => trapdoor_scaling::t10b_sweep_t(effort),
        "T10C" => trapdoor_scaling::t10c_sweep_f(effort),
        "T10D" => trapdoor_scaling::t10d_properties(effort),
        "L9" => weight_bound::l9_weight_bound(effort),
        "T18A" => samaritan_adaptive::t18a_adaptive(effort),
        "T18B" => samaritan_adaptive::t18b_fallback(effort),
        "X1" => crossover::x1_crossover(effort),
        "X2" => baseline_comparison::x2_baselines(effort),
        "A1" => ablation::a1_epoch_constant(effort),
        "A2" => ablation::a2_frequency_limit(effort),
        "FT1" => fault_tolerance::ft1_leader_crash(effort),
        "NF1" => network_faults::nf1_drop_rate(effort),
        "NF2" => network_faults::nf2_partition_healing(effort),
        _ => return None,
    };
    Some(report)
}

/// Extracts a value-taking `--flag <value>` pair from the argument list.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(value) if !value.starts_with("--") => Ok(Some(value.clone())),
            _ => Err(format!("{flag} requires an argument")),
        },
    }
}

/// Logs a store's per-shard open-time repair statistics to stderr (never
/// stdout: report bytes must stay independent of store history).
fn log_repair_stats(dir: &str, store: &ResultStore) {
    for repair in store.repair_stats() {
        let what = match (repair.dropped_lines, repair.torn_tail) {
            (0, _) => "a torn trailing line".to_string(),
            (n, true) => format!("{n} torn/corrupt line(s) and a torn tail"),
            (n, false) => format!("{n} corrupt line(s)"),
        };
        let action = if repair.rewritten {
            "repaired in place"
        } else {
            "left untouched (shared open)"
        };
        eprintln!(
            "result store {dir}: shard {:02} ({}) had {what}; {action}",
            repair.shard,
            repair.path.display()
        );
    }
    if store.dropped_records() > 0 {
        eprintln!(
            "result store {dir}: dropped {} torn/corrupt record(s); the affected trials \
             will be recomputed",
            store.dropped_records()
        );
    }
}

/// The hidden `--fabric-worker` child mode: claim shards of the shared
/// store via lease files and execute the trials routed to them. Spawned
/// by `--workers K`, but also invocable directly — any number of
/// independently launched workers (different machines on a shared
/// filesystem included) cooperate through the lease protocol alone.
fn run_fabric_worker(
    spec_path: &str,
    out_dir: &str,
    effort: Effort,
    holder: String,
    lease_ttl: Option<Duration>,
) -> ExitCode {
    let text = match std::fs::read_to_string(spec_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read spec file {spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let file = match SpecFile::parse(&text) {
        Ok(file) => file,
        Err(e) => {
            eprintln!("{spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The same default-seed rule as the parent's aggregation pass, so the
    // worker executes exactly the trials the final report will ask for.
    let sweep = file.into_sweep(0..effort.seeds());
    let mut config = FabricConfig::new(&holder);
    if let Some(ttl) = lease_ttl {
        config = config.lease_ttl(ttl);
    }
    let result = fabric::run_worker(out_dir, &sweep, &config, |event| match event {
        WorkerEvent::ShardClaimed { shard } => {
            eprintln!("fabric worker {holder}: claimed shard {shard:02}");
        }
        WorkerEvent::ShardComplete {
            shard,
            executed,
            cached,
        } => {
            eprintln!(
                "fabric worker {holder}: shard {shard:02} complete \
                 ({executed} executed, {cached} already stored)"
            );
        }
        WorkerEvent::LeaseReclaimed {
            shard,
            holder: dead,
        } => {
            eprintln!(
                "fabric worker {holder}: reclaimed stale lease on shard {shard:02} from {dead}"
            );
        }
        WorkerEvent::LeaseLost { shard } => {
            eprintln!("fabric worker {holder}: lost lease on shard {shard:02}, abandoning it");
        }
        WorkerEvent::PointStopped {
            point,
            seeds_used,
            reason,
        } => {
            eprintln!(
                "fabric worker {holder}: point {point} stopped after {seeds_used} seed(s) \
                 ({reason})"
            );
        }
        WorkerEvent::ShardBusy { .. } => {}
    });
    match result {
        Ok(summary) => {
            eprintln!(
                "fabric worker {holder}: done ({} executed, {} cached, {} shard(s) claimed, \
                 {} stale lease(s) reclaimed)",
                summary.trials_executed,
                summary.trials_cached,
                summary.shards_claimed,
                summary.leases_reclaimed
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fabric worker {holder}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Spawns `workers` fabric children over the shared store and waits for
/// them. Worker failures are warnings, not errors: the fabric's whole
/// point is that the parent's resume pass completes whatever crashed
/// workers left behind.
fn run_fabric_parent(
    spec_path: &str,
    out_dir: &str,
    effort_arg: Option<&str>,
    workers: usize,
    lease_ttl_ms: Option<&str>,
) -> Result<(), String> {
    let exe = env::current_exe().map_err(|e| format!("cannot locate own executable: {e}"))?;
    let mut children = Vec::new();
    for k in 0..workers {
        let mut cmd = Command::new(&exe);
        cmd.arg("--fabric-worker")
            .arg("--spec")
            .arg(spec_path)
            .arg("--out")
            .arg(out_dir)
            .arg("--holder")
            .arg(format!("worker-{k}-pid{}", std::process::id()));
        if let Some(ms) = lease_ttl_ms {
            cmd.arg("--lease-ttl-ms").arg(ms);
        }
        if let Some(effort) = effort_arg {
            cmd.arg(effort);
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("cannot spawn fabric worker {k}: {e}"))?;
        children.push((k, child));
    }
    for (k, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => eprintln!(
                "fabric worker {k} exited with {status}; its unfinished trials will be \
                 completed by the resume pass"
            ),
            Err(e) => eprintln!("waiting for fabric worker {k} failed: {e}"),
        }
    }
    // Crashed workers leave lease files (and possibly a torn shard tail)
    // behind; clear the leases so the store directory is clean, and let
    // the repairing open of the resume pass fix any torn tails.
    let cleaned = fabric::clean_leases(out_dir).map_err(|e| e.to_string())?;
    if cleaned > 0 {
        eprintln!("result store {out_dir}: removed {cleaned} leftover lease file(s)");
    }
    // Adaptive sweeps also leave stop markers behind. They are pure
    // acceleration — every worker re-derives the same verdicts from the
    // store bytes — so removing them never changes a later resume.
    let markers = fabric::clean_stop_markers(out_dir).map_err(|e| e.to_string())?;
    if markers > 0 {
        eprintln!("result store {out_dir}: removed {markers} stop marker(s)");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let resume = args.iter().any(|a| a == "--resume");
    let fabric_worker = args.iter().any(|a| a == "--fabric-worker");
    let value_flags = ["--spec", "--out", "--workers", "--holder", "--lease-ttl-ms"];
    let mut flags = (None, None, None, None, None);
    for (slot, flag) in [
        &mut flags.0,
        &mut flags.1,
        &mut flags.2,
        &mut flags.3,
        &mut flags.4,
    ]
    .into_iter()
    .zip(value_flags)
    {
        match flag_value(&args, flag) {
            Ok(v) => *slot = v,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (spec_path, out_dir, workers_arg, holder, lease_ttl_ms) = flags;
    if out_dir.is_some() && spec_path.is_none() {
        eprintln!("--out is only supported together with --spec");
        return ExitCode::FAILURE;
    }
    if resume && out_dir.is_none() {
        eprintln!("--resume requires --out <dir>");
        return ExitCode::FAILURE;
    }
    if (workers_arg.is_some() || fabric_worker) && out_dir.is_none() {
        eprintln!("--workers and --fabric-worker require --spec <file.json> and --out <dir>");
        return ExitCode::FAILURE;
    }
    let workers = match workers_arg.as_deref().map(str::parse::<usize>) {
        None => None,
        Some(Ok(n)) if n > 0 => Some(n),
        Some(_) => {
            eprintln!("--workers requires a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let lease_ttl = match lease_ttl_ms.as_deref().map(str::parse::<u64>) {
        None => None,
        Some(Ok(ms)) => Some(Duration::from_millis(ms)),
        Some(Err(_)) => {
            eprintln!("--lease-ttl-ms requires an integer millisecond count");
            return ExitCode::FAILURE;
        }
    };
    let positional: Vec<&String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if value_flags.contains(&a.as_str()) {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .collect()
    };

    if let Some(path) = spec_path {
        // In spec mode the only accepted positional is an effort level; a
        // stray experiment id would otherwise be dropped silently.
        let effort_arg = positional.first().map(|s| s.as_str());
        if positional.len() > 1
            || matches!(effort_arg, Some(a) if !matches!(a, "smoke" | "quick" | "full"))
        {
            eprintln!(
                "--spec cannot be combined with an experiment id; pass only an optional \
                 effort level (smoke|quick|full), got: {}",
                positional
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            return ExitCode::FAILURE;
        }
        let effort = Effort::from_arg(effort_arg);

        if fabric_worker {
            let Some(dir) = out_dir else {
                unreachable!("--fabric-worker without --out was rejected above")
            };
            let holder = holder.unwrap_or_else(|| format!("worker-pid{}", std::process::id()));
            return run_fabric_worker(&path, &dir, effort, holder, lease_ttl);
        }

        // The stale-cache refusal applies before any fabric worker starts:
        // a non-empty store without --resume is an error in every mode.
        if let Some(dir) = &out_dir {
            let store = match ResultStore::open_shared(dir) {
                Ok(store) => store,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            if !resume && !store.is_empty() {
                eprintln!(
                    "result store {dir} already holds {} record(s); pass --resume to \
                     continue the sweep or choose a fresh --out directory",
                    store.len()
                );
                return ExitCode::FAILURE;
            }
        }

        let fabric_ran = if let (Some(k), Some(dir)) = (workers, &out_dir) {
            if let Err(message) =
                run_fabric_parent(&path, dir, effort_arg, k, lease_ttl_ms.as_deref())
            {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
            true
        } else {
            false
        };

        let store_mode = match &out_dir {
            None => StoreMode::None,
            Some(dir) => {
                let store = match ResultStore::open(dir) {
                    Ok(store) => store,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                log_repair_stats(dir, &store);
                if resume || fabric_ran {
                    // After a fabric run the store holds the workers'
                    // results; the aggregation pass must serve them.
                    StoreMode::Resume(Arc::new(store))
                } else {
                    StoreMode::Record(Arc::new(store))
                }
            }
        };
        match run_spec_file_stored(&path, 0..effort.seeds(), &store_mode) {
            Ok((report, totals)) => {
                if markdown {
                    println!("{}", report.to_markdown());
                } else {
                    println!("{}", report.to_plain_text());
                }
                if let Some(dir) = &out_dir {
                    // Cache accounting goes to stderr only: stdout must stay
                    // bit-identical between fresh and resumed runs.
                    eprintln!(
                        "result store {dir}: {} trial(s) served from cache, {} executed",
                        totals.cached_trials(),
                        totals.executed_trials()
                    );
                }
                return ExitCode::SUCCESS;
            }
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
        }
    }

    let id = positional.first().map(|s| s.as_str()).unwrap_or("all");
    let effort = Effort::from_arg(positional.get(1).map(|s| s.as_str()));

    let reports: Vec<ExperimentReport> = if id.eq_ignore_ascii_case("all") {
        run_all(effort)
    } else {
        match run_one(id, effort) {
            Some(r) => vec![r],
            None => {
                eprintln!(
                    "unknown experiment id '{id}'; expected FIG1, FIG2, LB1-LB3, T10a-T10d, L9, T18a, T18b, X1, X2, A1, A2, FT1, NF1, NF2, or 'all' (or --spec <file.json>)"
                );
                return ExitCode::FAILURE;
            }
        }
    };

    for report in &reports {
        if markdown {
            println!("{}", report.to_markdown());
        } else {
            println!("{}", report.to_plain_text());
        }
    }
    ExitCode::SUCCESS
}
