//! Command-line generator for every experiment in EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p wsync-experiments --bin run_experiments -- <ID|all> [smoke|quick|full] [--markdown]
//! ```
//!
//! `<ID>` is an experiment identifier (`FIG1`, `FIG2`, `LB1`, `LB2`, `LB3`,
//! `T10a`–`T10d`, `L9`, `T18a`, `T18b`, `X1`, `X2`, `A1`, `A2`, `FT1`) or
//! `all`. The default effort is `quick`; `full` reproduces the settings
//! recorded in EXPERIMENTS.md. With `--markdown` the tables are emitted as
//! GitHub-flavoured Markdown instead of aligned plain text.

use std::env;
use std::process::ExitCode;

use wsync_experiments::output::{Effort, ExperimentReport};
use wsync_experiments::{
    ablation, baseline_comparison, crossover, fault_tolerance, figures, lower_bounds, run_all,
    samaritan_adaptive, trapdoor_scaling, weight_bound,
};

fn run_one(id: &str, effort: Effort) -> Option<ExperimentReport> {
    let report = match id.to_ascii_uppercase().as_str() {
        "FIG1" => figures::figure1(effort),
        "FIG2" => figures::figure2(effort),
        "LB1" => lower_bounds::lb1_balls_in_bins(effort),
        "LB2" => lower_bounds::lb2_two_node(effort),
        "LB3" => lower_bounds::lb3_gap(effort),
        "T10A" => trapdoor_scaling::t10a_sweep_n(effort),
        "T10B" => trapdoor_scaling::t10b_sweep_t(effort),
        "T10C" => trapdoor_scaling::t10c_sweep_f(effort),
        "T10D" => trapdoor_scaling::t10d_properties(effort),
        "L9" => weight_bound::l9_weight_bound(effort),
        "T18A" => samaritan_adaptive::t18a_adaptive(effort),
        "T18B" => samaritan_adaptive::t18b_fallback(effort),
        "X1" => crossover::x1_crossover(effort),
        "X2" => baseline_comparison::x2_baselines(effort),
        "A1" => ablation::a1_epoch_constant(effort),
        "A2" => ablation::a2_frequency_limit(effort),
        "FT1" => fault_tolerance::ft1_leader_crash(effort),
        _ => return None,
    };
    Some(report)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let id = positional.first().map(|s| s.as_str()).unwrap_or("all");
    let effort = Effort::from_arg(positional.get(1).map(|s| s.as_str()));

    let reports: Vec<ExperimentReport> = if id.eq_ignore_ascii_case("all") {
        run_all(effort)
    } else {
        match run_one(id, effort) {
            Some(r) => vec![r],
            None => {
                eprintln!(
                    "unknown experiment id '{id}'; expected FIG1, FIG2, LB1-LB3, T10a-T10d, L9, T18a, T18b, X1, X2, A1, A2, FT1, or 'all'"
                );
                return ExitCode::FAILURE;
            }
        }
    };

    for report in &reports {
        if markdown {
            println!("{}", report.to_markdown());
        } else {
            println!("{}", report.to_plain_text());
        }
    }
    ExitCode::SUCCESS
}
