//! Command-line generator for every experiment in EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p wsync-experiments --bin run_experiments -- <ID|all> [smoke|quick|full] [--markdown]
//! cargo run --release -p wsync-experiments --bin run_experiments -- --spec <file.json> [smoke|quick|full] [--markdown] [--out <dir> [--resume]]
//! ```
//!
//! `<ID>` is an experiment identifier (`FIG1`, `FIG2`, `LB1`, `LB2`, `LB3`,
//! `T10a`–`T10d`, `L9`, `T18a`, `T18b`, `X1`, `X2`, `A1`, `A2`, `FT1`,
//! `NF1`, `NF2`) or `all`. The default effort is `quick`; `full` reproduces the settings
//! recorded in EXPERIMENTS.md. With `--markdown` the tables are emitted as
//! GitHub-flavoured Markdown instead of aligned plain text.
//!
//! `--spec <file.json>` runs a declarative scenario file (a `ScenarioSpec`
//! or a `SweepSpec`, see `examples/specs/`) with zero recompilation: the
//! protocol and adversary names resolve against the registry at run time.
//! For a bare `ScenarioSpec` the effort level picks the seed count.
//!
//! `--out <dir>` persists every completed trial of a `--spec` run into a
//! content-addressed result store (sharded JSONL files under `<dir>`).
//! `--resume` additionally serves already-stored trials from that store:
//! a sweep that was killed midway re-runs only the missing trials and
//! prints tables bit-identical to an uninterrupted run (cache totals go
//! to stderr). Without `--resume`, `--out` refuses a non-empty store so a
//! stale cache is never mixed into a run silently.

use std::env;
use std::process::ExitCode;
use std::sync::Arc;

use wsync_core::store::ResultStore;
use wsync_experiments::output::{Effort, ExperimentReport};
use wsync_experiments::{
    ablation, baseline_comparison, crossover, fault_tolerance, figures, lower_bounds,
    network_faults, run_all, run_spec_file_stored, samaritan_adaptive, trapdoor_scaling,
    weight_bound, StoreMode,
};

fn run_one(id: &str, effort: Effort) -> Option<ExperimentReport> {
    let report = match id.to_ascii_uppercase().as_str() {
        "FIG1" => figures::figure1(effort),
        "FIG2" => figures::figure2(effort),
        "LB1" => lower_bounds::lb1_balls_in_bins(effort),
        "LB2" => lower_bounds::lb2_two_node(effort),
        "LB3" => lower_bounds::lb3_gap(effort),
        "T10A" => trapdoor_scaling::t10a_sweep_n(effort),
        "T10B" => trapdoor_scaling::t10b_sweep_t(effort),
        "T10C" => trapdoor_scaling::t10c_sweep_f(effort),
        "T10D" => trapdoor_scaling::t10d_properties(effort),
        "L9" => weight_bound::l9_weight_bound(effort),
        "T18A" => samaritan_adaptive::t18a_adaptive(effort),
        "T18B" => samaritan_adaptive::t18b_fallback(effort),
        "X1" => crossover::x1_crossover(effort),
        "X2" => baseline_comparison::x2_baselines(effort),
        "A1" => ablation::a1_epoch_constant(effort),
        "A2" => ablation::a2_frequency_limit(effort),
        "FT1" => fault_tolerance::ft1_leader_crash(effort),
        "NF1" => network_faults::nf1_drop_rate(effort),
        "NF2" => network_faults::nf2_partition_healing(effort),
        _ => return None,
    };
    Some(report)
}

/// Extracts a value-taking `--flag <value>` pair from the argument list.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(value) if !value.starts_with("--") => Ok(Some(value.clone())),
            _ => Err(format!("{flag} requires an argument")),
        },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let resume = args.iter().any(|a| a == "--resume");
    let spec_path = match flag_value(&args, "--spec") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let out_dir = match flag_value(&args, "--out") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if out_dir.is_some() && spec_path.is_none() {
        eprintln!("--out is only supported together with --spec");
        return ExitCode::FAILURE;
    }
    if resume && out_dir.is_none() {
        eprintln!("--resume requires --out <dir>");
        return ExitCode::FAILURE;
    }
    let positional: Vec<&String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if *a == "--spec" || *a == "--out" {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .collect()
    };

    if let Some(path) = spec_path {
        // In spec mode the only accepted positional is an effort level; a
        // stray experiment id would otherwise be dropped silently.
        let effort_arg = positional.first().map(|s| s.as_str());
        if positional.len() > 1
            || matches!(effort_arg, Some(a) if !matches!(a, "smoke" | "quick" | "full"))
        {
            eprintln!(
                "--spec cannot be combined with an experiment id; pass only an optional \
                 effort level (smoke|quick|full), got: {}",
                positional
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            return ExitCode::FAILURE;
        }
        let effort = Effort::from_arg(effort_arg);
        let store_mode = match &out_dir {
            None => StoreMode::None,
            Some(dir) => {
                let store = match ResultStore::open(dir) {
                    Ok(store) => store,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                if resume {
                    if store.dropped_records() > 0 {
                        eprintln!(
                            "result store {dir}: dropped {} torn/corrupt record(s); the \
                             affected trials will be recomputed",
                            store.dropped_records()
                        );
                    }
                    StoreMode::Resume(Arc::new(store))
                } else if !store.is_empty() {
                    eprintln!(
                        "result store {dir} already holds {} record(s); pass --resume to \
                         continue the sweep or choose a fresh --out directory",
                        store.len()
                    );
                    return ExitCode::FAILURE;
                } else {
                    StoreMode::Record(Arc::new(store))
                }
            }
        };
        match run_spec_file_stored(&path, 0..effort.seeds(), &store_mode) {
            Ok((report, totals)) => {
                if markdown {
                    println!("{}", report.to_markdown());
                } else {
                    println!("{}", report.to_plain_text());
                }
                if let Some(dir) = &out_dir {
                    // Cache accounting goes to stderr only: stdout must stay
                    // bit-identical between fresh and resumed runs.
                    eprintln!(
                        "result store {dir}: {} trial(s) served from cache, {} executed",
                        totals.cached_trials(),
                        totals.executed_trials()
                    );
                }
                return ExitCode::SUCCESS;
            }
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
        }
    }

    let id = positional.first().map(|s| s.as_str()).unwrap_or("all");
    let effort = Effort::from_arg(positional.get(1).map(|s| s.as_str()));

    let reports: Vec<ExperimentReport> = if id.eq_ignore_ascii_case("all") {
        run_all(effort)
    } else {
        match run_one(id, effort) {
            Some(r) => vec![r],
            None => {
                eprintln!(
                    "unknown experiment id '{id}'; expected FIG1, FIG2, LB1-LB3, T10a-T10d, L9, T18a, T18b, X1, X2, A1, A2, FT1, NF1, NF2, or 'all' (or --spec <file.json>)"
                );
                return ExitCode::FAILURE;
            }
        }
    };

    for report in &reports {
        if markdown {
            println!("{}", report.to_markdown());
        } else {
            println!("{}", report.to_plain_text());
        }
    }
    ExitCode::SUCCESS
}
