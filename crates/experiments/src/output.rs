//! Experiment effort levels and report containers.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

use wsync_core::sweep::StoppingRule;
use wsync_stats::Table;

/// How much work an experiment run should do.
///
/// * `Smoke` — a few seeds and tiny parameters; used by unit tests so the
///   whole suite stays fast.
/// * `Quick` — the default of the command-line generators; minutes of work.
/// * `Full` — the publication-grade setting recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Effort {
    /// Tiny parameters, suitable for unit tests.
    Smoke,
    /// Moderate parameters (default of the binaries).
    Quick,
    /// Full parameters used for the recorded results.
    Full,
}

impl Effort {
    /// Number of seeds to average over.
    pub fn seeds(self) -> u64 {
        match self {
            Effort::Smoke => 2,
            Effort::Quick => 10,
            Effort::Full => 40,
        }
    }

    /// Scales a list of sweep points: `Smoke` keeps roughly every other
    /// point, the rest keep everything.
    pub fn thin<T: Clone>(self, points: &[T]) -> Vec<T> {
        match self {
            Effort::Smoke => points
                .iter()
                .step_by(2.max(points.len() / 3).min(points.len()))
                .cloned()
                .collect(),
            _ => points.to_vec(),
        }
    }

    /// The adaptive stopping rule for this effort level, or `None` when
    /// the fixed-count path should run.
    ///
    /// `Smoke` stays fixed: its seed counts are tiny (2) and pinned by
    /// unit tests, so there is nothing to save. `Quick` and `Full` spend
    /// the same [`Effort::seeds`] count only where the `metric`'s 95% CI
    /// is still wider than 10% of the estimate; points that settle in the
    /// first batch stop at `seeds() / 2`. Decisions land at batch
    /// boundaries, so results stay bit-identical across worker counts.
    pub fn stopping_rule(self, metric: wsync_core::sweep::StopMetric) -> Option<StoppingRule> {
        match self {
            Effort::Smoke => None,
            Effort::Quick | Effort::Full => {
                let min = (self.seeds() / 2).max(2);
                Some(
                    StoppingRule::new(metric, 0.1)
                        .relative()
                        .with_min_seeds(min)
                        .with_batch(min)
                        .with_max_seeds(self.seeds()),
                )
            }
        }
    }

    /// The seed budget matching [`Effort::stopping_rule`]: the fixed
    /// count, which the rule treats as its ceiling.
    pub fn seed_budget(self) -> std::ops::Range<u64> {
        0..self.seeds()
    }

    /// Parses an effort level from a command-line argument.
    pub fn from_arg(arg: Option<&str>) -> Self {
        match arg {
            Some("smoke") => Effort::Smoke,
            Some("full") => Effort::Full,
            _ => Effort::Quick,
        }
    }
}

/// The result of one experiment: an identifier, what it claims to reproduce,
/// the generated tables, and free-form observations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment identifier (e.g. `"T10a"`), matching EXPERIMENTS.md.
    pub id: String,
    /// The paper artefact the experiment reproduces.
    pub paper_claim: String,
    /// Generated tables.
    pub tables: Vec<Table>,
    /// Free-form observations (fit constants, pass/fail notes).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: &str, paper_claim: &str) -> Self {
        ExperimentReport {
            id: id.to_string(),
            paper_claim: paper_claim.to_string(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a table.
    pub fn push_table(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Adds a note.
    pub fn note<S: Into<String>>(&mut self, note: S) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the full report as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}\n", self.id, self.paper_claim);
        for table in &self.tables {
            out.push_str(&table.to_markdown());
            out.push('\n');
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out, "**Observations**\n");
            for note in &self.notes {
                let _ = writeln!(out, "- {note}");
            }
        }
        out
    }

    /// Renders the full report as plain text (for binaries writing to a
    /// terminal).
    pub fn to_plain_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {} — {} ===\n", self.id, self.paper_claim);
        for table in &self.tables {
            out.push_str(&table.to_plain_text());
            out.push('\n');
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }
}

/// Formats a float for table cells (re-exported convenience).
pub fn fmt(x: f64) -> String {
    wsync_stats::table::fmt_f64(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_levels_ordered() {
        assert!(Effort::Smoke.seeds() < Effort::Quick.seeds());
        assert!(Effort::Quick.seeds() < Effort::Full.seeds());
        assert_eq!(Effort::from_arg(Some("smoke")), Effort::Smoke);
        assert_eq!(Effort::from_arg(Some("full")), Effort::Full);
        assert_eq!(Effort::from_arg(None), Effort::Quick);
        assert_eq!(Effort::from_arg(Some("bogus")), Effort::Quick);
    }

    #[test]
    fn thinning_reduces_points_only_for_smoke() {
        let points = vec![1, 2, 3, 4, 5, 6];
        assert!(Effort::Smoke.thin(&points).len() < points.len());
        assert_eq!(Effort::Quick.thin(&points), points);
        assert_eq!(Effort::Full.thin(&points), points);
    }

    #[test]
    fn report_renders_markdown_and_text() {
        let mut report = ExperimentReport::new("T10a", "Theorem 10 scaling in N");
        let mut table = Table::new("demo", &["n", "rounds"]);
        table.push_row(vec!["8", "120"]);
        report.push_table(table);
        report.note("ratio ≈ 1.4");
        let md = report.to_markdown();
        assert!(md.contains("## T10a"));
        assert!(md.contains("| n | rounds |"));
        assert!(md.contains("- ratio"));
        let txt = report.to_plain_text();
        assert!(txt.contains("=== T10a"));
        assert!(txt.contains("note: ratio"));
    }
}
