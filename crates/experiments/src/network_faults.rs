//! NF1/NF2 — synchronization under composable network faults.
//!
//! The paper's adversary only disrupts frequencies; these experiments layer
//! the fault subsystem of `wsync-radio` on top of a jamming adversary and
//! measure how the Trapdoor Protocol degrades and recovers:
//!
//! * **NF1** sweeps the `"drop"` layer's `drop_rate` as a grid axis and
//!   tables sync time against message-loss intensity (a `drop_rate` of 0
//!   is pinned bit-identical to the fault-free run by
//!   `tests/fault_properties.rs`, so the first row doubles as a baseline).
//! * **NF2** splits the network into two static partitions and sweeps the
//!   healing round `heal_at`, tracing the recovery curve — how late the
//!   partition can heal before the protocol misses its sync window.
//!
//! Both sweeps drive fault parameters through ordinary
//! [`SweepSpec`] axes
//! (`fault.<name>.<param>`), exercising the same declarative path spec
//! files use.

use wsync_core::json::Value;
use wsync_core::spec::{ComponentSpec, ScenarioSpec, SweepSpec};
use wsync_core::sweep::{StopMetric, SweepRunner};
use wsync_stats::Table;

use crate::output::{fmt, Effort, ExperimentReport};

/// NF1 — mean sync time of the Trapdoor Protocol as the `"drop"` fault
/// layer's loss rate rises, stacked on a `random` jamming adversary.
pub fn nf1_drop_rate(effort: Effort) -> ExperimentReport {
    let n_nodes = 8usize;
    let f = 8u32;
    let t = 2u32;
    let seeds = effort.seeds();
    let rates: Vec<f64> = match effort {
        Effort::Smoke => vec![0.0, 0.3],
        Effort::Quick => vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5],
        Effort::Full => vec![0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7],
    };
    let mut report = ExperimentReport::new(
        "NF1",
        "sync time vs message-loss rate (drop fault layer stacked on a random jammer)",
    );
    let base = ScenarioSpec::new("trapdoor", n_nodes, f, t)
        .with_adversary("random")
        .with_fault("drop")
        .with_max_rounds(200_000);
    let mut sweep = SweepSpec::new(base, 0..seeds).with_axis(
        "fault.drop.drop_rate",
        rates.iter().map(|&r| r.into()).collect(),
    );
    // Quick/Full runs stop each drop-rate point once its completion-round
    // CI is tight; the stop rule travels inside the SweepSpec, so the
    // spec-file and fabric paths make the identical decisions.
    if let Some(rule) = effort.stopping_rule(StopMetric::CompletionRoundsMean) {
        sweep = sweep.with_stop(rule);
    }
    let result = SweepRunner::new().run(&sweep).expect("valid fault sweep");
    let mut table = Table::new(
        format!("Trapdoor sync time vs drop rate (n={n_nodes}, F={f}, t={t}, random jammer)"),
        &[
            "drop_rate",
            "synced",
            "rounds to sync (mean)",
            "completion (mean)",
            "slowdown vs lossless",
        ],
    );
    let baseline = result.points[0].stats.completion_rounds.mean;
    for (point, &rate) in result.points.iter().zip(&rates) {
        let s = &point.stats;
        table.push_row(vec![
            fmt(rate),
            format!("{}/{}", s.synced, s.trials),
            fmt(s.rounds_to_sync.mean),
            fmt(s.completion_rounds.mean),
            fmt(s.completion_rounds.mean / baseline.max(1.0)),
        ]);
    }
    report.push_table(table);
    if let Some(note) = crate::adaptive_note(&result, &(0..seeds)) {
        report.note(note);
    }
    let worst = result.points.last().expect("at least one sweep point");
    report.note(format!(
        "at drop_rate={} the protocol still synchronized {}/{} trials, {}x slower than lossless — loss thins solo deliveries uniformly, so the knockout structure survives and only the constant degrades",
        fmt(*rates.last().expect("at least one rate")),
        worst.stats.synced,
        worst.stats.trials,
        fmt(worst.stats.completion_rounds.mean / baseline.max(1.0)),
    ));
    report
}

/// NF2 — the partition-healing recovery curve: two halves of the network
/// are severed until round `heal_at`; the table traces how sync time and
/// success rate depend on how long the partition lasted.
pub fn nf2_partition_healing(effort: Effort) -> ExperimentReport {
    let n_nodes = 8usize;
    let f = 8u32;
    let t = 2u32;
    let seeds = effort.seeds();
    let heals: Vec<u64> = match effort {
        Effort::Smoke => vec![0, 256],
        Effort::Quick => vec![0, 32, 128, 512, 2048],
        Effort::Full => vec![0, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096],
    };
    let mut report = ExperimentReport::new(
        "NF2",
        "partition-healing recovery: sync after two network halves rejoin at heal_at",
    );
    // Halves [0..4) and [4..8); the axis sweeps only the healing round.
    let groups = Value::Array(vec![
        Value::Array((0..4u32).map(Value::from).collect()),
        Value::Array((4..8u32).map(Value::from).collect()),
    ]);
    let base = ScenarioSpec::new("trapdoor", n_nodes, f, t)
        .with_adversary("random")
        .with_fault(ComponentSpec::named("partition").with("groups", groups))
        .with_max_rounds(50_000);
    let sweep = SweepSpec::new(base, 0..seeds).with_axis(
        "fault.partition.heal_at",
        heals.iter().map(|&h| h.into()).collect(),
    );
    let result = SweepRunner::new().run(&sweep).expect("valid healing sweep");
    let mut table = Table::new(
        format!(
            "Trapdoor recovery after a 4|4 partition heals (n={n_nodes}, F={f}, t={t}, random jammer)"
        ),
        &[
            "heal_at",
            "synced",
            "single leader",
            "rounds to sync (mean)",
            "completion (mean)",
        ],
    );
    for (point, &heal) in result.points.iter().zip(&heals) {
        let s = &point.stats;
        table.push_row(vec![
            heal.to_string(),
            format!("{}/{}", s.synced, s.trials),
            format!("{}/{}", s.single_leader, s.trials),
            fmt(s.rounds_to_sync.mean),
            fmt(s.completion_rounds.mean),
        ]);
    }
    report.push_table(table);
    let unified = result
        .points
        .iter()
        .filter(|p| p.stats.single_leader == p.stats.trials)
        .count();
    report.note(format!(
        "{unified}/{} healing rounds kept a single leader in every trial; once the partition outlives the halves' independent knockout tournaments, each half elects its own leader and the network ends split-brain — the severed counter in the fault-counters probe shows exactly how many cross-half deliveries the partition ate",
        heals.len()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nf1_smoke_produces_a_row_per_rate_and_a_lossless_baseline() {
        let report = nf1_drop_rate(Effort::Smoke);
        assert_eq!(report.tables[0].len(), 2);
        let rows = report.tables[0].rows();
        // the lossless row is its own baseline
        assert_eq!(rows[0][4], fmt(1.0));
        // every smoke trial of the lossless cell synchronizes
        assert_eq!(rows[0][1], "2/2");
    }

    #[test]
    fn nf2_smoke_produces_a_row_per_healing_round() {
        let report = nf2_partition_healing(Effort::Smoke);
        assert_eq!(report.tables[0].len(), 2);
        // an immediately-healed partition behaves like no partition at all
        assert_eq!(report.tables[0].rows()[0][1], "2/2");
    }
}
