//! Experiment harness for the PODC 2009 wireless-synchronization
//! reproduction.
//!
//! Each submodule regenerates one artefact of the paper (a figure, a
//! theorem's claimed bound, or a design ablation); `EXPERIMENTS.md` at the
//! workspace root records the mapping and the measured outcomes. Every
//! experiment exposes a function taking an [`Effort`] level and returning
//! one or more [`wsync_stats::Table`]s so that the same code backs the
//! `src/bin/*` command-line generators, the Criterion benches, and the
//! integration tests.
//!
//! | Module | Experiment ids | Paper artefact |
//! |---|---|---|
//! | [`figures`] | FIG1, FIG2 | Figure 1 and Figure 2 (protocol schedules) |
//! | [`trapdoor_scaling`] | T10a–T10d | Theorem 10 (Trapdoor running time, agreement) |
//! | [`samaritan_adaptive`] | T18a, T18b | Theorem 18 (Good Samaritan adaptivity and fallback) |
//! | [`lower_bounds`] | LB1, LB2, LB3 | Lemma 2 / Claim 3, Theorem 4, Theorem 5 gap |
//! | [`weight_bound`] | L9 | Lemma 9 (broadcast-weight self-regulation) |
//! | [`crossover`] | X1 | Good Samaritan vs Trapdoor crossover |
//! | [`baseline_comparison`] | X2 | baselines under jamming |
//! | [`ablation`] | A1, A2 | epoch-constant and `F′` ablations |
//! | [`fault_tolerance`] | FT1 | Section 8 leader-crash discussion |
//! | [`network_faults`] | NF1, NF2 | robustness beyond the model: loss and partition faults |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod baseline_comparison;
pub mod crossover;
pub mod fault_tolerance;
pub mod figures;
pub mod lower_bounds;
pub mod network_faults;
pub mod output;
pub mod samaritan_adaptive;
pub mod spec_run;
pub mod trapdoor_scaling;
pub mod weight_bound;

pub use output::{Effort, ExperimentReport};
pub use spec_run::{
    run_spec, run_spec_file, run_spec_file_stored, run_spec_stored, SpecFile, StoreMode,
};

/// Runs an experiment grid at the given effort level: fixed-count at
/// `Smoke` (whose tiny seed totals are pinned by unit tests), adaptive at
/// `Quick`/`Full` via [`Effort::stopping_rule`] — each point stops as soon
/// as the `metric`'s confidence interval is narrower than 10% of its
/// estimate, with the fixed seed count as the ceiling. Decisions land at
/// batch boundaries, so the produced tables are bit-identical across
/// worker counts and schedule perturbations.
pub fn run_effort_grid(
    points: Vec<(String, wsync_core::spec::ScenarioSpec)>,
    seeds: std::ops::Range<u64>,
    effort: Effort,
    metric: wsync_core::sweep::StopMetric,
) -> wsync_core::sweep::SweepReport {
    use wsync_core::sweep::SweepRunner;
    match effort.stopping_rule(metric) {
        None => SweepRunner::new().run_points(points, seeds),
        Some(rule) => SweepRunner::new().run_points_adaptive(points, seeds, &rule),
    }
    .expect("valid experiment specs")
}

/// A one-line summary of an adaptive grid's trial savings, for report
/// notes, or `None` when the run was fixed-count (nothing stopped early).
pub fn adaptive_note(
    sweep: &wsync_core::sweep::SweepReport,
    seeds: &std::ops::Range<u64>,
) -> Option<String> {
    let stopped = sweep.stopped_early_points();
    if stopped == 0 {
        return None;
    }
    let budget = (seeds.end - seeds.start) * sweep.points.len() as u64;
    Some(format!(
        "adaptive stopping: {}/{} budgeted trial(s) used; {}/{} point(s) stopped early",
        sweep.total_trials(),
        budget,
        stopped,
        sweep.points.len()
    ))
}

/// Runs every experiment at the given effort level and returns the reports
/// in EXPERIMENTS.md order.
pub fn run_all(effort: Effort) -> Vec<ExperimentReport> {
    let mut reports = vec![
        figures::figure1(effort),
        figures::figure2(effort),
        lower_bounds::lb1_balls_in_bins(effort),
        lower_bounds::lb2_two_node(effort),
        lower_bounds::lb3_gap(effort),
    ];
    reports.push(trapdoor_scaling::t10a_sweep_n(effort));
    reports.push(trapdoor_scaling::t10b_sweep_t(effort));
    reports.push(trapdoor_scaling::t10c_sweep_f(effort));
    reports.push(trapdoor_scaling::t10d_properties(effort));
    reports.push(weight_bound::l9_weight_bound(effort));
    reports.push(samaritan_adaptive::t18a_adaptive(effort));
    reports.push(samaritan_adaptive::t18b_fallback(effort));
    reports.push(crossover::x1_crossover(effort));
    reports.push(baseline_comparison::x2_baselines(effort));
    reports.push(ablation::a1_epoch_constant(effort));
    reports.push(ablation::a2_frequency_limit(effort));
    reports.push(fault_tolerance::ft1_leader_crash(effort));
    reports.push(network_faults::nf1_drop_rate(effort));
    reports.push(network_faults::nf2_partition_healing(effort));
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_all_smoke_produces_every_report() {
        let reports = run_all(Effort::Smoke);
        assert_eq!(reports.len(), 19);
        for r in &reports {
            assert!(!r.id.is_empty());
            assert!(!r.tables.is_empty(), "{} has no tables", r.id);
            for t in &r.tables {
                assert!(!t.is_empty(), "{}: empty table {}", r.id, t.title());
            }
        }
    }
}
