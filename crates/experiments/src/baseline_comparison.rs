//! X2 — the paper's protocols against the baseline protocols under
//! increasing jamming.
//!
//! The baselines (multi-frequency wake-up, deterministic round-robin
//! hopping, single-frequency Trapdoor) capture what a practitioner might
//! deploy without the paper's machinery; the experiment quantifies where
//! they break: the single-frequency variant degenerates as soon as `t ≥ 1`,
//! the wake-up baseline needs a conservative fixed deadline, and the
//! deterministic hopper is vulnerable to synchronized-collision patterns.

use wsync_core::batch::BatchStats;
use wsync_core::spec::ScenarioSpec;
use wsync_core::sweep::StopMetric;
use wsync_stats::Table;

use crate::output::{fmt, Effort, ExperimentReport};

/// One protocol's aggregate behaviour over several seeds.
#[derive(Debug, Clone, Copy)]
pub struct BaselineRow {
    /// Mean completion round over the runs that completed.
    pub mean_completion: f64,
    /// Fraction of runs in which every node synchronized.
    pub sync_rate: f64,
    /// Fraction of runs that were clean (synced, one leader, no safety
    /// violations).
    pub clean_rate: f64,
}

impl BaselineRow {
    fn from_stats(stats: &BatchStats) -> Self {
        BaselineRow {
            mean_completion: stats.completion_rounds.mean,
            sync_rate: stats.sync_rate(),
            clean_rate: stats.clean_rate(),
        }
    }
}

/// X2 — completion time and correctness of every protocol as `t` grows.
pub fn x2_baselines(effort: Effort) -> ExperimentReport {
    let n_nodes = 16usize;
    let f = 16u32;
    let seeds = effort.seeds();
    let ts: Vec<u32> = match effort {
        Effort::Smoke => vec![0, 6],
        Effort::Quick => vec![0, 4, 8, 12],
        Effort::Full => vec![0, 2, 4, 8, 12, 14],
    };
    let protocols = ["trapdoor", "wakeup", "round-robin", "single-frequency"];
    let mut report = ExperimentReport::new(
        "X2",
        "Baseline comparison under jamming: Trapdoor vs wake-up-style vs round-robin hopping vs single-frequency",
    );
    let mut table = Table::new(
        format!("Protocol comparison (n={n_nodes}, F={f}, random adversary, completion rounds / sync rate / clean rate)"),
        &["t", "protocol", "mean completion", "sync rate", "clean rate"],
    );
    // The full t × protocol grid runs as one work-stealing sweep, so the
    // slow starving baselines cannot serialize the experiment.
    let mut labels = Vec::new();
    let mut points = Vec::new();
    for &t in &ts {
        for protocol in protocols {
            // Cap the run length so the starving single-frequency baseline
            // does not dominate the experiment's running time.
            let spec = ScenarioSpec::new(protocol, n_nodes, f, t)
                .with_adversary("random")
                .with_max_rounds(60_000);
            labels.push((t, protocol));
            points.push((format!("t={t}/{protocol}"), spec));
        }
    }
    let sweep = crate::run_effort_grid(points, 0..seeds, effort, StopMetric::CompletionRoundsMean);
    for ((t, protocol), point) in labels.into_iter().zip(&sweep.points) {
        let row = BaselineRow::from_stats(&point.stats);
        table.push_row(vec![
            t.to_string(),
            protocol.to_string(),
            fmt(row.mean_completion),
            format!("{:.0}%", row.sync_rate * 100.0),
            format!("{:.0}%", row.clean_rate * 100.0),
        ]);
    }
    report.push_table(table);
    if let Some(note) = crate::adaptive_note(&sweep, &(0..seeds)) {
        report.note(note);
    }
    report.note("the Trapdoor Protocol should keep a near-100% clean rate at every t, while the single-frequency baseline degenerates (many self-elected leaders) once t ≥ 1 and the deterministic hopper loses clean runs to repeated collisions");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x2_smoke_has_four_protocols_per_t() {
        let report = x2_baselines(Effort::Smoke);
        assert_eq!(report.tables[0].len(), 2 * 4);
    }

    #[test]
    fn trapdoor_is_clean_without_jamming() {
        let report = x2_baselines(Effort::Smoke);
        let row = report.tables[0]
            .rows()
            .iter()
            .find(|r| r[0] == "0" && r[1] == "trapdoor")
            .unwrap()
            .clone();
        assert_eq!(row[4], "100%", "trapdoor should be clean at t=0: {row:?}");
    }
}
