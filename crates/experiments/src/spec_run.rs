//! Running declarative JSON spec files: the `run_experiments --spec` path.
//!
//! A spec file holds either a single [`ScenarioSpec`] or a [`SweepSpec`]
//! (recognised by its `"base"` key). Either way the file runs with zero
//! recompilation: names resolve against the registry, all (grid point ×
//! seed) trials stream through a [`SweepRunner`] with work stealing across
//! cores, and the aggregate statistics come back as an
//! [`ExperimentReport`] table — the same output path as the built-in
//! experiments. Example files live under `examples/specs/`.
//!
//! With `--out <dir>` the runner persists every completed trial into a
//! content-addressed [`ResultStore`]; with `--resume` it additionally
//! serves already-stored trials from that store, so an interrupted sweep
//! re-runs only what is missing and reproduces the uninterrupted tables
//! bit for bit (the cache totals go to stderr, never into the report, so
//! resumed and fresh runs print identical tables).
//!
//! A spec that declares `"probes": [...]` runs every executed trial with
//! those probes attached to the engine's probe stack; the report gains one
//! probe table showing each probe's finalized output on the first executed
//! seed of every sweep point (probes observe live executions, so trials
//! served wholly from a resume cache contribute no probe rows — the
//! outcome tables themselves stay bit-identical either way).

use std::sync::Arc;

use wsync_core::json;
use wsync_core::registry::ProbeOutput;
use wsync_core::spec::{ScenarioSpec, SpecError, SweepSpec};
use wsync_core::store::ResultStore;
use wsync_core::sweep::{SweepError, SweepReport, SweepRunner};
use wsync_stats::Table;

use crate::output::{fmt, ExperimentReport};

/// A parsed spec file: either one scenario or a sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecFile {
    /// A single scenario cell.
    Scenario(ScenarioSpec),
    /// A seed range and parameter grid over a base scenario.
    Sweep(SweepSpec),
}

impl SpecFile {
    /// Parses spec-file JSON. An object with a `"base"` key is a
    /// [`SweepSpec`]; anything else must be a [`ScenarioSpec`].
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let value = json::parse(text)?;
        if value.get("base").is_some() {
            SweepSpec::from_value(&value).map(SpecFile::Sweep)
        } else {
            ScenarioSpec::from_value(&value).map(SpecFile::Scenario)
        }
    }

    /// The sweep this file describes; a bare scenario becomes a gridless
    /// sweep over `default_seeds`.
    pub fn into_sweep(self, default_seeds: std::ops::Range<u64>) -> SweepSpec {
        match self {
            SpecFile::Sweep(sweep) => sweep,
            SpecFile::Scenario(spec) => SweepSpec::new(spec, default_seeds),
        }
    }
}

/// How a spec run should use a persistent [`ResultStore`], if at all.
#[derive(Debug, Clone, Default)]
pub enum StoreMode {
    /// No persistence: every trial executes, nothing is written.
    #[default]
    None,
    /// Record every completed trial into the store but execute everything
    /// (`--out` without `--resume`).
    Record(Arc<ResultStore>),
    /// Record trials *and* serve already-stored ones from the cache
    /// (`--out` with `--resume`).
    Resume(Arc<ResultStore>),
}

impl StoreMode {
    fn runner(&self) -> SweepRunner {
        match self {
            StoreMode::None => SweepRunner::new(),
            StoreMode::Record(store) => SweepRunner::new().record_only(Arc::clone(store)),
            StoreMode::Resume(store) => SweepRunner::new().store(Arc::clone(store)),
        }
    }
}

/// Runs a parsed spec file and renders one aggregate row per sweep point.
///
/// `source` labels the report (typically the file name); `default_seeds`
/// applies when the file is a bare [`ScenarioSpec`] without a seed range.
pub fn run_spec(
    file: SpecFile,
    source: &str,
    default_seeds: std::ops::Range<u64>,
) -> Result<ExperimentReport, SpecError> {
    match run_spec_stored(file, source, default_seeds, &StoreMode::None) {
        Ok((report, _)) => Ok(report),
        Err(SweepError::Spec(e)) => Err(e),
        Err(SweepError::Store(e)) => unreachable!("storeless run raised a store error: {e}"),
    }
}

/// Runs a parsed spec file with optional store persistence, returning both
/// the rendered report and the [`SweepReport`] (per-point cache/executed
/// totals). The rendered **outcome tables** are independent of the store
/// mode — a resumed run prints them bit-identical to an uninterrupted one;
/// cache accounting lives only in the returned [`SweepReport`]. The probe
/// table (present only when the spec declares `"probes"`) is the one
/// store-dependent section: probes observe live executions, so a point
/// whose trials were all served from the cache reports a placeholder row
/// instead of probe output.
pub fn run_spec_stored(
    file: SpecFile,
    source: &str,
    default_seeds: std::ops::Range<u64>,
    store: &StoreMode,
) -> Result<(ExperimentReport, SweepReport), SweepError> {
    let sweep = file.into_sweep(default_seeds);
    // For a fixed-count sweep this is the declared range; with a `"stop"`
    // rule it is the adaptive seed *budget* (see SweepSpec::effective_seeds).
    let seeds = sweep.effective_seeds()?;
    let points: Vec<(String, ScenarioSpec)> = sweep
        .expand()
        .map_err(SweepError::Spec)?
        .into_iter()
        .map(|point| (point.label, point.spec))
        .collect();
    // One probe-output sample per point: each point's first seed runs
    // probed, the remaining trials skip the probe overhead entirely.
    let mut probe_samples: Vec<Option<Vec<ProbeOutput>>> = vec![None; points.len()];
    let runner = store.runner();
    let mut sample = |point: usize, probes: Option<&[ProbeOutput]>| {
        if probe_samples[point].is_none() {
            if let Some(outputs) = probes {
                probe_samples[point] = Some(outputs.to_vec());
            }
        }
    };
    let result = match &sweep.stop {
        None => {
            runner.run_points_probed_first_each(points, seeds.clone(), |point, _, probes| {
                sample(point, probes)
            })?
        }
        Some(rule) => runner.run_points_adaptive_probed_first_each(
            points,
            seeds.clone(),
            rule,
            |point, _, probes| sample(point, probes),
        )?,
    };
    let mut report = ExperimentReport::new("SPEC", &format!("declarative scenario run: {source}"));
    let mut table = Table::new(
        format!(
            "{} (seeds {}..{})",
            sweep.base.protocol.name(),
            seeds.start,
            seeds.end
        ),
        &[
            "point",
            "protocol",
            "adversary",
            "trials",
            "sync rate",
            "single leader",
            "clean rate",
            "mean completion",
        ],
    );
    for point in &result.points {
        let stats = &point.stats;
        table.push_row(vec![
            if point.label.is_empty() {
                "(base)".to_string()
            } else {
                point.label.clone()
            },
            point.spec.protocol.name().to_string(),
            point.spec.adversary.name().to_string(),
            stats.trials.to_string(),
            format!("{:.0}%", stats.sync_rate() * 100.0),
            format!("{:.0}%", stats.single_leader_rate() * 100.0),
            format!("{:.0}%", stats.clean_rate() * 100.0),
            fmt(stats.completion_rounds.mean),
        ]);
    }
    report.push_table(table);
    if !sweep.base.probes.is_empty() {
        let mut probe_table = Table::new(
            "probe outputs (first executed seed per point)",
            &["point", "probe", "output"],
        );
        for (point, sample) in result.points.iter().zip(&probe_samples) {
            let label = if point.label.is_empty() {
                "(base)".to_string()
            } else {
                point.label.clone()
            };
            match sample {
                Some(outputs) => {
                    for output in outputs {
                        probe_table.push_row(vec![
                            label.clone(),
                            output.name.clone(),
                            output.value.to_json_compact(),
                        ]);
                    }
                }
                None => {
                    probe_table.push_row(vec![
                        label,
                        "-".to_string(),
                        "(all trials served from cache; probes observe live executions only)"
                            .to_string(),
                    ]);
                }
            }
        }
        report.push_table(probe_table);
    }
    report.note(format!(
        "{} sweep point(s) × {} seed(s), streamed through SweepRunner with zero recompilation",
        result.points.len(),
        seeds.end - seeds.start
    ));
    // The adaptive note uses only resume-invariant numbers (seeds used =
    // cached + executed, stop counts), so fresh and resumed runs print
    // bit-identical reports here too.
    if sweep.stop.is_some() {
        let budget = (seeds.end - seeds.start) * result.points.len() as u64;
        report.note(format!(
            "adaptive stopping: {}/{} budgeted trial(s) used; {}/{} point(s) stopped early",
            result.total_trials(),
            budget,
            result.stopped_early_points(),
            result.points.len()
        ));
    }
    Ok((report, result))
}

/// Reads, parses, and runs a spec file from disk.
pub fn run_spec_file(
    path: &str,
    default_seeds: std::ops::Range<u64>,
) -> Result<ExperimentReport, String> {
    run_spec_file_stored(path, default_seeds, &StoreMode::None).map(|(report, _)| report)
}

/// Reads, parses, and runs a spec file from disk with optional store
/// persistence (the `--out` / `--resume` path of `run_experiments`).
pub fn run_spec_file_stored(
    path: &str,
    default_seeds: std::ops::Range<u64>,
    store: &StoreMode,
) -> Result<(ExperimentReport, SweepReport), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read spec file {path}: {e}"))?;
    let file = SpecFile::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    run_spec_stored(file, path, default_seeds, store).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCENARIO_JSON: &str = r#"{
        "protocol": "trapdoor",
        "adversary": "random",
        "num_nodes": 8,
        "num_frequencies": 8,
        "disruption_bound": 2
    }"#;

    const SWEEP_JSON: &str = r#"{
        "base": {
            "protocol": "trapdoor",
            "adversary": "random",
            "num_nodes": 8,
            "num_frequencies": 8,
            "disruption_bound": 2
        },
        "seeds": {"start": 0, "end": 3},
        "grid": [{"field": "disruption_bound", "values": [1, 2]}]
    }"#;

    #[test]
    fn scenario_file_runs_with_default_seeds() {
        let file = SpecFile::parse(SCENARIO_JSON).unwrap();
        assert!(matches!(file, SpecFile::Scenario(_)));
        let report = run_spec(file, "inline", 0..2).unwrap();
        let rows = report.tables[0].rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], "(base)");
        assert_eq!(rows[0][3], "2");
    }

    #[test]
    fn sweep_file_expands_into_labelled_rows() {
        let file = SpecFile::parse(SWEEP_JSON).unwrap();
        assert!(matches!(file, SpecFile::Sweep(_)));
        let report = run_spec(file, "inline", 0..99).unwrap();
        let rows = report.tables[0].rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], "disruption_bound=1");
        assert_eq!(rows[1][0], "disruption_bound=2");
        // the sweep's own seed range wins over the default
        assert_eq!(rows[0][3], "3");
    }

    #[test]
    fn stored_spec_runs_resume_with_identical_reports() {
        let dir = std::env::temp_dir().join(format!(
            "wsync-specrun-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let fresh = run_spec(SpecFile::parse(SWEEP_JSON).unwrap(), "inline", 0..1).unwrap();

        let store = Arc::new(ResultStore::open(&dir).unwrap());
        let (recorded, totals) = run_spec_stored(
            SpecFile::parse(SWEEP_JSON).unwrap(),
            "inline",
            0..1,
            &StoreMode::Record(store),
        )
        .unwrap();
        assert_eq!(totals.executed_trials(), 6);
        assert_eq!(recorded.to_markdown(), fresh.to_markdown());

        let store = Arc::new(ResultStore::open(&dir).unwrap());
        let (resumed, totals) = run_spec_stored(
            SpecFile::parse(SWEEP_JSON).unwrap(),
            "inline",
            0..1,
            &StoreMode::Resume(store),
        )
        .unwrap();
        assert_eq!(totals.executed_trials(), 0);
        assert_eq!(totals.cached_trials(), 6);
        assert_eq!(resumed.to_markdown(), fresh.to_markdown());
        let _ = std::fs::remove_dir_all(&dir);
    }

    const ADAPTIVE_SWEEP_JSON: &str = r#"{
        "base": {
            "protocol": "trapdoor",
            "adversary": "random",
            "num_nodes": 8,
            "num_frequencies": 8,
            "disruption_bound": 2
        },
        "seeds": {"start": 0, "end": 32},
        "grid": [{"field": "disruption_bound", "values": [1, 2]}],
        "stop": {"metric": "sync_rate", "half_width": 0.3, "min_seeds": 4, "batch": 4}
    }"#;

    #[test]
    fn adaptive_spec_stops_early_and_resumes_bit_identically() {
        let dir = std::env::temp_dir().join(format!(
            "wsync-specrun-adaptive-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let fresh = run_spec(
            SpecFile::parse(ADAPTIVE_SWEEP_JSON).unwrap(),
            "inline",
            0..1,
        )
        .unwrap();
        // the adaptive note reports trial savings against the budget
        assert!(
            fresh.notes.iter().any(|n| n.contains("adaptive stopping")),
            "{:?}",
            fresh.notes
        );

        let store = Arc::new(ResultStore::open(&dir).unwrap());
        let (recorded, totals) = run_spec_stored(
            SpecFile::parse(ADAPTIVE_SWEEP_JSON).unwrap(),
            "inline",
            0..1,
            &StoreMode::Record(store),
        )
        .unwrap();
        assert!(totals.executed_trials() < 64, "no early stop happened");
        assert_eq!(recorded.to_markdown(), fresh.to_markdown());

        let store = Arc::new(ResultStore::open(&dir).unwrap());
        let (resumed, totals) = run_spec_stored(
            SpecFile::parse(ADAPTIVE_SWEEP_JSON).unwrap(),
            "inline",
            0..1,
            &StoreMode::Resume(store),
        )
        .unwrap();
        // cached trials count toward the rule: zero re-execution, and the
        // rendered report (tables and notes alike) is byte-identical
        assert_eq!(totals.executed_trials(), 0);
        assert_eq!(resumed.to_markdown(), fresh.to_markdown());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_spec_files_produce_typed_errors() {
        assert!(SpecFile::parse("not json").is_err());
        let err = SpecFile::parse(
            r#"{"protocol": "warp-drive", "num_nodes": 4,
            "num_frequencies": 8, "disruption_bound": 2}"#,
        )
        .map(|file| run_spec(file, "inline", 0..1))
        .unwrap()
        .expect_err("unknown protocol must fail");
        assert!(err.to_string().contains("warp-drive"), "{err}");
    }
}
