//! X1 — the crossover between the Good Samaritan Protocol and the Trapdoor
//! Protocol as a function of the *actual* disruption level `t′`.
//!
//! Section 7's motivation: real networks usually see far less interference
//! than the worst-case bound `t`, and the Good Samaritan Protocol exploits
//! that — it should win for small `t′` and lose (by roughly a `log N`
//! factor) when `t′` approaches `t`.

use wsync_core::spec::{ComponentSpec, ScenarioSpec};
use wsync_core::sweep::StopMetric;
use wsync_radio::activation::ActivationSchedule;
use wsync_stats::Table;

use crate::output::{fmt, Effort, ExperimentReport};

/// X1 — mean completion rounds of both protocols as `t′` sweeps from 1 to
/// `t`, everything else held fixed.
pub fn x1_crossover(effort: Effort) -> ExperimentReport {
    let n_nodes = 8usize;
    let f = 16u32;
    let t = 8u32;
    let seeds = effort.seeds();
    let t_actuals: Vec<u32> = match effort {
        Effort::Smoke => vec![1, 8],
        Effort::Quick => vec![1, 2, 4, 6, 8],
        Effort::Full => vec![1, 2, 3, 4, 5, 6, 7, 8],
    };
    let mut report = ExperimentReport::new(
        "X1",
        "Good Samaritan vs Trapdoor crossover as the actual disruption t' varies (both configured for worst-case t)",
    );
    let mut table = Table::new(
        format!("Completion rounds (n={n_nodes}, F={f}, worst-case t={t}, simultaneous wake-up)"),
        &[
            "t'",
            "Good Samaritan (mean)",
            "Trapdoor (mean)",
            "GS / Trapdoor",
            "winner",
        ],
    );
    // Both protocols at every disruption level form one work-stealing
    // sweep: grid points are interleaved (GS, Trapdoor) per t'.
    let mut points = Vec::new();
    for &t_actual in &t_actuals {
        let base = ScenarioSpec::new("good-samaritan", n_nodes, f, t)
            .with_adversary(
                ComponentSpec::named("oblivious-random").with("t_actual", u64::from(t_actual)),
            )
            .with_activation(ActivationSchedule::Simultaneous);
        let td_spec = ScenarioSpec {
            protocol: ComponentSpec::named("trapdoor"),
            ..base.clone()
        };
        points.push((format!("gs t'={t_actual}"), base));
        points.push((format!("td t'={t_actual}"), td_spec));
    }
    let sweep = crate::run_effort_grid(points, 0..seeds, effort, StopMetric::CompletionRoundsMean);
    let mut gs_wins = 0usize;
    for (i, &t_actual) in t_actuals.iter().enumerate() {
        let gs = sweep.points[2 * i].stats.completion_rounds.mean;
        let td = sweep.points[2 * i + 1].stats.completion_rounds.mean;
        let winner = if gs < td {
            "good-samaritan"
        } else {
            "trapdoor"
        };
        if gs < td {
            gs_wins += 1;
        }
        table.push_row(vec![
            t_actual.to_string(),
            fmt(gs),
            fmt(td),
            fmt(gs / td.max(1.0)),
            winner.to_string(),
        ]);
    }
    report.push_table(table);
    if let Some(note) = crate::adaptive_note(&sweep, &(0..seeds)) {
        report.note(note);
    }
    report.note(format!(
        "Good Samaritan wins at {gs_wins}/{} disruption levels; the paper predicts it wins for small t' and the Trapdoor Protocol wins (by up to a logN factor) near t' ≈ t",
        t_actuals.len()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x1_smoke_produces_row_per_t_actual() {
        let report = x1_crossover(Effort::Smoke);
        assert_eq!(report.tables[0].len(), 2);
        for row in report.tables[0].rows() {
            assert!(row[4] == "good-samaritan" || row[4] == "trapdoor");
        }
    }
}
