//! Simple fixed-width and logarithmic histograms for experiment output.

use serde::{Deserialize, Serialize};

/// One bin of a [`Histogram`]: the half-open range `[lower, upper)` and the
/// number of samples that fell into it. The final bin is closed on the right.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramBin {
    /// Inclusive lower edge.
    pub lower: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub upper: f64,
    /// Number of samples in the bin.
    pub count: usize,
}

/// A histogram over `f64` samples with either linear or logarithmic bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bins: Vec<HistogramBin>,
    total: usize,
    out_of_range: usize,
}

impl Histogram {
    /// Builds a histogram with `num_bins` equal-width bins spanning
    /// `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `num_bins == 0` or `max <= min`.
    pub fn linear(min: f64, max: f64, num_bins: usize) -> Self {
        assert!(num_bins > 0, "Histogram::linear: num_bins must be positive");
        assert!(max > min, "Histogram::linear: max must exceed min");
        let width = (max - min) / num_bins as f64;
        let bins = (0..num_bins)
            .map(|i| HistogramBin {
                lower: min + i as f64 * width,
                upper: min + (i + 1) as f64 * width,
                count: 0,
            })
            .collect();
        Histogram {
            bins,
            total: 0,
            out_of_range: 0,
        }
    }

    /// Builds a histogram whose bin edges are powers of two starting at
    /// `1.0`: `[1,2), [2,4), …` with `num_bins` bins. Useful for round-count
    /// distributions.
    ///
    /// # Panics
    ///
    /// Panics if `num_bins == 0`.
    pub fn powers_of_two(num_bins: usize) -> Self {
        assert!(
            num_bins > 0,
            "Histogram::powers_of_two: num_bins must be positive"
        );
        let bins = (0..num_bins)
            .map(|i| HistogramBin {
                lower: (1u64 << i) as f64,
                upper: (1u64 << (i + 1)) as f64,
                count: 0,
            })
            .collect();
        Histogram {
            bins,
            total: 0,
            out_of_range: 0,
        }
    }

    /// Builds a linear histogram spanning the sample range and fills it.
    /// Falls back to a single degenerate bin when all samples are equal.
    pub fn from_samples(samples: &[f64], num_bins: usize) -> Self {
        let mn = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let mx = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut hist = if samples.is_empty() || mx <= mn {
            Histogram::linear(
                if mn.is_finite() { mn } else { 0.0 },
                if mn.is_finite() { mn + 1.0 } else { 1.0 },
                num_bins.max(1),
            )
        } else {
            Histogram::linear(mn, mx + (mx - mn) * 1e-9, num_bins)
        };
        for &x in samples {
            hist.add(x);
        }
        hist
    }

    /// Adds one sample. Samples outside the bin range are counted in
    /// [`Histogram::out_of_range`].
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        let last = self.bins.len() - 1;
        for (i, bin) in self.bins.iter_mut().enumerate() {
            let hit = if i == last {
                x >= bin.lower && x <= bin.upper
            } else {
                x >= bin.lower && x < bin.upper
            };
            if hit {
                bin.count += 1;
                return;
            }
        }
        self.out_of_range += 1;
    }

    /// The bins in ascending order.
    pub fn bins(&self) -> &[HistogramBin] {
        &self.bins
    }

    /// Total number of samples added (including out-of-range samples).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of samples that did not fall in any bin.
    pub fn out_of_range(&self) -> usize {
        self.out_of_range
    }

    /// Renders an ASCII bar chart, one line per bin, with bars scaled to
    /// `max_width` characters.
    pub fn render_ascii(&self, max_width: usize) -> String {
        let max_count = self.bins.iter().map(|b| b.count).max().unwrap_or(0);
        let mut out = String::new();
        for bin in &self.bins {
            let bar_len = if max_count == 0 {
                0
            } else {
                (bin.count * max_width).div_euclid(max_count)
            };
            out.push_str(&format!(
                "[{:>10.2}, {:>10.2}) {:>7} |{}\n",
                bin.lower,
                bin.upper,
                bin.count,
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_bins_cover_range() {
        let h = Histogram::linear(0.0, 10.0, 5);
        assert_eq!(h.bins().len(), 5);
        assert_eq!(h.bins()[0].lower, 0.0);
        assert_eq!(h.bins()[4].upper, 10.0);
    }

    #[test]
    fn add_places_samples_in_correct_bins() {
        let mut h = Histogram::linear(0.0, 10.0, 5);
        h.add(0.0);
        h.add(1.9);
        h.add(2.0);
        h.add(9.999);
        h.add(10.0); // last bin is right-closed
        assert_eq!(h.bins()[0].count, 2);
        assert_eq!(h.bins()[1].count, 1);
        assert_eq!(h.bins()[4].count, 2);
        assert_eq!(h.total(), 5);
        assert_eq!(h.out_of_range(), 0);
    }

    #[test]
    fn out_of_range_counted() {
        let mut h = Histogram::linear(0.0, 1.0, 2);
        h.add(-0.5);
        h.add(2.0);
        assert_eq!(h.out_of_range(), 2);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn powers_of_two_bins() {
        let mut h = Histogram::powers_of_two(4);
        h.add(1.0);
        h.add(3.0);
        h.add(7.9);
        h.add(15.0);
        assert_eq!(h.bins()[0].count, 1);
        assert_eq!(h.bins()[1].count, 1);
        assert_eq!(h.bins()[2].count, 1);
        assert_eq!(h.bins()[3].count, 1);
    }

    #[test]
    fn from_samples_handles_constant_and_empty() {
        let h = Histogram::from_samples(&[5.0, 5.0, 5.0], 4);
        assert_eq!(h.total(), 3);
        assert_eq!(h.out_of_range(), 0);
        let e = Histogram::from_samples(&[], 4);
        assert_eq!(e.total(), 0);
    }

    #[test]
    fn ascii_render_contains_counts() {
        let mut h = Histogram::linear(0.0, 2.0, 2);
        h.add(0.5);
        h.add(1.5);
        h.add(1.6);
        let s = h.render_ascii(10);
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 2);
    }

    proptest! {
        #[test]
        fn total_equals_bin_sum_plus_out_of_range(
            xs in proptest::collection::vec(-20.0f64..20.0, 0..200)
        ) {
            let mut h = Histogram::linear(-10.0, 10.0, 8);
            for &x in &xs {
                h.add(x);
            }
            let in_bins: usize = h.bins().iter().map(|b| b.count).sum();
            prop_assert_eq!(in_bins + h.out_of_range(), h.total());
            prop_assert_eq!(h.total(), xs.len());
        }
    }
}
