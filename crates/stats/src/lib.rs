//! Statistics substrate for the `wireless-sync` workspace.
//!
//! The experiment harness of this reproduction repeatedly runs randomized
//! protocol executions and needs to summarize the resulting samples:
//! means, dispersion, quantiles, confidence intervals for "with high
//! probability" claims, least-squares fits of measured running times against
//! the paper's asymptotic bound expressions, and simple histogram/table
//! rendering for the regenerated figures.
//!
//! Everything here is plain, dependency-light numerical code operating on
//! `f64` slices; the heavier domain logic lives in the other crates.
//!
//! # Example
//!
//! ```
//! use wsync_stats::{Summary, quantile};
//!
//! let samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
//! let s = Summary::from_slice(&samples);
//! assert_eq!(s.count, 8);
//! assert!((s.mean - 3.875).abs() < 1e-12);
//! assert_eq!(quantile(&samples, 0.5), 3.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confidence;
pub mod descriptive;
pub mod histogram;
pub mod quantile;
pub mod regression;
pub mod sequential;
pub mod splitting;
pub mod table;

pub use confidence::{proportion_ci, CiUndefined, ConfidenceInterval};
pub use descriptive::{OnlineStats, Summary};
pub use histogram::{Histogram, HistogramBin};
pub use quantile::{median, quantile, quantiles};
pub use regression::{fit_through_origin, linear_fit, LinearFit, OriginFit};
pub use sequential::{dominated, wilson_ci};
pub use splitting::{
    splitting_estimate, LevelReport, SplitPath, SplittingConfig, SplittingEstimate,
};
pub use table::{Align, Table};
