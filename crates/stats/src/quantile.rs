//! Quantiles and medians over `f64` samples.
//!
//! Quantiles use the standard linear-interpolation definition (type 7 in the
//! Hyndman–Fan taxonomy, the default of R and NumPy): for a sorted sample
//! `x_0 ≤ … ≤ x_{n-1}` and probability `q ∈ [0, 1]`, the quantile is the
//! linear interpolation between the values at positions `floor(h)` and
//! `ceil(h)` where `h = (n - 1) · q`.

/// Returns the `q`-quantile of `samples` (not required to be sorted).
///
/// Returns `f64::NAN` for an empty sample. `q` is clamped to `[0, 1]`.
///
/// ```
/// use wsync_stats::quantile;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&xs, 0.0), 1.0);
/// assert_eq!(quantile(&xs, 1.0), 4.0);
/// assert_eq!(quantile(&xs, 0.5), 2.5);
/// ```
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample passed to quantile"));
    quantile_sorted(&sorted, q)
}

/// Returns the `q`-quantile of an already sorted sample.
///
/// Returns `f64::NAN` for an empty sample. `q` is clamped to `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (n - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Returns the median of `samples` (`NaN` for an empty sample).
pub fn median(samples: &[f64]) -> f64 {
    quantile(samples, 0.5)
}

/// Returns several quantiles of `samples`, sorting only once.
///
/// The output is in the same order as `probs`.
pub fn quantiles(samples: &[f64], probs: &[f64]) -> Vec<f64> {
    if samples.is_empty() {
        return vec![f64::NAN; probs.len()];
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample passed to quantiles"));
    probs.iter().map(|&q| quantile_sorted(&sorted, q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_nan() {
        assert!(quantile(&[], 0.5).is_nan());
        assert!(median(&[]).is_nan());
        assert!(quantiles(&[], &[0.1, 0.9]).iter().all(|x| x.is_nan()));
    }

    #[test]
    fn singleton() {
        assert_eq!(quantile(&[7.0], 0.0), 7.0);
        assert_eq!(quantile(&[7.0], 0.37), 7.0);
        assert_eq!(quantile(&[7.0], 1.0), 7.0);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn interpolation_matches_numpy_default() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert!((quantile(&xs, 0.25) - 20.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.1) - 14.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.9) - 46.0).abs() < 1e-12);
    }

    #[test]
    fn q_is_clamped() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(quantile(&xs, -0.5), 1.0);
        assert_eq!(quantile(&xs, 1.5), 3.0);
    }

    #[test]
    fn quantiles_order_preserved() {
        let xs = [5.0, 1.0, 9.0, 3.0];
        let qs = quantiles(&xs, &[0.9, 0.1]);
        assert!(qs[0] > qs[1]);
    }

    proptest! {
        #[test]
        fn quantile_within_range(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200), q in 0.0f64..1.0) {
            let v = quantile(&xs, q);
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(v >= xs[0] - 1e-9);
            prop_assert!(v <= xs[xs.len() - 1] + 1e-9);
        }

        #[test]
        fn quantile_monotone_in_q(xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
                                  a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-9);
        }

        #[test]
        fn median_between_min_and_max(xs in proptest::collection::vec(-1e3f64..1e3, 1..50)) {
            let m = median(&xs);
            let mn = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let mx = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= mn - 1e-9 && m <= mx + 1e-9);
        }
    }
}
