//! Lightweight table builder that renders to Markdown, CSV, or aligned plain
//! text. The experiment binaries use it to print the regenerated paper
//! figures/tables in a reviewable form.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Column alignment for plain-text / Markdown rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Align {
    /// Left-align the column.
    Left,
    /// Right-align the column (default for numeric columns).
    Right,
}

/// A simple rectangular table of strings with named columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    /// All columns default to right alignment.
    pub fn new<S: Into<String>>(title: S, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            aligns: vec![Align::Right; columns.len()],
            rows: Vec::new(),
        }
    }

    /// Sets the alignment of column `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set_align(&mut self, index: usize, align: Align) -> &mut Self {
        self.aligns[index] = align;
        self
    }

    /// Appends a row of already-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells does not match the number of columns.
    pub fn push_row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "Table::push_row: expected {} cells, got {}",
            self.columns.len(),
            cells.len()
        );
        self.rows.push(cells);
        self
    }

    /// Title of the table.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Rows pushed so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavoured Markdown (title as a heading).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "### {}\n", self.title);
        }
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let seps: Vec<&str> = self
            .aligns
            .iter()
            .map(|a| match a {
                Align::Left => ":---",
                Align::Right => "---:",
            })
            .collect();
        let _ = writeln!(out, "| {} |", seps.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders the table as CSV (header row first; no title line).
    /// Cells containing commas, quotes, or newlines are quoted.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| csv_escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter()
                    .map(|c| csv_escape(c))
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        out
    }

    /// Renders the table as aligned plain text with a title line.
    pub fn to_plain_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
            let total: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
            let _ = writeln!(out, "{}", "=".repeat(total.max(self.title.len())));
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| match aligns[i] {
                    Align::Left => format!("{:<width$}", c, width = widths[i]),
                    Align::Right => format!("{:>width$}", c, width = widths[i]),
                })
                .collect::<Vec<_>>()
                .join("   ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.columns, &widths, &self.aligns));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("   ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths, &self.aligns));
        }
        out
    }
}

fn csv_escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Formats a float with a sensible number of digits for table output.
pub fn fmt_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{:.0}", x)
    } else if x.abs() >= 10.0 {
        format!("{:.1}", x)
    } else if x.abs() >= 0.01 {
        format!("{:.3}", x)
    } else {
        format!("{:.2e}", x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("Example", &["name", "rounds", "ratio"]);
        t.set_align(0, Align::Left);
        t.push_row(vec!["trapdoor", "123", "1.5"]);
        t.push_row(vec!["samaritan", "45", "0.9"]);
        t
    }

    #[test]
    fn markdown_contains_header_and_rows() {
        let md = sample_table().to_markdown();
        assert!(md.contains("### Example"));
        assert!(md.contains("| name | rounds | ratio |"));
        assert!(md.contains("| trapdoor | 123 | 1.5 |"));
        assert!(md.contains(":---"));
        assert!(md.contains("---:"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = sample_table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "name,rounds,ratio");
    }

    #[test]
    fn csv_escapes_special_characters() {
        let mut t = Table::new("", &["a"]);
        t.push_row(vec!["hello, \"world\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, \"\"world\"\"\""));
    }

    #[test]
    fn plain_text_alignment() {
        let txt = sample_table().to_plain_text();
        assert!(txt.contains("Example"));
        // left-aligned name column: 'trapdoor ' padded on the right
        assert!(txt.lines().any(|l| l.starts_with("trapdoor ")));
    }

    #[test]
    #[should_panic(expected = "expected 3 cells")]
    fn push_row_wrong_arity_panics() {
        let mut t = sample_table();
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn fmt_f64_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(12.34), "12.3");
        assert_eq!(fmt_f64(0.5), "0.500");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert!(fmt_f64(0.00001).contains('e'));
    }

    #[test]
    fn len_and_empty() {
        let t = Table::new("t", &["a"]);
        assert!(t.is_empty());
        assert_eq!(sample_table().len(), 2);
    }
}
