//! Sequential-analysis building blocks for adaptive trial allocation.
//!
//! The sweep layer of `wsync-core` stops sampling a grid point once its
//! answer is statistically known: at fixed seed-batch boundaries it asks
//! whether the metric's confidence interval is narrow enough
//! ([`ConfidenceInterval::for_summary`] / [`wilson_ci`]), and optionally
//! whether the point is already *dominated* — strictly worse than the best
//! point seen so far on the swept objective ([`dominated`]). Everything
//! here is a pure function of accumulated counts and Welford summaries, so
//! the stop decision sequence is reproducible from the outcome stream
//! alone: no sample vectors, no wall clock, no scheduling dependence.
//!
//! Width-undefined states are typed ([`CiUndefined`]), never silently
//! zero-width: a rule that asked "is the interval narrower than ε?" on one
//! sample must answer "keep sampling", not "converged".

use crate::confidence::{proportion_ci, CiUndefined, ConfidenceInterval};

/// Wilson score interval over *counted* trials — the incremental form for
/// sequential rules folding successes/trials counters (no per-trial
/// samples retained). Unlike [`proportion_ci`], zero trials is a typed
/// [`CiUndefined::NoTrials`] instead of a degenerate `[0, 1]` interval, so
/// a stopping rule cannot mistake "no data" for "converged to anything".
///
/// `successes` is clamped to `trials` (a defensive guard; callers fold
/// both from the same outcome stream, so they cannot legitimately cross).
pub fn wilson_ci(
    successes: u64,
    trials: u64,
    level: f64,
) -> Result<ConfidenceInterval, CiUndefined> {
    if trials == 0 {
        return Err(CiUndefined::NoTrials);
    }
    let successes = successes.min(trials);
    Ok(proportion_ci(successes as usize, trials as usize, level))
}

/// Whether `candidate` is strictly worse than `incumbent` on the swept
/// objective, at the intervals' joint confidence: the two intervals do not
/// overlap and the candidate sits on the losing side.
///
/// `higher_is_better` selects the objective direction — `false` for round
/// counts (lower is better), `true` for success rates. A dominance-enabled
/// stopping rule retires dominated points early: their exact value no
/// longer affects which grid point wins, only *that* they lose, and that
/// is already known.
pub fn dominated(
    candidate: &ConfidenceInterval,
    incumbent: &ConfidenceInterval,
    higher_is_better: bool,
) -> bool {
    if higher_is_better {
        candidate.upper < incumbent.lower
    } else {
        candidate.lower > incumbent.upper
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ci(lower: f64, upper: f64) -> ConfidenceInterval {
        ConfidenceInterval {
            estimate: (lower + upper) / 2.0,
            lower,
            upper,
            level: 0.95,
        }
    }

    #[test]
    fn wilson_ci_zero_trials_is_typed_undefined() {
        assert_eq!(wilson_ci(0, 0, 0.95), Err(CiUndefined::NoTrials));
    }

    #[test]
    fn wilson_ci_matches_proportion_ci_on_counts() {
        let a = wilson_ci(95, 100, 0.95).unwrap();
        let b = proportion_ci(95, 100, 0.95);
        assert_eq!(a, b);
    }

    #[test]
    fn wilson_ci_extreme_proportions_stay_informative() {
        // p = 1: the interval must keep a nonzero width — n successes out
        // of n is still compatible with a rate below 1.
        let all = wilson_ci(10, 10, 0.95).unwrap();
        assert_eq!(all.estimate, 1.0);
        assert!(all.lower < 1.0 && all.upper <= 1.0);
        assert!(all.half_width() > 0.01);
        // p = 0 mirrors it.
        let none = wilson_ci(0, 10, 0.95).unwrap();
        assert_eq!(none.estimate, 0.0);
        assert!(none.upper > 0.0 && none.lower >= 0.0);
        // tiny n: one trial gives an interval spanning most of [0, 1].
        let one = wilson_ci(1, 1, 0.95).unwrap();
        assert!(one.half_width() > 0.3);
        // huge n: the width collapses but the bounds stay ordered.
        let huge = wilson_ci(999_999_999_999, 1_000_000_000_000, 0.95).unwrap();
        assert!(huge.half_width() < 1e-5);
        assert!(huge.lower <= huge.estimate && huge.estimate <= huge.upper);
    }

    #[test]
    fn dominance_requires_strict_separation() {
        // minimize: candidate entirely above incumbent loses
        assert!(dominated(&ci(10.0, 12.0), &ci(5.0, 8.0), false));
        // overlap: no verdict either way
        assert!(!dominated(&ci(7.0, 12.0), &ci(5.0, 8.0), false));
        assert!(!dominated(&ci(5.0, 8.0), &ci(7.0, 12.0), true));
        // maximize: candidate entirely below incumbent loses
        assert!(dominated(&ci(0.1, 0.3), &ci(0.5, 0.8), true));
        // a point never dominates itself
        let me = ci(3.0, 4.0);
        assert!(!dominated(&me, &me, false));
        assert!(!dominated(&me, &me, true));
    }

    proptest! {
        #[test]
        fn wilson_clamps_successes_to_trials(s in 0u64..500, t in 1u64..400, level in 0.6f64..0.99) {
            let ci = wilson_ci(s, t, level).unwrap();
            prop_assert!(ci.estimate >= 0.0 && ci.estimate <= 1.0);
            prop_assert!(ci.lower >= 0.0 && ci.upper <= 1.0);
            prop_assert!(ci.lower <= ci.upper);
        }

        #[test]
        fn dominance_is_asymmetric(a_lo in -100.0f64..100.0, a_w in 0.0f64..50.0,
                                   b_lo in -100.0f64..100.0, b_w in 0.0f64..50.0,
                                   higher_bit in 0u8..2) {
            let higher = higher_bit == 1;
            let a = ci(a_lo, a_lo + a_w);
            let b = ci(b_lo, b_lo + b_w);
            // both directions at once would mean the intervals are disjoint
            // on both sides — impossible.
            prop_assert!(!(dominated(&a, &b, higher) && dominated(&b, &a, higher)));
        }
    }
}
