//! Confidence intervals for means and proportions.
//!
//! The reproduction validates "with high probability" claims by running many
//! seeded executions and reporting the proportion of runs that satisfy a
//! property, together with a Wilson score interval; running-time claims are
//! reported as means with a normal-approximation interval.

use serde::{Deserialize, Serialize};

use crate::descriptive::Summary;

/// The typed reason an interval's width is undefined: the caller has not
/// seen enough (finite) data for a dispersion estimate to exist.
///
/// Sequential stopping rules must treat every variant as "keep sampling" —
/// the silent alternative (a zero-width interval around a one-sample mean)
/// would stop a sweep on the very first batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CiUndefined {
    /// Fewer than two samples: the sample standard deviation (and with it
    /// the interval width) does not exist yet.
    TooFewSamples {
        /// How many samples were seen.
        count: u64,
    },
    /// At least one sample was NaN or infinite, so no finite width exists.
    NonFinite,
    /// A proportion over zero trials: the estimate itself is undefined.
    NoTrials,
}

impl std::fmt::Display for CiUndefined {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CiUndefined::TooFewSamples { count } => {
                write!(f, "confidence interval undefined: only {count} sample(s)")
            }
            CiUndefined::NonFinite => {
                write!(f, "confidence interval undefined: non-finite sample")
            }
            CiUndefined::NoTrials => {
                write!(f, "confidence interval undefined: zero trials")
            }
        }
    }
}

impl std::error::Error for CiUndefined {}

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (mean or proportion).
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
    /// Confidence level used to build the interval, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Returns `true` if `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// Normal-approximation confidence interval for the mean of `samples`,
    /// `mean ± z · s/√n`.
    ///
    /// Empty and singleton samples, and samples containing a non-finite
    /// value, have no defined interval width; they return the typed
    /// [`CiUndefined`] state instead of silently degenerating to a
    /// zero-width interval (which a sequential stopping rule would read as
    /// "converged").
    pub fn for_mean(samples: &[f64], level: f64) -> Result<Self, CiUndefined> {
        if samples.iter().any(|x| !x.is_finite()) {
            return Err(CiUndefined::NonFinite);
        }
        Self::for_summary(&Summary::from_slice(samples), level)
    }

    /// The same normal-approximation interval built from an already-folded
    /// [`Summary`] — the incremental form sequential stopping rules use:
    /// the accumulating fold (e.g. a Welford
    /// [`OnlineStats`](crate::OnlineStats)) is summarized at each batch
    /// boundary without retaining samples.
    pub fn for_summary(s: &Summary, level: f64) -> Result<Self, CiUndefined> {
        if s.count < 2 {
            return Err(CiUndefined::TooFewSamples {
                count: s.count as u64,
            });
        }
        if !s.mean.is_finite() || !s.std_dev.is_finite() {
            return Err(CiUndefined::NonFinite);
        }
        let z = z_value(level);
        let hw = z * s.std_error();
        Ok(ConfidenceInterval {
            estimate: s.mean,
            lower: s.mean - hw,
            upper: s.mean + hw,
            level,
        })
    }
}

/// Wilson score interval for a binomial proportion.
///
/// `successes` out of `trials`; `level` is the confidence level (e.g. 0.95).
/// For `trials == 0` returns the degenerate interval `[0, 1]` around `0`.
///
/// ```
/// use wsync_stats::proportion_ci;
/// let ci = proportion_ci(95, 100, 0.95);
/// assert!(ci.lower > 0.85 && ci.upper < 0.99);
/// assert!(ci.contains(0.95));
/// ```
pub fn proportion_ci(successes: usize, trials: usize, level: f64) -> ConfidenceInterval {
    if trials == 0 {
        return ConfidenceInterval {
            estimate: 0.0,
            lower: 0.0,
            upper: 1.0,
            level,
        };
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = z_value(level);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let hw = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ConfidenceInterval {
        estimate: p,
        lower: (center - hw).max(0.0),
        upper: (center + hw).min(1.0),
        level,
    }
}

/// Two-sided standard-normal critical value for the given confidence level.
///
/// Exact table values are used for the common levels (0.90, 0.95, 0.99,
/// 0.999); other levels are computed with the Acklam inverse-normal
/// approximation (absolute error below 1.2e-9 over the open unit interval).
pub fn z_value(level: f64) -> f64 {
    match level {
        l if (l - 0.90).abs() < 1e-12 => 1.6448536269514722,
        l if (l - 0.95).abs() < 1e-12 => 1.959963984540054,
        l if (l - 0.99).abs() < 1e-12 => 2.5758293035489004,
        l if (l - 0.999).abs() < 1e-12 => 3.290526731491926,
        _ => {
            let level = level.clamp(1e-9, 1.0 - 1e-12);
            let p = 1.0 - (1.0 - level) / 2.0;
            inverse_normal_cdf(p)
        }
    }
}

/// Acklam's rational approximation to the inverse of the standard normal CDF.
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn z_values_for_common_levels() {
        assert!((z_value(0.95) - 1.96).abs() < 0.001);
        assert!((z_value(0.99) - 2.576).abs() < 0.001);
        assert!((z_value(0.90) - 1.645).abs() < 0.001);
    }

    #[test]
    fn z_value_from_approximation() {
        // 0.98 is not a table entry; two-sided z ≈ 2.3263
        assert!((z_value(0.98) - 2.3263).abs() < 1e-3);
    }

    #[test]
    fn mean_ci_contains_true_mean_for_constant_sample() {
        let ci = ConfidenceInterval::for_mean(&[5.0; 30], 0.95).unwrap();
        assert_eq!(ci.estimate, 5.0);
        assert!(ci.contains(5.0));
        assert!(ci.half_width() < 1e-12);
    }

    #[test]
    fn mean_ci_width_undefined_below_two_samples() {
        assert_eq!(
            ConfidenceInterval::for_mean(&[], 0.95),
            Err(CiUndefined::TooFewSamples { count: 0 })
        );
        assert_eq!(
            ConfidenceInterval::for_mean(&[7.25], 0.95),
            Err(CiUndefined::TooFewSamples { count: 1 })
        );
    }

    #[test]
    fn mean_ci_width_undefined_on_non_finite_samples() {
        assert_eq!(
            ConfidenceInterval::for_mean(&[1.0, f64::NAN, 3.0], 0.95),
            Err(CiUndefined::NonFinite)
        );
        assert_eq!(
            ConfidenceInterval::for_mean(&[1.0, f64::INFINITY], 0.95),
            Err(CiUndefined::NonFinite)
        );
        assert_eq!(
            ConfidenceInterval::for_mean(&[f64::NEG_INFINITY, 2.0], 0.95),
            Err(CiUndefined::NonFinite)
        );
    }

    #[test]
    fn proportion_ci_basic_shape() {
        let ci = proportion_ci(50, 100, 0.95);
        assert!((ci.estimate - 0.5).abs() < 1e-12);
        assert!(ci.lower > 0.39 && ci.lower < 0.45);
        assert!(ci.upper > 0.55 && ci.upper < 0.61);
    }

    #[test]
    fn proportion_ci_extremes_clamped() {
        let all = proportion_ci(100, 100, 0.95);
        assert_eq!(all.estimate, 1.0);
        assert!(all.upper <= 1.0);
        assert!(all.lower < 1.0);

        let none = proportion_ci(0, 100, 0.95);
        assert_eq!(none.estimate, 0.0);
        assert!(none.lower >= 0.0);
        assert!(none.upper > 0.0);
    }

    #[test]
    fn proportion_ci_no_trials() {
        let ci = proportion_ci(0, 0, 0.95);
        assert_eq!(ci.lower, 0.0);
        assert_eq!(ci.upper, 1.0);
    }

    proptest! {
        #[test]
        fn wilson_interval_always_within_unit_and_contains_estimate(
            successes in 0usize..=200, extra in 0usize..=200, level in 0.5f64..0.999
        ) {
            let trials = successes + extra;
            prop_assume!(trials > 0);
            let ci = proportion_ci(successes, trials, level);
            prop_assert!(ci.lower >= 0.0 && ci.upper <= 1.0);
            prop_assert!(ci.lower <= ci.estimate + 1e-12);
            prop_assert!(ci.upper >= ci.estimate - 1e-12);
        }

        #[test]
        fn z_value_monotone_in_level(a in 0.5f64..0.99, b in 0.5f64..0.99) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(z_value(lo) <= z_value(hi) + 1e-9);
        }

        #[test]
        fn mean_ci_contains_sample_mean(xs in proptest::collection::vec(-1e3f64..1e3, 2..100)) {
            let ci = ConfidenceInterval::for_mean(&xs, 0.95).unwrap();
            prop_assert!(ci.contains(ci.estimate));
            prop_assert!(ci.lower <= ci.upper);
        }
    }
}
