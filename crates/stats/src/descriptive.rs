//! Descriptive statistics: batch summaries and online (Welford) accumulation.

use serde::{Deserialize, Serialize};

/// A batch summary of a sample: count, mean, (sample) standard deviation,
/// minimum, maximum and sum.
///
/// An empty sample yields a summary with `count == 0`, `mean == 0.0`,
/// `std_dev == 0.0`, `min == f64::INFINITY` and `max == f64::NEG_INFINITY`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (denominator `n - 1`; `0.0` when `n < 2`).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sum of the samples.
    pub sum: f64,
}

impl Summary {
    /// Computes a summary of `samples`.
    pub fn from_slice(samples: &[f64]) -> Self {
        let mut online = OnlineStats::new();
        for &x in samples {
            online.push(x);
        }
        online.summary()
    }

    /// Computes a summary from an iterator of samples.
    // Deliberately an inherent constructor, not `FromIterator`: a summary is
    // a lossy reduction, so `collect()` would read misleadingly.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut online = OnlineStats::new();
        for x in iter {
            online.push(x);
        }
        online.summary()
    }

    /// Standard error of the mean (`std_dev / sqrt(count)`), or `0.0` for an
    /// empty or singleton sample.
    pub fn std_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.std_dev / (self.count as f64).sqrt()
        }
    }

    /// Coefficient of variation (`std_dev / mean`), or `0.0` when the mean is
    /// zero.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            std_dev: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }
}

/// Numerically stable online mean/variance accumulator (Welford's algorithm).
///
/// Useful when experiments stream per-execution measurements and we do not
/// want to keep every sample in memory.
///
/// ```
/// use wsync_stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples pushed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Current mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sample variance (denominator `n - 1`; `0.0` when `n < 2`).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Population variance (denominator `n`; `0.0` when empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Converts the accumulated state to a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.sample_std_dev(),
            min: self.min,
            max: self.max,
            sum: self.sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::from_slice(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.sum, 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn singleton_summary() {
        let s = Summary::from_slice(&[42.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::from_slice(&xs);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // population variance 4.0 => sample variance 32/7
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.sum, 40.0);
    }

    #[test]
    fn online_merge_equals_batch() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        let batch = Summary::from_slice(&xs);
        let merged = a.summary();
        assert_eq!(merged.count, batch.count);
        assert!((merged.mean - batch.mean).abs() < 1e-9);
        assert!((merged.std_dev - batch.std_dev).abs() < 1e-9);
        assert!((merged.sum - batch.sum).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.summary();
        a.merge(&OnlineStats::new());
        assert_eq!(a.summary(), before);

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.summary(), before);
    }

    #[test]
    fn coefficient_of_variation() {
        let s = Summary::from_slice(&[1.0, 3.0]);
        assert!(s.coefficient_of_variation() > 0.0);
        let zero_mean = Summary::from_slice(&[-1.0, 1.0]);
        assert_eq!(zero_mean.coefficient_of_variation(), 0.0);
    }
}
