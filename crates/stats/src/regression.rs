//! Least-squares fits used to compare measured running times against the
//! paper's asymptotic bound expressions.
//!
//! Two fits are provided:
//!
//! * [`linear_fit`] — ordinary least squares `y ≈ a + b·x` with `R²`.
//! * [`fit_through_origin`] — `y ≈ c·x`, used to test whether measured
//!   round counts are a constant multiple of a predicted bound expression
//!   (the reproduction criterion for `O(·)`/`Ω(·)` claims: the ratio should
//!   be roughly constant across the sweep, i.e. the origin fit should have a
//!   small relative residual).

use serde::{Deserialize, Serialize};

/// Result of an ordinary least squares fit `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted intercept `a`.
    pub intercept: f64,
    /// Fitted slope `b`.
    pub slope: f64,
    /// Coefficient of determination `R²` (1.0 for a perfect fit; may be
    /// negative for fits worse than the constant-mean model in the
    /// through-origin case, but is in `[0, 1]` here).
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Result of a least-squares fit through the origin, `y ≈ ratio · x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OriginFit {
    /// Fitted proportionality constant `c`.
    pub ratio: f64,
    /// Maximum relative deviation `max_i |y_i − c·x_i| / (c·x_i)` over points
    /// with `x_i > 0`; small values mean the data really is proportional.
    pub max_relative_deviation: f64,
    /// Root-mean-square relative deviation over points with `x_i > 0`.
    pub rms_relative_deviation: f64,
    /// Number of points used.
    pub n: usize,
}

impl OriginFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.ratio * x
    }
}

/// Ordinary least squares fit of `y ≈ a + b·x`.
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths or fewer than two points.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "linear_fit: mismatched lengths");
    assert!(xs.len() >= 2, "linear_fit: need at least two points");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        let mut ss_res = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let e = y - (intercept + slope * x);
            ss_res += e * e;
        }
        (1.0 - ss_res / syy).clamp(0.0, 1.0)
    };
    LinearFit {
        intercept,
        slope,
        r_squared,
        n: xs.len(),
    }
}

/// Least-squares fit of `y ≈ c·x` through the origin.
///
/// The fitted constant is `c = Σ x·y / Σ x²`. Points with `x == 0` contribute
/// to the fit but are excluded from the relative-deviation metrics.
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths, are empty, or all `x` are
/// zero.
pub fn fit_through_origin(xs: &[f64], ys: &[f64]) -> OriginFit {
    assert_eq!(xs.len(), ys.len(), "fit_through_origin: mismatched lengths");
    assert!(!xs.is_empty(), "fit_through_origin: empty input");
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    assert!(sxx > 0.0, "fit_through_origin: all x are zero");
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let ratio = sxy / sxx;
    let mut max_rel: f64 = 0.0;
    let mut sum_sq_rel = 0.0;
    let mut counted = 0usize;
    for (&x, &y) in xs.iter().zip(ys) {
        if x > 0.0 && ratio != 0.0 {
            let pred = ratio * x;
            let rel = ((y - pred) / pred).abs();
            max_rel = max_rel.max(rel);
            sum_sq_rel += rel * rel;
            counted += 1;
        }
    }
    let rms = if counted == 0 {
        0.0
    } else {
        (sum_sq_rel / counted as f64).sqrt()
    };
    OriginFit {
        ratio,
        max_relative_deviation: max_rel,
        rms_relative_deviation: rms,
        n: xs.len(),
    }
}

/// Fits `log(y) ≈ a + b·log(x)` and returns the exponent `b` together with
/// the full fit. Useful for checking polynomial/"log-power" scaling shapes.
///
/// # Panics
///
/// Panics if fewer than two points have strictly positive `x` and `y`.
pub fn log_log_exponent(xs: &[f64], ys: &[f64]) -> (f64, LinearFit) {
    let pairs: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(&x, &y)| x > 0.0 && y > 0.0)
        .map(|(&x, &y)| (x.ln(), y.ln()))
        .collect();
    assert!(
        pairs.len() >= 2,
        "log_log_exponent: need at least two positive points"
    );
    let lx: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let ly: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let fit = linear_fit(&lx, &ly);
    (fit.slope, fit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.5 * x).collect();
        let fit = linear_fit(&xs, &ys);
        assert!((fit.intercept - 3.0).abs() < 1e-9);
        assert!((fit.slope - 2.5).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert!((fit.predict(20.0) - 53.0).abs() < 1e-9);
    }

    #[test]
    fn constant_y_has_zero_slope_and_perfect_r2() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [4.0, 4.0, 4.0];
        let fit = linear_fit(&xs, &ys);
        assert!(fit.slope.abs() < 1e-12);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn noisy_line_has_high_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 5.0 * x + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit = linear_fit(&xs, &ys);
        assert!((fit.slope - 5.0).abs() < 0.05);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn origin_fit_exact_proportionality() {
        let xs = [1.0, 2.0, 4.0, 8.0];
        let ys = [3.0, 6.0, 12.0, 24.0];
        let fit = fit_through_origin(&xs, &ys);
        assert!((fit.ratio - 3.0).abs() < 1e-12);
        assert!(fit.max_relative_deviation < 1e-12);
        assert!(fit.rms_relative_deviation < 1e-12);
    }

    #[test]
    fn origin_fit_detects_nonproportional_data() {
        let xs = [1.0, 2.0, 4.0, 8.0];
        let ys = [1.0, 4.0, 16.0, 64.0]; // quadratic, not proportional
        let fit = fit_through_origin(&xs, &ys);
        assert!(fit.max_relative_deviation > 0.5);
    }

    #[test]
    fn log_log_recovers_power() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 7.0 * x.powi(3)).collect();
        let (exp, fit) = log_log_exponent(&xs, &ys);
        assert!((exp - 3.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    #[should_panic(expected = "mismatched lengths")]
    fn mismatched_lengths_panics() {
        linear_fit(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "all x are zero")]
    fn origin_fit_all_zero_x_panics() {
        fit_through_origin(&[0.0, 0.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn linear_fit_r2_in_unit_interval(
            xs in proptest::collection::vec(-100.0f64..100.0, 2..50),
            noise in proptest::collection::vec(-10.0f64..10.0, 2..50),
        ) {
            let n = xs.len().min(noise.len());
            prop_assume!(n >= 2);
            let xs = &xs[..n];
            let ys: Vec<f64> = xs.iter().zip(&noise[..n]).map(|(x, e)| 2.0 * x + e).collect();
            let fit = linear_fit(xs, &ys);
            prop_assert!(fit.r_squared >= 0.0 && fit.r_squared <= 1.0);
        }

        #[test]
        fn origin_fit_scale_invariance(scale in 0.1f64..100.0) {
            let xs = [1.0, 2.0, 3.0, 4.0];
            let ys: Vec<f64> = xs.iter().map(|x| x * scale).collect();
            let fit = fit_through_origin(&xs, &ys);
            prop_assert!((fit.ratio - scale).abs() < 1e-9);
        }
    }
}
